//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The workspace builds in a container with no crates.io access, so the
//! criterion API surface the bench suite uses is vendored here:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple: each benchmark warms up briefly,
//! then runs for a short fixed wall-clock budget and reports the mean
//! iteration time. That is enough for the coarse scaling comparisons the
//! `experiments` binary and CI `--no-run` compile checks need; it makes
//! no statistical claims (no outlier analysis, no confidence intervals).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().full, f);
        self
    }
}

/// A named group of benchmarks; configuration methods are accepted for
/// API compatibility and ignored by this harness.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness uses a fixed budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.full), f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: Into<BenchmarkId>, P, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.full), |b| f(b, input));
        self
    }

    /// Close the group (no-op).
    pub fn finish(self) {}
}

/// The substring filter passed on the command line (`cargo bench --
/// bench <suite> -- <filter>`), mirroring real criterion's positional
/// filter. Flags (`--bench` etc.) are ignored; the first bare argument
/// is the filter.
fn name_filter() -> &'static Option<String> {
    use std::sync::OnceLock;
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER.get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    if let Some(filter) = name_filter() {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<56} (no iterations)");
    } else {
        let mean = b.total / b.iters as u32;
        println!("{label:<56} {mean:>12.2?}/iter  ({} iters)", b.iters);
    }
}

/// Passed to benchmark closures; runs the timed routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_BUDGET {
            black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter`], but with an untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_BUDGET {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Batch sizing hints; accepted for API compatibility.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput reporting hints; accepted for API compatibility.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
