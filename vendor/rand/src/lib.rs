//! Offline, API-compatible subset of the `rand` crate.
//!
//! The workspace builds in a container with no crates.io access, so the
//! small slice of `rand` 0.8 that `gcore-snb` uses is vendored here:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is a SplitMix64 — deterministic for a given seed, which
//! is the only property the SNB data generator relies on (it does not
//! promise bit-compatibility with upstream `rand`'s `SmallRng`).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (modulo-reduced for integers; the tiny
    /// bias is irrelevant for data generation).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform random bool.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let f = r.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(1..=3u32);
            assert!((1..=3).contains(&i));
        }
    }
}
