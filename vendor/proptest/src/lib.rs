//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds in a container with no crates.io access, so the
//! slice of proptest that the property tests use is vendored here:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`;
//! * range / tuple / [`strategy::Just`] / [`collection::vec`] strategies
//!   and [`arbitrary::any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case panics with the sampled inputs (tests here
//! format them into their assertion messages). Case generation is fully
//! deterministic — case `i` of every test uses seed `i`, so failures
//! reproduce across runs.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for producing random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then use it to pick a second strategy and
        /// sample that.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into a branch strategy.
        /// `depth` bounds the recursion; the size hints are accepted for
        /// API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                cur = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            cur
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between several strategies for the same value type
    /// (backs the `prop_oneof!` macro).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128
                        + self.start as i128;
                    v as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for types with a canonical strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Construct it.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool`.
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty => $s:ident),*) => {$(
            /// Uniform integer strategy.
            pub struct $s;
            impl Strategy for $s {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $s;
                fn arbitrary() -> $s { $s }
            }
        )*};
    }

    int_arbitrary!(u8 => U8Any, u16 => U16Any, u32 => U32Any, u64 => U64Any,
                   usize => UsizeAny, i8 => I8Any, i16 => I16Any, i32 => I32Any,
                   i64 => I64Any, isize => IsizeAny);
}

pub mod test_runner {
    //! The deterministic RNG and per-test configuration.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG used by all strategies (the vendored
    /// `rand::rngs::SmallRng`, mirroring upstream proptest's dependency
    /// on rand).
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// An RNG seeded for test case number `case`.
        pub fn for_case(case: u64) -> Self {
            // Spread consecutive case numbers across the seed space.
            TestRng {
                inner: SmallRng::seed_from_u64(case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform index in `0..n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 256 cases, overridable via the `PROPTEST_CASES` environment
        /// variable — the same knob real proptest reads, so CI can pin
        /// the case count for reproducible runtimes.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, glob-importable.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Sub-strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}
