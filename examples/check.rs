//! `gcore-check` as a command-line linter: statically analyze G-CORE
//! scripts without evaluating them, print rustc-style diagnostics, and
//! exit nonzero when any error-severity diagnostic is found.
//!
//! ```sh
//! # Lint the paper's §3/§5 corpus (the default):
//! cargo run --example check
//!
//! # Lint your own `;`-separated script files:
//! cargo run --example check -- my_queries.gcore more.gcore
//! ```

use gcore_repro::corpus;
use gcore_repro::engine::{render_all, Engine};
use gcore_repro::ppg::IdGen;
use gcore_repro::snb::{figure2, social_dataset};
use std::process::ExitCode;

/// An engine with the guided-tour catalog (social graph, company graph,
/// orders table, Figure 2) — the data the corpus queries expect, so the
/// catalog-aware lints resolve names against something real.
fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids: IdGen = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", figure2(&ids));
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

fn main() -> ExitCode {
    let engine = tour_engine();
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut lint = |name: &str, text: &str| {
        let diags = engine.check_script(text);
        errors += diags.iter().filter(|d| d.is_error()).count();
        warnings += diags.iter().filter(|d| !d.is_error()).count();
        if !diags.is_empty() {
            println!("── {name} ──");
            println!("{}", render_all(&diags, text));
        }
    };

    if args.is_empty() {
        // Default: the paper's whole corpus, in listing order. Views
        // defined by earlier queries are resolved by joining the corpus
        // into one script.
        let script: Vec<&str> = corpus::ALL.iter().map(|q| q.text).collect();
        lint("corpus (§3/§5)", &script.join("\n"));
    } else {
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(text) => lint(path, &text),
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    println!("gcore-check: {errors} errors, {warnings} warnings");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
