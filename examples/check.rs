//! `gcore-check` as a command-line linter: statically analyze G-CORE
//! scripts without evaluating them, print rustc-style diagnostics, and
//! exit nonzero when any error-severity diagnostic is found.
//!
//! ```sh
//! # Lint the paper's §3/§5 corpus (the default):
//! cargo run --example check
//!
//! # Lint your own `;`-separated script files:
//! cargo run --example check -- my_queries.gcore more.gcore
//!
//! # Print the cost-based query plan (EXPLAIN) instead of linting.
//! # Corpus mode evaluates as it goes so later plans see the views
//! # earlier statements define; file mode plans statically:
//! cargo run --example check -- --explain
//! cargo run --example check -- --explain my_queries.gcore
//! ```

use gcore_repro::corpus;
use gcore_repro::engine::{render_all, Engine};
use gcore_repro::ppg::IdGen;
use gcore_repro::snb::{figure2, social_dataset};
use std::process::ExitCode;

/// An engine with the guided-tour catalog (social graph, company graph,
/// orders table, Figure 2) — the data the corpus queries expect, so the
/// catalog-aware lints resolve names against something real.
fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids: IdGen = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", figure2(&ids));
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

/// `--explain`: print each statement's cost-based plan instead of
/// diagnostics. Corpus mode evaluates statement by statement so a later
/// plan resolves the graph views earlier statements define; file mode
/// plans statically against the tour catalog.
fn explain(args: &[String]) -> ExitCode {
    let mut engine = tour_engine();
    if args.is_empty() {
        for q in corpus::ALL {
            println!("── {} ──", q.id);
            match engine.explain(q.text) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            if let Err(e) = engine.run(q.text) {
                println!("(evaluation failed: {e})");
            }
            println!();
        }
        return ExitCode::SUCCESS;
    }
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stmts = match gcore_repro::parser::parse_script(&text) {
            Ok(stmts) => stmts,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (i, stmt) in stmts.iter().enumerate() {
            println!("── {path} [{}] ──", i + 1);
            let catalog = engine.catalog();
            let resolve = |on: Option<&gcore_repro::parser::ast::Location>| match on {
                None => catalog.default_graph().ok(),
                Some(gcore_repro::parser::ast::Location::Named(name)) => catalog.graph(name).ok(),
                Some(gcore_repro::parser::ast::Location::Subquery(_)) => None,
            };
            print!("{}", gcore_repro::engine::explain_statement(stmt, &resolve));
            println!();
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let engine = tour_engine();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        args.remove(pos);
        return explain(&args);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut lint = |name: &str, text: &str| {
        let diags = engine.check_script(text);
        errors += diags.iter().filter(|d| d.is_error()).count();
        warnings += diags.iter().filter(|d| !d.is_error()).count();
        if !diags.is_empty() {
            println!("── {name} ──");
            println!("{}", render_all(&diags, text));
        }
    };

    if args.is_empty() {
        // Default: the paper's whole corpus, in listing order. Views
        // defined by earlier queries are resolved by joining the corpus
        // into one script.
        let script: Vec<&str> = corpus::ALL.iter().map(|q| q.text).collect();
        lint("corpus (§3/§5)", &script.join("\n"));
    } else {
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(text) => lint(path, &text),
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    println!("gcore-check: {errors} errors, {warnings} warnings");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
