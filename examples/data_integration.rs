//! Data integration — the motivating scenario of the guided tour (§3):
//! connect person and company data living in *different graphs*, deal
//! with multi-valued properties, aggregate a graph out of raw values,
//! and import a plain table as a graph (§5).
//!
//! ```sh
//! cargo run --example data_integration
//! ```

use gcore_repro::engine::Engine;
use gcore_repro::ppg::{to_text, Label};
use gcore_repro::snb::social_dataset;

fn main() {
    let mut engine = Engine::new();
    let d = social_dataset(&engine.catalog().ids().clone());
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");

    // --- naïve equality join: Frank (employer = {CWI, MIT}) is lost ---
    let eq = engine
        .query_graph(
            "CONSTRUCT (c)<-[:worksAt]-(n) \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
             WHERE c.name = n.employer",
        )
        .unwrap();
    println!(
        "equality join:   {} worksAt edges (Frank's multi-valued employer fails `=`)",
        eq.edges_with_label(Label::new("worksAt")).len()
    );

    // --- the fix: set membership -------------------------------------
    let with_in = engine
        .query_graph(
            "CONSTRUCT (c)<-[:worksAt]-(n) \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
             WHERE c.name IN n.employer",
        )
        .unwrap();
    println!(
        "membership join: {} worksAt edges (Frank connects to CWI and MIT)",
        with_in.edges_with_label(Label::new("worksAt")).len()
    );

    // --- no company graph at all? aggregate one out of the property ---
    let aggregated = engine
        .query_graph(
            "CONSTRUCT social_graph, \
             (x GROUP e :Company {name := e})<-[:worksAt]-(n) \
             MATCH (n:Person {employer = e})",
        )
        .unwrap();
    println!(
        "graph aggregation: {} Company nodes skolemized from employer values",
        aggregated.nodes_with_label(Label::new("Company")).len()
    );

    // --- import a plain table as a graph (§5) -------------------------
    let shop = engine
        .query_graph(
            "CONSTRUCT \
             (cust GROUP custName :Customer {name := custName}), \
             (prod GROUP prodCode :Product {code := prodCode}), \
             (cust)-[:bought]->(prod) \
             FROM orders",
        )
        .unwrap();
    println!("\n--- graph built from the `orders` table ---");
    println!("{}", to_text(&shop));

    // --- everything is composable: join the two worlds ---------------
    // Persons and customers share first names in this demo; connect the
    // social graph to the shopping graph through a subquery.
    engine.register_graph("shop_graph", shop);
    let table = engine
        .query_table(
            "SELECT cust.name AS customer, COUNT(*) AS purchases \
             MATCH (cust:Customer)-[:bought]->(p:Product) ON shop_graph \
             GROUP BY cust.name \
             ORDER BY purchases DESC",
        )
        .unwrap();
    println!("--- purchases per customer ---");
    for row in table.rows() {
        println!("{:<8} {}", row[0], row[1]);
    }
}
