//! `EXPLAIN ANALYZE` over the paper's §3/§5 corpus: profile every
//! statement of the guided tour against the tour catalog, print each
//! execution profile (operator spans, estimated vs actual cardinality,
//! frontier-pop counts, timings), and exit nonzero if any profile is
//! structurally malformed — CI runs this as a smoke test of the whole
//! observability path.
//!
//! ```sh
//! cargo run --release --example profile
//! ```
//!
//! Statements are evaluated in corpus order, committing as they go, so
//! later profiles see the graph views earlier statements define —
//! exactly how `examples/check.rs --explain` treats the static plan.

use gcore_repro::corpus;
use gcore_repro::engine::Engine;
use gcore_repro::ppg::IdGen;
use gcore_repro::snb::{figure2, social_dataset};
use std::process::ExitCode;

/// The guided-tour catalog the corpus queries expect.
fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids: IdGen = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", figure2(&ids));
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

fn main() -> ExitCode {
    let mut engine = tour_engine();
    let mut malformed = 0usize;
    let mut profiled = 0usize;
    for q in corpus::ALL {
        println!("── {} ──", q.id);
        // Profile read-only first (the profile run commits nothing)…
        match engine.profile(q.text) {
            Ok((_, profile)) => {
                profiled += 1;
                if let Err(e) = profile.validate() {
                    malformed += 1;
                    eprintln!("MALFORMED PROFILE for {}: {e}", q.id);
                }
                print!("{}", profile.render(false));
            }
            Err(e) => println!("(statement error: {e})"),
        }
        // …then evaluate for real so later statements see this one's
        // committed views.
        let _ = engine.run(q.text);
        println!();
    }
    println!("profiled {profiled} corpus statements, {malformed} malformed");
    if malformed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
