//! Quickstart: build a Path Property Graph, run G-CORE queries, get
//! graphs (and tables) back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gcore_repro::engine::Engine;
use gcore_repro::ppg::{to_text, Attributes, GraphBuilder};

fn main() {
    // 1. An engine owns a catalog of named graphs. All identifiers are
    //    drawn from one shared generator so that query results can
    //    share elements with their inputs.
    let mut engine = Engine::new();

    // 2. Build a small property graph.
    let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    let ann = b.node(
        Attributes::labeled("Person")
            .with_prop("name", "Ann")
            .with_prop("team", "storage"),
    );
    let bob = b.node(
        Attributes::labeled("Person")
            .with_prop("name", "Bob")
            .with_prop("team", "storage"),
    );
    let cleo = b.node(
        Attributes::labeled("Person")
            .with_prop("name", "Cleo")
            .with_prop("team", "query"),
    );
    b.edge_bidi(ann, bob, Attributes::labeled("knows"));
    b.edge_bidi(bob, cleo, Attributes::labeled("knows"));
    engine.register_graph("team_graph", b.build());
    engine.set_default_graph("team_graph");

    // 3. Every G-CORE query returns a graph (the language is closed
    //    over Path Property Graphs).
    let storage = engine
        .query_graph("CONSTRUCT (n) MATCH (n:Person) WHERE n.team = 'storage'")
        .expect("query runs");
    println!("--- the storage team ---\n{}", to_text(&storage));

    // 4. Paths are first-class: store the shortest knows-path between
    //    Ann and Cleo as an element of the result graph.
    let paths = engine
        .query_graph(
            "CONSTRUCT (n)-/@p:intro {hops := c}/->(m) \
             MATCH (n)-/p <:knows*> COST c/->(m) \
             WHERE n.name = 'Ann' AND m.name = 'Cleo'",
        )
        .expect("path query runs");
    println!("--- stored path Ann → Cleo ---\n{}", to_text(&paths));

    // 5. Composability: query the *output* of a query (a subquery after
    //    ON), then project a table (§5 extension).
    let table = engine
        .query_table(
            "SELECT n.name AS name, c AS hops \
             MATCH (n)-/p <:knows*> COST c/->(m) \
             ON ( CONSTRUCT (x)-[e]->(y) MATCH (x)-[e:knows]->(y) ) \
             WHERE m.name = 'Cleo' \
             ORDER BY hops",
        )
        .expect("tabular query runs");
    println!("--- who reaches Cleo, in how many hops ---");
    println!("{:<8} hops", "name");
    for row in table.rows() {
        println!("{:<8} {}", row[0], row[1]);
    }

    // 6. Views persist in the engine's catalog.
    engine
        .run("GRAPH VIEW storage_only AS (CONSTRUCT (n) MATCH (n) WHERE n.team = 'storage')")
        .expect("view definition runs");
    let n = engine
        .query_graph("CONSTRUCT (n) MATCH (n) ON storage_only")
        .expect("view query runs")
        .node_count();
    println!("--- storage_only view has {n} nodes ---");
}
