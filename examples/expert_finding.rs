//! Expert finding — the finale of the guided tour (§3): John Doe wants
//! an introduction to a Wagner lover in his city, preferring friends
//! who actually talk to each other.
//!
//! This example runs the full three-stage pipeline of the paper:
//!
//! 1. `social_graph1` — count exchanged messages per knows edge
//!    (OPTIONAL + COUNT(*), Figure 5);
//! 2. `social_graph2` — weighted shortest paths over the `wKnows` PATH
//!    view, storing `:toWagner` paths as first-class elements;
//! 3. score John's direct friends by how many `:toWagner` paths they
//!    start.
//!
//! ```sh
//! cargo run --example expert_finding
//! ```

use gcore_repro::engine::Engine;
use gcore_repro::ppg::{Key, Label, Value};
use gcore_repro::snb::social_dataset;

fn main() {
    let mut engine = Engine::new();
    let d = social_dataset(&engine.catalog().ids().clone());
    engine.register_graph("social_graph", d.social_graph);
    engine.set_default_graph("social_graph");

    // ---- stage 1: message intensity per knows edge --------------------
    engine
        .run(
            "GRAPH VIEW social_graph1 AS ( \
               CONSTRUCT social_graph, \
               (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
               MATCH (n)-[e:knows]->(m) \
               WHERE (n:Person) AND (m:Person) \
               OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
                        (msg1)-[:reply_of]-(msg2), \
                        (msg2:Post|Comment)-[c2]->(m) \
               WHERE (c1:has_creator) AND (c2:has_creator) )",
        )
        .unwrap();
    let g1 = engine.graph("social_graph1").unwrap();
    println!("--- social_graph1: message intensity ---");
    for e in g1.edges_with_label(Label::new("knows")) {
        let (s, t) = g1.endpoints(e).unwrap();
        let name = |n| {
            g1.prop(n, Key::new("firstName"))
                .as_singleton()
                .map(|v| v.to_string())
                .unwrap_or_default()
        };
        let msgs = g1
            .prop(e.into(), Key::new("nr_messages"))
            .as_singleton()
            .and_then(Value::as_int)
            .unwrap_or(-1);
        println!(
            "  {} -> {}: {} messages",
            name(s.into()),
            name(t.into()),
            msgs
        );
    }

    // ---- stage 2: weighted shortest paths to Wagner lovers -------------
    engine
        .run(
            "GRAPH VIEW social_graph2 AS ( \
               PATH wKnows = (x)-[e:knows]->(y) \
                 WHERE NOT 'Acme' IN y.employer \
                 COST 1 / (1 + e.nr_messages) \
               CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) \
               MATCH (n:Person)-/p <~wKnows*>/->(m:Person) \
               ON social_graph1 \
               WHERE (m)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
                 AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) \
                 AND n.firstName = 'John' AND n.lastName = 'Doe' )",
        )
        .unwrap();
    let g2 = engine.graph("social_graph2").unwrap();
    println!("\n--- social_graph2: stored :toWagner paths ---");
    for p in g2.paths_with_label(Label::new("toWagner")) {
        let shape = &g2.path(p).unwrap().shape;
        let names: Vec<String> = shape
            .nodes()
            .iter()
            .map(|&n| {
                g2.prop(n.into(), Key::new("firstName"))
                    .as_singleton()
                    .map(|v| v.to_string())
                    .unwrap_or_default()
            })
            .collect();
        println!("  {p}: {}", names.join(" → "));
    }

    // ---- stage 3: score the friends ------------------------------------
    let result = engine
        .query_graph(
            "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) \
             WHEN e.score > 0 \
             MATCH (n:Person)-/@p:toWagner/->() ON social_graph2, \
                   (m:Person) ON social_graph2 \
             WHERE m = nodes(p)[1]",
        )
        .unwrap();
    println!("\n--- whom should John ask? ---");
    for e in result.edges_with_label(Label::new("wagnerFriend")) {
        let (s, t) = result.endpoints(e).unwrap();
        let name = |n: gcore_repro::ppg::NodeId| {
            result
                .prop(n.into(), Key::new("firstName"))
                .as_singleton()
                .map(|v| v.to_string())
                .unwrap_or_default()
        };
        let score = result
            .prop(e.into(), Key::new("score"))
            .as_singleton()
            .and_then(Value::as_int)
            .unwrap_or(0);
        println!(
            "  {} should ask {} (score {score}: starts {score} of the :toWagner paths)",
            name(s),
            name(t)
        );
    }
}
