//! Path analytics at scale: run the paper's path machinery on a
//! generated LDBC-SNB-style network (Figure 3 schema) and report how
//! evaluation scales — an executable miniature of the §4 tractability
//! claim.
//!
//! ```sh
//! cargo run --release --example path_analytics [persons]
//! ```

use gcore_repro::engine::Engine;
use gcore_repro::ppg::Label;
use gcore_repro::snb::{generate, SnbConfig};
use std::time::Instant;

fn main() {
    let persons: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);

    let mut engine = Engine::new();
    let cfg = SnbConfig::scale(persons);
    let t0 = Instant::now();
    let data = generate(&cfg, &engine.catalog().ids().clone());
    println!(
        "generated {} nodes / {} edges in {:?}",
        data.graph.node_count(),
        data.graph.edge_count(),
        t0.elapsed()
    );
    engine.register_graph("snb", data.graph);
    engine.set_default_graph("snb");

    // --- reachability: who can person 0 reach over knows edges? -------
    let t0 = Instant::now();
    let reach = engine
        .query_graph(
            "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) \
             WHERE n.personId = 0",
        )
        .unwrap();
    println!(
        "reachability from person 0: {:>6} persons      in {:?}",
        reach.node_count(),
        t0.elapsed()
    );

    // --- stored shortest paths to everyone in the same city ----------
    let t0 = Instant::now();
    let local = engine
        .query_graph(
            "CONSTRUCT (n)-/@p:local {hops := c}/->(m) \
             MATCH (n:Person)-/p <:knows*> COST c/->(m:Person) \
             WHERE n.personId = 0 \
               AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        )
        .unwrap();
    println!(
        "stored shortest paths (same city): {:>5} paths  in {:?}",
        local.path_count(),
        t0.elapsed()
    );

    // --- weighted shortest paths: prefer chatty connections ----------
    engine
        .run(
            "GRAPH VIEW msg_graph AS ( \
               CONSTRUCT snb, (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
               MATCH (n)-[e:knows]->(m) \
               WHERE (n:Person) AND (m:Person) \
               OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
                        (msg1)-[:reply_of]-(msg2), \
                        (msg2:Post|Comment)-[c2]->(m) \
               WHERE (c1:has_creator) AND (c2:has_creator) )",
        )
        .unwrap();
    let t0 = Instant::now();
    let wagner = engine
        .query_graph(
            "PATH chatty = (x)-[e:knows]->(y) COST 1 / (1 + e.nr_messages) \
             CONSTRUCT (n)-/@p:toFan/->(m) \
             MATCH (n:Person)-/p <~chatty*>/->(m:Person) ON msg_graph \
             WHERE n.personId = 0 \
               AND (m)-[:hasInterest]->(:Tag {name = 'Wagner'})",
        )
        .unwrap();
    println!(
        "weighted paths to Wagner fans: {:>6} paths     in {:?}",
        wagner.path_count(),
        t0.elapsed()
    );

    // --- aggregate analytics over stored paths ------------------------
    engine.register_graph("wagner_paths", wagner);
    let t0 = Instant::now();
    let hist = engine
        .query_table(
            "SELECT length(p) AS hops, COUNT(*) AS paths \
             MATCH ()-/@p:toFan/->() ON wagner_paths \
             GROUP BY length(p) \
             ORDER BY hops",
        )
        .unwrap();
    println!("path-length histogram (computed in {:?}):", t0.elapsed());
    for row in hist.rows() {
        println!("  {} hops: {} paths", row[0], row[1]);
    }

    // --- interest communities (construction + aggregation) -----------
    let t0 = Instant::now();
    let communities = engine
        .query_graph(
            "CONSTRUCT (t)<-[:fanOf]-(n) \
             MATCH (n:Person)-[:hasInterest]->(t:Tag)",
        )
        .unwrap();
    println!(
        "interest bipartite graph: {} fanOf edges        in {:?}",
        communities.edges_with_label(Label::new("fanOf")).len(),
        t0.elapsed()
    );
}
