//! The serving layer end to end in one process: boot a `gcore-serve`
//! server over the guided-tour catalog on an ephemeral port, connect a
//! handful of clients, and walk the three protocol routes — query,
//! transact, admin.
//!
//! ```sh
//! cargo run --example serve_quickstart
//! ```
//!
//! For a long-running server use the binary instead:
//!
//! ```sh
//! cargo run -p gcore-serve -- --addr 127.0.0.1:7687 --snb 1000
//! ```

use gcore_repro::engine::{Engine, QueryOutput};
use gcore_repro::ppg::IdGen;
use gcore_repro::serve::{Client, ServeConfig, Server};
use gcore_repro::snb::{figure2, social_dataset};

fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids: IdGen = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", figure2(&ids));
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

fn main() {
    // Boot: an ephemeral port keeps the example parallel-safe.
    let server = Server::start(tour_engine(), ServeConfig::default()).expect("server boots");
    println!("server listening on {}\n", server.addr());

    let mut client = Client::connect(server.addr()).expect("client connects");
    println!(
        "connected; server greeted with snapshot epoch {}",
        client.hello_epoch()
    );

    // The admin route: what is on this server?
    let listing = client.list_graphs().expect("list");
    println!(
        "graphs = {:?}, default = {:?}\n",
        listing.graphs, listing.default_graph
    );

    // The query route: a §5 SELECT over the default graph, evaluated
    // on a snapshot pinned for exactly this statement.
    let reply = client
        .query("SELECT n.firstName AS name, n.employer AS employer MATCH (n:Person)")
        .expect("query");
    if let Some(QueryOutput::Table(table)) = reply.output {
        println!("SELECT over TCP (epoch {}):", reply.epoch);
        for row in table.rows() {
            println!("  {row:?}");
        }
    }

    // The transact route: a GRAPH VIEW commits server-side and bumps
    // the epoch every later statement observes.
    let committed = client
        .transact(
            "GRAPH VIEW acme_staff AS ( \
               CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme' \
             )",
        )
        .expect("transact");
    println!("\ncommitted view `acme_staff` at epoch {}", committed.epoch);

    // Read-your-writes from a *different* connection: the committed
    // view is immediately visible to everyone.
    let mut second = Client::connect(server.addr()).expect("second client");
    let reply = second
        .query("CONSTRUCT (m) MATCH (m) ON acme_staff")
        .expect("query on the new view");
    if let Some(QueryOutput::Graph(g)) = reply.output {
        println!(
            "second connection sees `acme_staff`: {} nodes at epoch {}",
            g.node_count(),
            reply.epoch
        );
    }

    // Admin again: the server kept count.
    let stats = client.stats().expect("stats");
    println!("\nserver counters:");
    for (name, value) in stats {
        println!("  {name:<28} {value}");
    }

    // Clean shutdown drains in-flight statements and joins the pool.
    server.wait();
    println!("\nserver drained and shut down");
}
