//! Facade crate for the G-CORE reproduction workspace.
//!
//! Re-exports the public APIs of the member crates so examples and
//! integration tests can depend on a single package:
//!
//! - [`ppg`] — the Path Property Graph data model (§2 of the paper)
//! - [`parser`] — the G-CORE concrete syntax (lexer, AST, parser)
//! - [`engine`] — the query engine implementing the formal semantics (§4, §A)
//! - [`snb`] — the LDBC SNB-style datasets and generator (Figures 2–4)
//! - [`store`] — durable snapshot storage: the binary graph format and
//!   pluggable storage backends behind `Engine::save_to` / `open_from`
//!
//! and hosts the paper's query corpus plus the Table 1 feature detector:
//!
//! - [`corpus`] — every §3/§5 example query, executable, with paper line
//!   numbers;
//! - [`features`] — static feature detection over parsed queries.

#![forbid(unsafe_code)]
pub use gcore as engine;
pub use gcore_parser as parser;
pub use gcore_ppg as ppg;
pub use gcore_serve as serve;
pub use gcore_snb as snb;
pub use gcore_store as store;

pub mod corpus;
pub mod features;
