//! Static feature detection over G-CORE ASTs — the machinery behind the
//! reproduction of **Table 1** ("Overview of G-CORE features and their
//! line occurrences in the example queries in Section 3").
//!
//! [`detect`] walks a parsed statement and reports every language
//! feature it uses; the Table 1 experiment cross-checks the detected
//! features of each corpus query against the paper's feature × line
//! matrix.

use gcore_parser::ast::{
    BinaryOp, Connection, ConstructClause, ConstructConnection, ConstructItem, Expr,
    FullGraphQuery, HeadClause, Location, MatchClause, PathMode, Pattern, Query, QueryBody,
    QuerySource, Statement,
};
use std::collections::BTreeSet;
use std::fmt;

/// A G-CORE language feature, following the rows of Table 1 (plus the §5
/// tabular extensions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Feature {
    /// Homomorphic graph pattern matching (every MATCH).
    HomomorphicMatching,
    /// Literal / variable bindings inside element patterns (`{k = v}`).
    MatchingLiteralValues,
    /// `k SHORTEST` path patterns.
    KShortestPaths,
    /// Unbounded path expressions used as reachability tests.
    Reachability,
    /// Weighted shortest paths (PATH … COST).
    WeightedShortestPaths,
    /// OPTIONAL matching.
    OptionalMatching,
    /// Patterns over more than one graph (multiple ON locations).
    MultiGraphQuery,
    /// Matching *stored* paths (`-/@p:Label/->`).
    QueriesOnPaths,
    /// WHERE filtering of matches.
    FilteringMatches,
    /// WHERE conditions inside PATH clauses.
    FilteringPathExpressions,
    /// Equality joins on property values.
    ValueJoin,
    /// Comma patterns without shared variables (Cartesian product).
    CartesianProduct,
    /// The IN (set-membership) operator.
    ListMembership,
    /// UNION / INTERSECT / MINUS on graphs (incl. the CONSTRUCT
    /// graph-name shorthand).
    GraphSetOps,
    /// Implicit existential subqueries (patterns as predicates).
    ImplicitExists,
    /// Explicit EXISTS subqueries.
    ExplicitExists,
    /// Graph construction (every CONSTRUCT).
    GraphConstruction,
    /// Graph aggregation (GROUP in CONSTRUCT).
    GraphAggregation,
    /// Graph projection of paths (path constructs).
    GraphProjection,
    /// Graph views (GRAPH VIEW / head GRAPH / PATH clauses).
    GraphViews,
    /// Property addition via SET / `{k := e}` on bound elements.
    PropertyAddition,
    /// §5: SELECT tabular projection.
    TabularProjection,
    /// §5: FROM binding-table input.
    TabularInput,
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Feature::HomomorphicMatching => "matching all patterns (homomorphism)",
            Feature::MatchingLiteralValues => "matching literal values",
            Feature::KShortestPaths => "matching k shortest paths",
            Feature::Reachability => "matching all shortest paths (reachability)",
            Feature::WeightedShortestPaths => "matching weighted shortest paths",
            Feature::OptionalMatching => "(multi-segment) optional matching",
            Feature::MultiGraphQuery => "querying multiple graphs",
            Feature::QueriesOnPaths => "queries on paths",
            Feature::FilteringMatches => "filtering matches",
            Feature::FilteringPathExpressions => "filtering path expressions",
            Feature::ValueJoin => "value joins",
            Feature::CartesianProduct => "cartesian product",
            Feature::ListMembership => "list membership",
            Feature::GraphSetOps => "set operations on graphs",
            Feature::ImplicitExists => "existential subqueries (implicit)",
            Feature::ExplicitExists => "existential subqueries (explicit)",
            Feature::GraphConstruction => "graph construction",
            Feature::GraphAggregation => "graph aggregation",
            Feature::GraphProjection => "graph projection",
            Feature::GraphViews => "graph views",
            Feature::PropertyAddition => "property addition",
            Feature::TabularProjection => "tabular projection (SELECT, §5)",
            Feature::TabularInput => "tabular input (FROM, §5)",
        };
        // `pad` (not `write_str`) so callers' width/alignment specifiers
        // apply when printing the Table 1 matrix.
        f.pad(name)
    }
}

/// Detect every feature used by a statement.
pub fn detect(stmt: &Statement) -> BTreeSet<Feature> {
    let mut out = BTreeSet::new();
    match stmt {
        Statement::Query(q) => walk_query(q, &mut out),
        Statement::GraphView { query, .. } => {
            out.insert(Feature::GraphViews);
            walk_query(query, &mut out);
        }
    }
    out
}

fn walk_query(q: &Query, out: &mut BTreeSet<Feature>) {
    for head in &q.heads {
        match head {
            HeadClause::Path(pc) => {
                out.insert(Feature::GraphViews);
                if pc.cost.is_some() {
                    out.insert(Feature::WeightedShortestPaths);
                }
                if let Some(w) = &pc.where_clause {
                    out.insert(Feature::FilteringPathExpressions);
                    walk_expr(w, out);
                }
            }
            HeadClause::Graph(gc) => {
                out.insert(Feature::GraphViews);
                walk_query(&gc.query, out);
            }
        }
    }
    match &q.body {
        QueryBody::Graph(fgq) => walk_fgq(fgq, out),
        QueryBody::Select(s) => {
            out.insert(Feature::TabularProjection);
            walk_match(&s.match_clause, out);
            for item in &s.items {
                walk_expr(&item.expr, out);
            }
        }
    }
}

fn walk_fgq(q: &FullGraphQuery, out: &mut BTreeSet<Feature>) {
    match q {
        FullGraphQuery::Basic(b) => {
            walk_construct(&b.construct, out);
            match &b.source {
                QuerySource::Match(m) => walk_match(m, out),
                QuerySource::From(_) => {
                    out.insert(Feature::TabularInput);
                }
            }
        }
        FullGraphQuery::SetOp { left, right, .. } => {
            out.insert(Feature::GraphSetOps);
            walk_fgq(left, out);
            walk_fgq(right, out);
        }
    }
}

fn walk_construct(c: &ConstructClause, out: &mut BTreeSet<Feature>) {
    out.insert(Feature::GraphConstruction);
    for item in &c.items {
        match item {
            // The `CONSTRUCT social_graph, …` shorthand is a graph union.
            ConstructItem::GraphName(_) => {
                out.insert(Feature::GraphSetOps);
            }
            ConstructItem::Pattern(p) => {
                let mut nodes = vec![&p.start];
                for s in &p.steps {
                    nodes.push(&s.node);
                }
                for n in nodes {
                    if n.group.is_some() {
                        out.insert(Feature::GraphAggregation);
                    }
                    if !n.assigns.is_empty() && n.var.is_some() {
                        out.insert(Feature::PropertyAddition);
                    }
                }
                for s in &p.steps {
                    match &s.connection {
                        ConstructConnection::Edge(e) => {
                            if e.group.is_some() {
                                out.insert(Feature::GraphAggregation);
                            }
                            if !e.assigns.is_empty() {
                                out.insert(Feature::PropertyAddition);
                            }
                        }
                        ConstructConnection::Path(_) => {
                            out.insert(Feature::GraphProjection);
                        }
                    }
                }
                if !p.sets.is_empty() {
                    out.insert(Feature::PropertyAddition);
                }
                if let Some(w) = &p.when {
                    walk_expr(w, out);
                }
            }
        }
    }
}

fn walk_match(m: &MatchClause, out: &mut BTreeSet<Feature>) {
    out.insert(Feature::HomomorphicMatching);

    // Multiple distinct locations ⇒ multi-graph query.
    let locations: BTreeSet<String> = m
        .patterns
        .iter()
        .filter_map(|lp| match &lp.on {
            Some(Location::Named(n)) => Some(n.text.clone()),
            _ => None,
        })
        .collect();
    if locations.len() > 1 {
        out.insert(Feature::MultiGraphQuery);
    }

    // Disjoint comma patterns ⇒ Cartesian product.
    if m.patterns.len() > 1 {
        let var_sets: Vec<BTreeSet<String>> = m
            .patterns
            .iter()
            .map(|lp| pattern_vars(&lp.pattern))
            .collect();
        'outer: for i in 0..var_sets.len() {
            for j in (i + 1)..var_sets.len() {
                if var_sets[i].is_disjoint(&var_sets[j]) {
                    out.insert(Feature::CartesianProduct);
                    break 'outer;
                }
            }
        }
    }

    for lp in &m.patterns {
        walk_pattern(&lp.pattern, out);
        if let Some(Location::Subquery(q)) = &lp.on {
            walk_query(q, out);
        }
    }
    if let Some(w) = &m.where_clause {
        out.insert(Feature::FilteringMatches);
        walk_expr(w, out);
    }
    for opt in &m.optionals {
        out.insert(Feature::OptionalMatching);
        for lp in &opt.patterns {
            walk_pattern(&lp.pattern, out);
        }
        if let Some(w) = &opt.where_clause {
            out.insert(Feature::FilteringMatches);
            walk_expr(w, out);
        }
    }
}

fn pattern_vars(p: &Pattern) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    for n in p.nodes() {
        if let Some(v) = &n.var {
            vars.insert(v.text.clone());
        }
    }
    for s in &p.steps {
        match &s.connection {
            Connection::Edge(e) => {
                if let Some(v) = &e.var {
                    vars.insert(v.text.clone());
                }
            }
            Connection::Path(pp) => {
                if let Some(v) = &pp.var {
                    vars.insert(v.text.clone());
                }
                if let Some(c) = &pp.cost_var {
                    vars.insert(c.text.clone());
                }
            }
        }
    }
    vars
}

fn walk_pattern(p: &Pattern, out: &mut BTreeSet<Feature>) {
    for n in p.nodes() {
        if !n.props.is_empty() {
            out.insert(Feature::MatchingLiteralValues);
        }
    }
    for s in &p.steps {
        match &s.connection {
            Connection::Edge(e) => {
                if !e.props.is_empty() {
                    out.insert(Feature::MatchingLiteralValues);
                }
            }
            Connection::Path(pp) => {
                if pp.stored {
                    out.insert(Feature::QueriesOnPaths);
                } else {
                    match pp.mode {
                        PathMode::Shortest(k) if k > 1 => {
                            out.insert(Feature::KShortestPaths);
                        }
                        PathMode::Shortest(_) if pp.var.is_none() => {
                            out.insert(Feature::Reachability);
                        }
                        _ => {}
                    }
                    if pp.cost_var.is_some() {
                        out.insert(Feature::KShortestPaths);
                    }
                }
            }
        }
    }
}

fn walk_expr(e: &Expr, out: &mut BTreeSet<Feature>) {
    match e {
        Expr::Binary(op, a, b) => {
            match op {
                BinaryOp::In => {
                    out.insert(Feature::ListMembership);
                }
                BinaryOp::Eq
                    // A value join equates two non-literal expressions.
                    if !matches!(
                        (a.as_ref(), b.as_ref()),
                        (_, Expr::Str(_) | Expr::Int(_) | Expr::Float(_) | Expr::Bool(_))
                            | (Expr::Str(_) | Expr::Int(_) | Expr::Float(_) | Expr::Bool(_), _)
                    ) => {
                        out.insert(Feature::ValueJoin);
                    }
                _ => {}
            }
            walk_expr(a, out);
            walk_expr(b, out);
        }
        Expr::Unary(_, a) | Expr::Prop(a, _) | Expr::LabelTest(a, _) => walk_expr(a, out),
        Expr::Index(a, b) => {
            walk_expr(a, out);
            walk_expr(b, out);
        }
        Expr::Func(_, args) => {
            for a in args {
                walk_expr(a, out);
            }
        }
        Expr::Aggregate { arg: Some(a), .. } => walk_expr(a, out),
        Expr::Aggregate { arg: None, .. } => {}
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            if let Some(o) = operand {
                walk_expr(o, out);
            }
            for (c, r) in whens {
                walk_expr(c, out);
                walk_expr(r, out);
            }
            if let Some(x) = else_ {
                walk_expr(x, out);
            }
        }
        Expr::Exists(q) => {
            out.insert(Feature::ExplicitExists);
            walk_query(q, out);
        }
        Expr::PatternPredicate(p) => {
            out.insert(Feature::ImplicitExists);
            walk_pattern(p, out);
        }
        _ => {}
    }
}

/// Table 1 of the paper: every feature row with the paper's line
/// occurrences. `None` lines mean "all queries" (the paper prints `*`).
pub const TABLE1: &[(Feature, Option<&[u32]>)] = &[
    (Feature::HomomorphicMatching, None),
    (Feature::MatchingLiteralValues, Some(&[18, 22])),
    (Feature::KShortestPaths, Some(&[24])),
    (Feature::Reachability, Some(&[29])),
    (Feature::WeightedShortestPaths, Some(&[60])),
    (Feature::OptionalMatching, Some(&[44])),
    (Feature::MultiGraphQuery, Some(&[6])),
    (Feature::QueriesOnPaths, Some(&[69])),
    (
        Feature::FilteringMatches,
        Some(&[4, 8, 13, 18, 26, 30, 34, 59, 64, 71]),
    ),
    (Feature::FilteringPathExpressions, Some(&[58])),
    (Feature::ValueJoin, Some(&[8])),
    (Feature::CartesianProduct, Some(&[11])),
    (Feature::ListMembership, Some(&[13])),
    (Feature::GraphSetOps, Some(&[8, 14, 19])),
    (Feature::ImplicitExists, Some(&[27, 31, 35])),
    (Feature::ExplicitExists, Some(&[36])),
    (Feature::GraphConstruction, None),
    (Feature::GraphAggregation, Some(&[21])),
    (Feature::GraphProjection, Some(&[23])),
    (Feature::GraphViews, Some(&[39, 57])),
    (Feature::PropertyAddition, Some(&[41])),
];
