//! The complete query corpus of the paper's guided tour (Section 3) and
//! extensions (Section 5), with the paper's listing line numbers.
//!
//! Each entry is an executable G-CORE statement. Two queries are printed
//! in the paper as fragments (the explicit-EXISTS WHERE of lines 36–38
//! and the OPTIONAL sketch of lines 48–50); they are embedded in minimal
//! complete queries here. One erratum is corrected (see
//! [`WAGNER_FRIEND`]); EXPERIMENTS.md records the details.

/// One corpus entry: the paper's listing lines and the query text.
#[derive(Clone, Copy, Debug)]
pub struct CorpusQuery {
    /// Short stable identifier.
    pub id: &'static str,
    /// First line of the query in the paper's listings.
    pub first_line: u32,
    /// Last line of the query in the paper's listings.
    pub last_line: u32,
    /// Executable G-CORE text.
    pub text: &'static str,
}

/// Lines 1–4: persons who work at Acme.
pub const ACME_EMPLOYEES: CorpusQuery = CorpusQuery {
    id: "acme_employees",
    first_line: 1,
    last_line: 4,
    text: "CONSTRUCT (n) \
           MATCH (n:Person) ON social_graph \
           WHERE n.employer = 'Acme'",
};

/// Lines 5–9: multi-graph equi-join producing worksAt edges.
pub const WORKS_AT_EQ: CorpusQuery = CorpusQuery {
    id: "works_at_eq",
    first_line: 5,
    last_line: 9,
    text: "CONSTRUCT (c)<-[:worksAt]-(n) \
           MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
           WHERE c.name = n.employer \
           UNION social_graph",
};

/// Lines 10–14: the IN fix for multi-valued employers.
pub const WORKS_AT_IN: CorpusQuery = CorpusQuery {
    id: "works_at_in",
    first_line: 10,
    last_line: 14,
    text: "CONSTRUCT (c)<-[:worksAt]-(n) \
           MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
           WHERE c.name IN n.employer \
           UNION social_graph",
};

/// Lines 15–19: property unrolling with `{employer = e}`.
pub const WORKS_AT_UNROLL: CorpusQuery = CorpusQuery {
    id: "works_at_unroll",
    first_line: 15,
    last_line: 19,
    text: "CONSTRUCT (c)<-[:worksAt]-(n) \
           MATCH (c:Company) ON company_graph, \
                 (n:Person {employer = e}) ON social_graph \
           WHERE c.name = e \
           UNION social_graph",
};

/// Lines 20–22: graph aggregation with GROUP.
pub const GRAPH_AGGREGATION: CorpusQuery = CorpusQuery {
    id: "graph_aggregation",
    first_line: 20,
    last_line: 22,
    text: "CONSTRUCT social_graph, \
           (x GROUP e :Company {name := e})<-[y:worksAt]-(n) \
           MATCH (n:Person {employer = e})",
};

/// Lines 23–27: storing k shortest paths with @p.
pub const STORED_PATHS: CorpusQuery = CorpusQuery {
    id: "stored_paths",
    first_line: 23,
    last_line: 27,
    text: "CONSTRUCT (n)-/@p:localPeople {distance := c}/->(m) \
           MATCH (n)-/3 SHORTEST p <:knows*> COST c/->(m) \
           WHERE (n:Person) AND (m:Person) \
             AND n.firstName = 'John' AND n.lastName = 'Doe' \
             AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
};

/// Lines 28–31: reachability.
pub const REACHABILITY: CorpusQuery = CorpusQuery {
    id: "reachability",
    first_line: 28,
    last_line: 31,
    text: "CONSTRUCT (m) \
           MATCH (n:Person)-/<:knows*>/->(m:Person) \
           WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
             AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
};

/// Lines 32–35: ALL paths graph projection.
pub const ALL_PATHS: CorpusQuery = CorpusQuery {
    id: "all_paths",
    first_line: 32,
    last_line: 35,
    text: "CONSTRUCT (n)-/p/->(m) \
           MATCH (n:Person)-/ALL p <:knows*>/->(m:Person) \
           WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
             AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
};

/// Lines 36–38: the explicit existential subquery (the paper prints the
/// WHERE fragment; embedded in the reachability query here).
pub const EXPLICIT_EXISTS: CorpusQuery = CorpusQuery {
    id: "explicit_exists",
    first_line: 36,
    last_line: 38,
    text: "CONSTRUCT (m) \
           MATCH (n:Person), (m:Person) \
           WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
             AND EXISTS ( CONSTRUCT () \
                          MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )",
};

/// Lines 39–47: GRAPH VIEW social_graph1 with OPTIONAL + COUNT(*).
pub const SOCIAL_GRAPH1: CorpusQuery = CorpusQuery {
    id: "social_graph1",
    first_line: 39,
    last_line: 47,
    text: "GRAPH VIEW social_graph1 AS ( \
           CONSTRUCT social_graph, \
           (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
           MATCH (n)-[e:knows]->(m) \
           WHERE (n:Person) AND (m:Person) \
           OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
                    (msg1)-[:reply_of]-(msg2), \
                    (msg2:Post|Comment)-[c2]->(m) \
           WHERE (c1:has_creator) AND (c2:has_creator) )",
};

/// Lines 48–53: independent OPTIONAL blocks (the paper's sketch,
/// completed with a CONSTRUCT head).
pub const OPTIONAL_BLOCKS: CorpusQuery = CorpusQuery {
    id: "optional_blocks",
    first_line: 48,
    last_line: 53,
    text: "CONSTRUCT (n) \
           MATCH (n:Person) \
           OPTIONAL (n)-[:worksAt]->(c) \
           OPTIONAL (n)-[:livesIn]->(a)",
};

/// Lines 57–66: GRAPH VIEW social_graph2 — weighted shortest paths over
/// the wKnows PATH view, storing :toWagner paths.
pub const SOCIAL_GRAPH2: CorpusQuery = CorpusQuery {
    id: "social_graph2",
    first_line: 57,
    last_line: 66,
    text: "GRAPH VIEW social_graph2 AS ( \
           PATH wKnows = (x)-[e:knows]->(y) \
             WHERE NOT 'Acme' IN y.employer \
             COST 1 / (1 + e.nr_messages) \
           CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) \
           MATCH (n:Person)-/p <~wKnows*>/->(m:Person) \
           ON social_graph1 \
           WHERE (m)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
             AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) \
             AND n.firstName = 'John' AND n.lastName = 'Doe' )",
};

/// Lines 67–71: scoring John's friends over the stored :toWagner paths.
///
/// **Erratum**: the paper prints `WHERE n = nodes(p)[1]`, but `n` is the
/// *start* of each path (John) while `nodes(p)[1]` is the second node
/// (the friend); the prose and the reported result (one edge John→Peter
/// with score 2) require `m = nodes(p)[1]`.
pub const WAGNER_FRIEND: CorpusQuery = CorpusQuery {
    id: "wagner_friend",
    first_line: 67,
    last_line: 71,
    text: "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) \
           WHEN e.score > 0 \
           MATCH (n:Person)-/@p:toWagner/->(), (m:Person) \
           ON social_graph2 \
           WHERE m = nodes(p)[1]",
};

/// Lines 72–75: tabular projection (§5).
pub const SELECT_FRIENDS: CorpusQuery = CorpusQuery {
    id: "select_friends",
    first_line: 72,
    last_line: 75,
    text: "SELECT m.lastName + ', ' + m.firstName AS friendName \
           MATCH (n:Person)-/<:knows*>/->(m:Person) \
           WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
             AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
};

/// Lines 76–80: binding-table input (§5).
pub const FROM_ORDERS: CorpusQuery = CorpusQuery {
    id: "from_orders",
    first_line: 76,
    last_line: 80,
    text: "CONSTRUCT \
           (cust GROUP custName :Customer {name := custName}), \
           (prod GROUP prodCode :Product {code := prodCode}), \
           (cust)-[:bought]->(prod) \
           FROM orders",
};

/// Lines 81–85: interpreting tables as graphs (§5).
pub const TABLE_AS_GRAPH: CorpusQuery = CorpusQuery {
    id: "table_as_graph",
    first_line: 81,
    last_line: 85,
    text: "CONSTRUCT \
           (cust GROUP o.custName :Customer {name := o.custName}), \
           (prod GROUP o.prodCode :Product {code := o.prodCode}), \
           (cust)-[:bought]->(prod) \
           MATCH (o) ON orders",
};

/// The whole corpus, in paper order.
pub const ALL: &[CorpusQuery] = &[
    ACME_EMPLOYEES,
    WORKS_AT_EQ,
    WORKS_AT_IN,
    WORKS_AT_UNROLL,
    GRAPH_AGGREGATION,
    STORED_PATHS,
    REACHABILITY,
    ALL_PATHS,
    EXPLICIT_EXISTS,
    SOCIAL_GRAPH1,
    OPTIONAL_BLOCKS,
    SOCIAL_GRAPH2,
    WAGNER_FRIEND,
    SELECT_FRIENDS,
    FROM_ORDERS,
    TABLE_AS_GRAPH,
];

/// The corpus entry whose paper listing covers `line`.
pub fn query_at_line(line: u32) -> Option<&'static CorpusQuery> {
    ALL.iter()
        .find(|q| q.first_line <= line && line <= q.last_line)
}
