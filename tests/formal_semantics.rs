//! The worked examples of Appendix A, evaluated verbatim (experiments
//! E10 and E11 of DESIGN.md).

mod common;

use common::tour;
use gcore_repro::ppg::{Key, Label, NodeId, Value};

// ---------------------------------------------------------------------
// §A.2: MATCH γ WHERE w.name = 'Houston' on the Figure 2 graph
// ---------------------------------------------------------------------

/// γ = x –locatedIn→ w, y –locatedIn→ w, x –@z in (knows+knows⁻)*→ y;
/// ξ = (w.name = Houston). The appendix derives exactly one binding:
/// {x → 105, y → 102, w → 106, z → 301}.
#[test]
fn appendix_a2_match_example() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT x AS x, y AS y, w AS w, z AS z \
             MATCH (x)-[:locatedIn]->(w), (y)-[:locatedIn]->(w), \
                   (x)-/@z <(:knows + :knows-)*>/->(y) \
             ON figure2 \
             WHERE w.name = 'Houston'",
        )
        .unwrap();
    assert_eq!(table.len(), 1, "exactly one maximal binding");
    let row = &table.rows()[0];
    assert_eq!(row[0], Value::str("#n105")); // x → 105
    assert_eq!(row[1], Value::str("#n102")); // y → 102
    assert_eq!(row[2], Value::str("#n106")); // w → 106
    assert_eq!(row[3], Value::str("#p301")); // z → 301
}

/// Without the stored-path atom, the intermediate join of the two
/// locatedIn patterns has the four bindings the appendix prints.
#[test]
fn appendix_a2_intermediate_join() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT x AS x, y AS y \
             MATCH (x)-[:locatedIn]->(w), (y)-[:locatedIn]->(w) \
             ON figure2",
        )
        .unwrap();
    // {105,102} × {105,102} on the shared w → 4 combinations.
    assert_eq!(table.len(), 4);
}

/// Stored-path patterns only bind paths already in P: a fresh regex
/// match (no @) computes a *new* shortest path instead.
#[test]
fn stored_vs_computed_path_patterns() {
    let mut t = tour();
    // @z: only path 301 (105 → 102) exists.
    let stored = t
        .engine
        .query_table(
            "SELECT x AS x, y AS y \
             MATCH (x)-/@z <(:knows + :knows-)*>/->(y) ON figure2",
        )
        .unwrap();
    assert_eq!(stored.len(), 1);
    // Computed: every node pair connected by a knows-walk qualifies
    // (including the zero-length pairs x = y).
    let computed = t
        .engine
        .query_table(
            "SELECT x AS x, y AS y \
             MATCH (x)-/z <(:knows + :knows-)*>/->(y) ON figure2",
        )
        .unwrap();
    assert!(computed.len() > stored.len());
}

// ---------------------------------------------------------------------
// §A.3: CONSTRUCT {f, g, h} — the worksAt skolemization example
// ---------------------------------------------------------------------

/// f = (x GROUP e; {+x:Company, +x.name = e}),
/// g = (n GROUP n; ∅),
/// h = n –y GROUP {x,e,n}; {+y:worksAt}→ x.
/// Over the Figure 4 bindings {(n,e)}: GN has the four skolem company
/// nodes and the four (shared-identity) person nodes; h adds five
/// worksAt edges connecting them.
#[test]
fn appendix_a3_construct_example() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (x GROUP e :Company {name := e})<-[y:worksAt]-(n) \
             MATCH (n:Person {employer = e}) ON social_graph",
        )
        .unwrap();

    // Four fresh Company nodes (skolems new(x, e)).
    let companies = g.nodes_with_label(Label::new("Company"));
    assert_eq!(companies.len(), 4);
    // They are *new* identities, not present in social_graph.
    let orig = t.engine.graph("social_graph").unwrap();
    for c in &companies {
        assert!(!orig.contains_node(*c), "skolem {c} must be fresh");
    }

    // The four employed persons keep their identities (Peter is
    // unemployed: his employer property is absent, so no binding).
    let persons = g.nodes_with_label(Label::new("Person"));
    assert_eq!(persons.len(), 4);
    for p in &persons {
        assert!(orig.contains_node(*p), "person {p} is identity-shared");
    }
    assert!(!persons.contains(&t.peter));

    // Five worksAt edges: Frank twice (CWI and MIT), others once.
    let works_at = g.edges_with_label(Label::new("worksAt"));
    assert_eq!(works_at.len(), 5);
    let frank_edges = works_at
        .iter()
        .filter(|&&e| g.endpoints(e).unwrap().0 == t.frank)
        .count();
    assert_eq!(frank_edges, 2);

    // Every edge connects a person to the company named by its employer
    // value — skolems are keyed by the GROUP value.
    for &e in &works_at {
        let (person, company) = g.endpoints(e).unwrap();
        let cname = g.prop(company.into(), Key::new("name"));
        let emp = g.prop(person.into(), Key::new("employer"));
        let name_val = cname.as_singleton().unwrap().clone();
        assert!(
            emp.contains(&name_val),
            "edge {e}: company {name_val} not an employer of {person}"
        );
    }
}

/// Skolemization is deterministic *within* one CONSTRUCT: the same
/// variable + group key yields the same identifier across patterns.
#[test]
fn skolem_identity_shared_across_patterns() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (x GROUP e :Company {name := e}), \
                       (x)<-[:worksAt]-(n) \
             MATCH (n:Person {employer = e}) ON social_graph",
        )
        .unwrap();
    // The second pattern's x must reuse the first pattern's skolems: 4
    // companies total, not 8.
    assert_eq!(g.nodes_with_label(Label::new("Company")).len(), 4);
    assert_eq!(g.edges_with_label(Label::new("worksAt")).len(), 5);
}

/// Unbound variables without GROUP create one element per binding; the
/// same row reuses the same element for repeated occurrences.
#[test]
fn default_grouping_is_per_binding() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph("CONSTRUCT (v :Marker) MATCH (n:Person) ON social_graph")
        .unwrap();
    // One fresh marker per person binding.
    assert_eq!(g.nodes_with_label(Label::new("Marker")).len(), 5);
}

/// Bound node constructs with a missing binding produce G∅ for that
/// group (dangling-edge prevention).
#[test]
fn optional_missing_bindings_do_not_construct() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-[:sameCity]->(c) \
             MATCH (n:Person) \
             OPTIONAL (n)-[:isLocatedIn]->(c) WHERE c.name = 'Houston'",
        )
        .unwrap();
    // Alice's OPTIONAL row has c missing: no edge, and no dangling node.
    let edges = g.edges_with_label(Label::new("sameCity"));
    assert_eq!(edges.len(), 4);
    assert!(g.contains_node(t.alice), "Alice herself is constructed");
    for e in edges {
        let (_, c) = g.endpoints(e).unwrap();
        assert_eq!(c, t.houston);
    }
}

// ---------------------------------------------------------------------
// §A.5: graph union / intersection / difference laws
// ---------------------------------------------------------------------

#[test]
fn union_merges_attributes_setwise() {
    let mut t = tour();
    // The same identity constructed twice with different SET properties:
    // union must merge σ values as sets.
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n) SET n.tagged := 'a' MATCH (n:Person) WHERE n.firstName = 'John' \
             UNION \
             CONSTRUCT (n) SET n.tagged := 'b' MATCH (n:Person) WHERE n.firstName = 'John'",
        )
        .unwrap();
    let tagged = g.prop(t.john.into(), Key::new("tagged"));
    assert_eq!(tagged.len(), 2);
}

#[test]
fn difference_drops_dangling_edges_and_paths() {
    let mut t = tour();
    // social_graph minus John's node: every knows edge touching John
    // must disappear with him.
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT social_graph \
             MINUS \
             CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'",
        )
        .unwrap();
    assert!(!g.contains_node(t.john));
    for e in g.edge_ids_sorted() {
        let (s, d) = g.endpoints(e).unwrap();
        assert_ne!(s, t.john);
        assert_ne!(d, t.john);
    }
    g.validate().unwrap();
}

#[test]
fn intersection_keeps_common_elements_only() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-[e]->(m) MATCH (n)-[e:knows]->(m) \
             INTERSECT \
             CONSTRUCT (n)-[e]->(m) MATCH (n)-[e]->(m) WHERE n.firstName = 'John'",
        )
        .unwrap();
    // knows edges leaving John: exactly 2 (to Peter, to Alice).
    assert_eq!(g.edge_count(), 2);
    for e in g.edge_ids_sorted() {
        assert_eq!(g.endpoints(e).unwrap().0, t.john);
    }
}

// ---------------------------------------------------------------------
// Figure 2 round-trip through the engine
// ---------------------------------------------------------------------

#[test]
fn figure2_identity_query() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph("CONSTRUCT figure2 MATCH (n) ON figure2 WHERE n = n")
        .unwrap();
    let orig = t.engine.graph("figure2").unwrap();
    assert_eq!(&g, &*orig);
    assert!(g.contains_node(NodeId(105)));
}

// ---------------------------------------------------------------------
// The copy syntax `(=n)` / `-[=e]-` (§3 "Construction that respects
// identities"): fresh identities with copied labels and properties.
// ---------------------------------------------------------------------

#[test]
fn copy_syntax_mints_fresh_identities_with_copied_attrs() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (=n) MATCH (n:Person) ON social_graph \
             WHERE n.firstName = 'John'",
        )
        .unwrap();
    assert_eq!(g.node_count(), 1);
    let copy = g.node_ids_sorted()[0];
    // Fresh identity …
    assert_ne!(copy, t.john);
    let orig = t.engine.graph("social_graph").unwrap();
    assert!(!orig.contains_node(copy));
    // … with copied labels and properties.
    assert!(g.has_label(copy.into(), Label::new("Person")));
    assert_eq!(g.prop(copy.into(), Key::new("firstName")), "John".into());
    assert_eq!(g.prop(copy.into(), Key::new("employer")), "Acme".into());
}

#[test]
fn copy_syntax_on_edges() {
    let mut t = tour();
    // Copy each knows edge between fresh node copies; the copies carry
    // the original edge's labels/properties, with new identity.
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (=n)-[=e]->(=m) \
             MATCH (n:Person)-[e:knows]->(m:Person) ON social_graph \
             WHERE n.firstName = 'John' AND m.firstName = 'Peter'",
        )
        .unwrap();
    assert_eq!(g.edge_count(), 1);
    let e = g.edge_ids_sorted()[0];
    assert!(g.has_label(e.into(), Label::new("knows")));
    let orig = t.engine.graph("social_graph").unwrap();
    assert!(!orig.contains_edge(e), "copied edge has a fresh identity");
}

/// The paper: "With the copy syntax, it is even possible to copy all
/// labels and properties of a node to an edge (or a path) and vice
/// versa."
#[test]
fn copy_across_sorts() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (a)-[=n]->(b) \
             MATCH (n:Person), (a:Tag), (b:City) ON social_graph \
             WHERE n.firstName = 'John' AND a.name = 'Wagner' AND b.name = 'Houston'",
        )
        .unwrap();
    let e = g
        .edge_ids_sorted()
        .into_iter()
        .find(|&e| g.has_label(e.into(), Label::new("Person")))
        .expect("edge carrying the Person label");
    assert_eq!(g.prop(e.into(), Key::new("firstName")), "John".into());
}
