//! Differential test: weighted shortest paths through a PATH view
//! (product-graph Dijkstra) against a Floyd–Warshall oracle on random
//! weighted graphs.

use gcore_repro::engine::Engine;
use gcore_repro::ppg::{Attributes, NodeId, PathPropertyGraph, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct WeightedSpec {
    nodes: usize,
    /// (src, dst, weight in 1..=9)
    edges: Vec<(usize, usize, i64)>,
}

fn weighted_spec() -> impl Strategy<Value = WeightedSpec> {
    (2usize..8).prop_flat_map(|nodes| {
        prop::collection::vec((0..nodes, 0..nodes, 1i64..10), 1..20)
            .prop_map(move |edges| WeightedSpec { nodes, edges })
    })
}

fn build(spec: &WeightedSpec) -> PathPropertyGraph {
    let mut g = PathPropertyGraph::new();
    for i in 0..spec.nodes {
        g.add_node(
            NodeId(i as u64),
            Attributes::labeled("N").with_prop("idx", i as i64),
        );
    }
    for (k, &(s, d, w)) in spec.edges.iter().enumerate() {
        g.add_edge(
            gcore_repro::ppg::EdgeId(100 + k as u64),
            NodeId(s as u64),
            NodeId(d as u64),
            Attributes::labeled("hop").with_prop("w", w),
        )
        .expect("endpoints exist");
    }
    g
}

/// All-pairs shortest distances over the directed weighted graph
/// (self-distance 0 — the Kleene star admits the empty walk).
fn floyd_warshall(spec: &WeightedSpec) -> Vec<Vec<Option<f64>>> {
    let n = spec.nodes;
    let mut d = vec![vec![None::<f64>; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = Some(0.0);
    }
    for &(s, t, w) in &spec.edges {
        if s != t || w == 0 {
            // self-loops still allowed; min below handles them
        }
        let w = w as f64;
        if d[s][t].is_none_or(|cur| w < cur) {
            d[s][t] = Some(w);
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if let (Some(a), Some(b)) = (d[i][k], d[k][j]) {
                    if d[i][j].is_none_or(|cur| a + b < cur) {
                        d[i][j] = Some(a + b);
                    }
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_shortest_costs_match_floyd_warshall(spec in weighted_spec()) {
        let mut engine = Engine::new();
        let g = build(&spec);
        engine.register_graph("g", g);
        engine.set_default_graph("g");

        // One weighted path view over the `hop` edges, cost = the edge's
        // own `w` property.
        let table = engine
            .query_table(
                "PATH step = (x)-[e:hop]->(y) COST e.w \
                 SELECT n.idx AS src, m.idx AS dst, c AS cost \
                 MATCH (n)-/p <~step*> COST c/->(m)",
            )
            .unwrap();

        let oracle = floyd_warshall(&spec);
        // Every reported (src, dst, cost) matches the oracle …
        let mut reported = vec![vec![None::<f64>; spec.nodes]; spec.nodes];
        for row in table.rows() {
            let s = row[0].as_int().unwrap() as usize;
            let t = row[1].as_int().unwrap() as usize;
            let c = match &row[2] {
                Value::Float(f) => *f,
                Value::Int(i) => *i as f64,
                other => panic!("unexpected cost {other:?}"),
            };
            reported[s][t] = Some(c);
        }
        for s in 0..spec.nodes {
            for t in 0..spec.nodes {
                match (reported[s][t], oracle[s][t]) {
                    (Some(got), Some(want)) => {
                        prop_assert!(
                            (got - want).abs() < 1e-9,
                            "cost {s}→{t}: engine {got}, oracle {want}"
                        );
                    }
                    (None, None) => {}
                    (got, want) => {
                        prop_assert!(
                            false,
                            "reachability {s}→{t} disagrees: engine {got:?}, oracle {want:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hop_count_equals_unit_weight_dijkstra(spec in weighted_spec()) {
        // With COST omitted the default is hop count (paper §3): compare
        // against the same oracle with all weights 1.
        let mut engine = Engine::new();
        let g = build(&spec);
        engine.register_graph("g", g);
        engine.set_default_graph("g");
        let table = engine
            .query_table(
                "SELECT n.idx AS src, m.idx AS dst, c AS cost \
                 MATCH (n)-/p <:hop*> COST c/->(m)",
            )
            .unwrap();
        let unit = WeightedSpec {
            nodes: spec.nodes,
            edges: spec.edges.iter().map(|&(s, d, _)| (s, d, 1)).collect(),
        };
        let oracle = floyd_warshall(&unit);
        for row in table.rows() {
            let s = row[0].as_int().unwrap() as usize;
            let t = row[1].as_int().unwrap() as usize;
            let c = row[2].as_int().unwrap_or_else(|| panic!("int cost")) as f64;
            prop_assert_eq!(Some(c), oracle[s][t]);
        }
    }
}
