//! The §5 extensions (experiment E12): SELECT projection, FROM binding
//! table inputs, and interpreting tables as graphs.

mod common;

use common::tour;
use gcore_repro::ppg::{Key, Label, Value};

// ---------------------------------------------------------------------
// Lines 72–75: tabular projection
// ---------------------------------------------------------------------

#[test]
fn select_friend_names() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT m.lastName + ', ' + m.firstName AS friendName \
             MATCH (n:Person)-/<:knows*>/->(m:Person) \
             WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
               AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        )
        .unwrap();
    assert_eq!(table.columns(), &["friendName"]);
    let names: Vec<&str> = table
        .rows()
        .iter()
        .map(|r| r[0].as_str().unwrap())
        .collect();
    // Sorted (deterministic output); knows* includes the empty path so
    // John reaches himself.
    assert_eq!(
        names,
        vec!["Doe, John", "Gold, Frank", "Mayer, Celine", "Smith, Peter"]
    );
}

#[test]
fn select_with_order_limit_distinct() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT DISTINCT n.employer AS emp \
             MATCH (n:Person) \
             ORDER BY emp DESC \
             LIMIT 2",
        )
        .unwrap();
    assert_eq!(table.len(), 2);
    // Employers sorted descending: {CWI,MIT} renders as a set, singleton
    // values unwrap. Descending order puts the multi-set or largest
    // string first; just check determinism and the limit.
    let again = t
        .engine
        .query_table(
            "SELECT DISTINCT n.employer AS emp \
             MATCH (n:Person) \
             ORDER BY emp DESC \
             LIMIT 2",
        )
        .unwrap();
    assert_eq!(table.rows(), again.rows());
}

#[test]
fn select_aggregation_group_by() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT c.name AS city, COUNT(*) AS inhabitants \
             MATCH (n:Person)-[:isLocatedIn]->(c:City) \
             GROUP BY c.name \
             ORDER BY inhabitants DESC",
        )
        .unwrap();
    assert_eq!(table.len(), 2);
    assert_eq!(table.rows()[0][0], Value::str("Houston"));
    assert_eq!(table.rows()[0][1], Value::Int(4));
    assert_eq!(table.rows()[1][0], Value::str("Austin"));
    assert_eq!(table.rows()[1][1], Value::Int(1));
}

// ---------------------------------------------------------------------
// Lines 76–80: FROM binding-table inputs
// ---------------------------------------------------------------------

#[test]
fn construct_from_orders_table() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT \
             (cust GROUP custName :Customer {name := custName}), \
             (prod GROUP prodCode :Product {code := prodCode}), \
             (cust)-[:bought]->(prod) \
             FROM orders",
        )
        .unwrap();
    // 3 distinct customers, 3 distinct products, 4 distinct bought
    // edges (Cleo's duplicate row collapses by grouping).
    assert_eq!(g.nodes_with_label(Label::new("Customer")).len(), 3);
    assert_eq!(g.nodes_with_label(Label::new("Product")).len(), 3);
    let bought = g.edges_with_label(Label::new("bought"));
    assert_eq!(bought.len(), 4);
    // Ann bought two products.
    let ann = g
        .nodes_with_label(Label::new("Customer"))
        .into_iter()
        .find(|&c| g.prop(c.into(), Key::new("name")) == "Ann".into())
        .unwrap();
    assert_eq!(
        g.out_edges(ann)
            .iter()
            .filter(|&&e| g.has_label(e.into(), Label::new("bought")))
            .count(),
        2
    );
}

// ---------------------------------------------------------------------
// Lines 81–85: interpreting tables as graphs
// ---------------------------------------------------------------------

#[test]
fn match_on_table_as_isolated_nodes() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT \
             (cust GROUP o.custName :Customer {name := o.custName}), \
             (prod GROUP o.prodCode :Product {code := o.prodCode}), \
             (cust)-[:bought]->(prod) \
             MATCH (o) ON orders",
        )
        .unwrap();
    assert_eq!(g.nodes_with_label(Label::new("Customer")).len(), 3);
    assert_eq!(g.nodes_with_label(Label::new("Product")).len(), 3);
    assert_eq!(g.edges_with_label(Label::new("bought")).len(), 4);
}

#[test]
fn both_table_import_forms_agree() {
    let mut t = tour();
    let via_from = t
        .engine
        .query_table(
            "SELECT cust.name AS c, prod.code AS p \
             MATCH (cust:Customer)-[:bought]->(prod:Product) \
             ON ( CONSTRUCT \
                  (cust GROUP custName :Customer {name := custName}), \
                  (prod GROUP prodCode :Product {code := prodCode}), \
                  (cust)-[:bought]->(prod) \
                  FROM orders )",
        )
        .unwrap();
    let via_table_graph = t
        .engine
        .query_table(
            "SELECT cust.name AS c, prod.code AS p \
             MATCH (cust:Customer)-[:bought]->(prod:Product) \
             ON ( CONSTRUCT \
                  (cust GROUP o.custName :Customer {name := o.custName}), \
                  (prod GROUP o.prodCode :Product {code := o.prodCode}), \
                  (cust)-[:bought]->(prod) \
                  MATCH (o) ON orders )",
        )
        .unwrap();
    assert_eq!(via_from.rows(), via_table_graph.rows());
    assert_eq!(via_from.len(), 4);
}

#[test]
fn null_cells_stay_unbound_in_from() {
    let mut t = tour();
    let mut table = gcore_repro::ppg::Table::new(vec!["a", "b"]).unwrap();
    table.push_row(vec![Value::str("x"), Value::Null]).unwrap();
    table
        .push_row(vec![Value::str("y"), Value::str("z")])
        .unwrap();
    t.engine.register_table("partial", table);
    let g = t
        .engine
        .query_graph("CONSTRUCT (n GROUP a :Row {a := a, b := b}) FROM partial")
        .unwrap();
    let rows = g.nodes_with_label(Label::new("Row"));
    assert_eq!(rows.len(), 2);
    let x_node = rows
        .iter()
        .find(|&&n| g.prop(n.into(), Key::new("a")) == "x".into())
        .unwrap();
    // The NULL b cell is an absent property, not a NULL value.
    assert!(g.prop((*x_node).into(), Key::new("b")).is_empty());
}
