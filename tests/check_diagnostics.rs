//! Per-code coverage of the `gcore-check` static analyzer: for every
//! diagnostic code, one query that triggers it and one near-identical
//! query that must not (the false-positive guard).
//!
//! All checks run through [`Engine::check`], i.e. catalog-aware against
//! the guided-tour fixture (social graph, company graph, orders table).

mod common;

use common::tour;
use gcore_repro::engine::Engine;

/// The codes `Engine::check` reports for `text`, in source order.
fn codes(engine: &Engine, text: &str) -> Vec<&'static str> {
    engine.check(text).iter().map(|d| d.code.as_str()).collect()
}

fn assert_fires(engine: &Engine, code: &str, text: &str) {
    let cs = codes(engine, text);
    assert!(
        cs.contains(&code),
        "expected {code} for `{text}`, got {cs:?}"
    );
}

fn assert_clean_of(engine: &Engine, code: &str, text: &str) {
    let cs = codes(engine, text);
    assert!(
        !cs.contains(&code),
        "did not expect {code} for `{text}`, got {cs:?}"
    );
}

#[test]
fn e000_parse_error() {
    let t = tour();
    assert_fires(&t.engine, "E000", "CONSTRUCT (n MATCH (n)");
    assert_clean_of(&t.engine, "E000", "CONSTRUCT (n) MATCH (n)");
}

#[test]
fn e001_sort_mismatch() {
    let t = tour();
    assert_fires(&t.engine, "E001", "CONSTRUCT (e) MATCH (n)-[e]->(n)");
    assert_clean_of(&t.engine, "E001", "CONSTRUCT (n) MATCH (n)-[e:knows]->(n)");
    // Collect-all: two independent conflicts, two diagnostics.
    let cs = codes(
        &t.engine,
        "CONSTRUCT (e), (c) MATCH (n)-[e]->(m)-/p <:knows*> COST c/->(k)",
    );
    assert_eq!(cs.iter().filter(|c| **c == "E001").count(), 2, "{cs:?}");
}

#[test]
fn e002_unbound_variable() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E002",
        "CONSTRUCT (n) MATCH (n:Person) WHERE ghost.age > 3",
    );
    assert_clean_of(
        &t.engine,
        "E002",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.age > 3",
    );
}

#[test]
fn e003_optional_shared_variable() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E003",
        "CONSTRUCT (n) MATCH (n:Person) \
         OPTIONAL (n)-[:worksAt]->(a) OPTIONAL (n)-[:livesIn]->(a)",
    );
    // Shared with the *main* pattern: allowed.
    assert_clean_of(
        &t.engine,
        "E003",
        "CONSTRUCT (n) MATCH (n:Person), (a) \
         OPTIONAL (n)-[:worksAt]->(a) OPTIONAL (n)-[:livesIn]->(a)",
    );
}

#[test]
fn e004_misplaced_aggregate() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E004",
        "CONSTRUCT (n) MATCH (n:Person) WHERE COUNT(*) > 2",
    );
    // Aggregates in CONSTRUCT assignments have a grouping context.
    assert_clean_of(
        &t.engine,
        "E004",
        "CONSTRUCT (n {cnt := COUNT(*)}) MATCH (n:Person)",
    );
}

#[test]
fn e005_unknown_references() {
    let t = tour();
    assert_fires(&t.engine, "E005", "CONSTRUCT (n) MATCH (n) ON nowhere");
    assert_clean_of(&t.engine, "E005", "CONSTRUCT (n) MATCH (n) ON social_graph");
    assert_fires(
        &t.engine,
        "E005",
        "CONSTRUCT (x GROUP a) FROM no_such_table",
    );
    assert_clean_of(
        &t.engine,
        "E005",
        "CONSTRUCT (x GROUP custName) FROM orders",
    );
    // Unknown path view in a regex.
    assert_fires(
        &t.engine,
        "E005",
        "CONSTRUCT (m) MATCH (n)-/<~nosuch*>/->(m)",
    );
    assert_clean_of(
        &t.engine,
        "E005",
        "PATH w = (x)-[:knows]->(y) CONSTRUCT (m) MATCH (n)-/<~w*>/->(m)",
    );
}

#[test]
fn e006_invalid_path_pattern() {
    let t = tour();
    // ALL / k SHORTEST on a stored-path pattern.
    assert_fires(&t.engine, "E006", "CONSTRUCT (m) MATCH (n)-/ALL @p/->(m)");
    assert_clean_of(&t.engine, "E006", "CONSTRUCT (m) MATCH (n)-/@p/->(m)");
    // COST on ALL.
    assert_fires(
        &t.engine,
        "E006",
        "CONSTRUCT (m) MATCH (n)-/ALL p <:knows*> COST c/->(m)",
    );
    assert_clean_of(
        &t.engine,
        "E006",
        "CONSTRUCT (m) MATCH (n)-/p <:knows*> COST c/->(m)",
    );
}

#[test]
fn e007_group_conflict() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E007",
        "CONSTRUCT (x GROUP n.employer)-[:a]->(y), (x GROUP n.age)-[:b]->(z) \
         MATCH (n:Person)",
    );
    assert_clean_of(
        &t.engine,
        "E007",
        "CONSTRUCT (x GROUP n.employer)-[:a]->(y), (x GROUP n.employer)-[:b]->(z) \
         MATCH (n:Person)",
    );
}

#[test]
fn e008_graph_expected() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E008",
        "GRAPH VIEW v AS (SELECT n.firstName AS f MATCH (n))",
    );
    assert_clean_of(
        &t.engine,
        "E008",
        "GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n:Person))",
    );
}

#[test]
fn e009_all_paths_escape() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E009",
        "CONSTRUCT (n)-/@p:everything/->(m) MATCH (n)-/ALL p <:knows*>/->(m)",
    );
    // Projection (no `@`) of an ALL variable is the intended use.
    assert_clean_of(
        &t.engine,
        "E009",
        "CONSTRUCT (n)-/p/->(m) MATCH (n)-/ALL p <:knows*>/->(m)",
    );
}

#[test]
fn e012_construct_path_unbound() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E012",
        "CONSTRUCT (n)-/@q:lost/->(m) MATCH (n)-[:knows]->(m)",
    );
    assert_clean_of(
        &t.engine,
        "E012",
        "CONSTRUCT (n)-/@q:found/->(m) MATCH (n)-/q <:knows*>/->(m)",
    );
}

#[test]
fn e013_group_on_bound_variable() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E013",
        "CONSTRUCT (n GROUP n.employer) MATCH (n:Person)",
    );
    assert_clean_of(
        &t.engine,
        "E013",
        "CONSTRUCT (x GROUP n.employer) MATCH (n:Person)",
    );
}

#[test]
fn e014_unknown_set_target() {
    let t = tour();
    assert_fires(
        &t.engine,
        "E014",
        "CONSTRUCT (n) SET ghost.x := 1 MATCH (n:Person)",
    );
    assert_clean_of(
        &t.engine,
        "E014",
        "CONSTRUCT (n) SET n.x := 1 MATCH (n:Person)",
    );
}

#[test]
fn w101_unused_variable() {
    let t = tour();
    assert_fires(
        &t.engine,
        "W101",
        "CONSTRUCT (n) MATCH (n:Person)-[e:knows]->(m)",
    );
    assert_clean_of(
        &t.engine,
        "W101",
        "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m)",
    );
    // Anonymous elements never warn.
    assert_clean_of(
        &t.engine,
        "W101",
        "CONSTRUCT (n) MATCH (n:Person)-[:knows]->()",
    );
}

#[test]
fn w102_shadowed_variable() {
    let t = tour();
    assert_fires(
        &t.engine,
        "W102",
        "SELECT n.firstName AS n MATCH (n:Person)",
    );
    assert_clean_of(
        &t.engine,
        "W102",
        "SELECT n.firstName AS name MATCH (n:Person)",
    );
}

#[test]
fn w103_cartesian_product() {
    let t = tour();
    assert_fires(
        &t.engine,
        "W103",
        "CONSTRUCT (n)-[:x]->(m) MATCH (n:Person), (m:Tag)",
    );
    // Sharing a variable connects the patterns.
    assert_clean_of(
        &t.engine,
        "W103",
        "CONSTRUCT (n)-[:x]->(m) MATCH (n:Person)-[:knows]->(k), (k)-[:knows]->(m)",
    );
    // So does a WHERE conjunct spanning both.
    assert_clean_of(
        &t.engine,
        "W103",
        "CONSTRUCT (n)-[:x]->(m) MATCH (n:Person), (m:Person) \
         WHERE n.employer = m.employer",
    );
}

#[test]
fn w104_unknown_label() {
    let t = tour();
    assert_fires(&t.engine, "W104", "CONSTRUCT (n) MATCH (n:Wizard)");
    assert_clean_of(&t.engine, "W104", "CONSTRUCT (n) MATCH (n:Person)");
}

#[test]
fn w105_unknown_property() {
    let t = tour();
    assert_fires(
        &t.engine,
        "W105",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.shoe_size = 43",
    );
    assert_clean_of(
        &t.engine,
        "W105",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
    );
    // Reads of properties the query itself computes are not linted.
    assert_clean_of(
        &t.engine,
        "W105",
        "CONSTRUCT (n)-[e:scored {score := COUNT(*)}]->(m) WHEN e.score > 0 \
         MATCH (n:Person), (m:Person) WHERE n.employer = m.employer",
    );
}

#[test]
fn w106_suspicious_comparison() {
    let t = tour();
    assert_fires(
        &t.engine,
        "W106",
        "CONSTRUCT (n) MATCH (n:Person) WHERE 'Acme' = 1",
    );
    assert_clean_of(
        &t.engine,
        "W106",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
    );
}

#[test]
fn w107_contradictory_where() {
    let t = tour();
    assert_fires(
        &t.engine,
        "W107",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.age > 3 AND 1 = 2",
    );
    assert_clean_of(
        &t.engine,
        "W107",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.age > 3 AND 1 = 1",
    );
}

/// Warnings never gate evaluation; errors always do.
#[test]
fn severity_gates_evaluation() {
    let mut t = tour();
    // W103 + W104 only: still evaluates.
    assert!(t
        .engine
        .run("CONSTRUCT (n)-[:x]->(m) MATCH (n:Wizard), (m:Tag)")
        .is_ok());
    // E001: refused before evaluation.
    assert!(t
        .engine
        .run("CONSTRUCT (e) MATCH (n)-[e:knows]->(m)")
        .is_err());
}

/// `check` is purely static: it never evaluates, never registers views.
#[test]
fn check_has_no_side_effects() {
    let t = tour();
    let diags = t
        .engine
        .check("GRAPH VIEW ephemeral AS (CONSTRUCT (n) MATCH (n:Person))");
    assert!(diags.is_empty(), "{diags:?}");
    assert!(!t.engine.catalog().has_graph("ephemeral"));
}

/// Script-level checking threads GRAPH VIEW names forward.
#[test]
fn check_script_threads_view_names() {
    let t = tour();
    let script = "GRAPH VIEW recent AS (CONSTRUCT (n) MATCH (n:Person)) \
                  CONSTRUCT (n) MATCH (n) ON recent";
    let errors: Vec<_> = t
        .engine
        .check_script(script)
        .into_iter()
        .filter(|d| d.is_error())
        .collect();
    assert!(errors.is_empty(), "{errors:?}");
    // Without the definition the same reference is E005.
    let lone = "CONSTRUCT (n) MATCH (n) ON recent";
    assert!(t
        .engine
        .check(lone)
        .iter()
        .any(|d| d.code.as_str() == "E005"));
}
