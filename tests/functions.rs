//! The built-in scalar function library (§A.1: "standard ones for type
//! casting, string, date and collection handling"), exercised through
//! complete queries.

mod common;

use common::tour;
use gcore_repro::ppg::Value;

fn eval_one(query: &str) -> Value {
    let mut t = tour();
    let table = t.engine.query_table(query).unwrap();
    assert_eq!(table.len(), 1, "query must yield one row: {query}");
    table.rows()[0][0].clone()
}

/// Helper: wrap an expression into a one-row SELECT.
fn expr(e: &str) -> Value {
    eval_one(&format!(
        "SELECT {e} AS v MATCH (n:Person) WHERE n.firstName = 'John'"
    ))
}

#[test]
fn string_functions() {
    assert_eq!(expr("lower('AbC')"), Value::str("abc"));
    assert_eq!(expr("upper('AbC')"), Value::str("ABC"));
    assert_eq!(expr("trim('  hi  ')"), Value::str("hi"));
    assert_eq!(expr("contains('Wagner', 'agn')"), Value::Bool(true));
    assert_eq!(expr("startsWith('Wagner', 'Wag')"), Value::Bool(true));
    assert_eq!(expr("endsWith('Wagner', 'ner')"), Value::Bool(true));
    assert_eq!(expr("contains('Wagner', 'xyz')"), Value::Bool(false));
    assert_eq!(expr("substring('Wagner', 3)"), Value::str("ner"));
    assert_eq!(expr("substring('Wagner', 0, 3)"), Value::str("Wag"));
    assert_eq!(expr("substring('Wagner', 10)"), Value::str(""));
    assert_eq!(expr("size('Wagner')"), Value::Int(6));
}

#[test]
fn numeric_functions() {
    assert_eq!(expr("abs(0 - 5)"), Value::Int(5));
    assert_eq!(expr("floor(2.7)"), Value::Int(2));
    assert_eq!(expr("ceil(2.2)"), Value::Int(3));
    assert_eq!(expr("sqrt(9.0)"), Value::Float(3.0));
    assert_eq!(expr("toInteger('42')"), Value::Int(42));
    assert_eq!(expr("toFloat('2.5')"), Value::Float(2.5));
    assert_eq!(expr("toString(42)"), Value::str("42"));
    // Failed casts coalesce to NULL, not errors.
    assert_eq!(expr("toInteger('not a number')"), Value::Null);
}

#[test]
fn date_functions() {
    assert_eq!(expr("year(DATE '2014-12-01')"), Value::Int(2014));
    assert_eq!(expr("month(DATE '2014-12-01')"), Value::Int(12));
    assert_eq!(expr("day(DATE '2014-12-01')"), Value::Int(1));
    // ISO strings coerce.
    assert_eq!(expr("year('2016-07-03')"), Value::Int(2016));
    // Date comparisons have calendar order.
    assert_eq!(
        expr("DATE '2014-12-01' < DATE '2015-01-01'"),
        Value::Bool(true)
    );
}

#[test]
fn path_and_list_functions() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT head(nodes(p)) AS first, last(nodes(p)) AS last, \
                    size(edges(p)) AS hops, length(p) AS len \
             MATCH (n:Person)-/p <:knows*>/->(m:Person) \
             WHERE n.firstName = 'John' AND m.firstName = 'Frank'",
        )
        .unwrap();
    assert_eq!(table.len(), 1);
    let row = &table.rows()[0];
    assert_eq!(row[0].to_string(), row[0].to_string()); // head is the source
    assert_eq!(row[2], Value::Int(2));
    assert_eq!(row[3], Value::Int(2));
    assert_eq!(row[0], Value::str(format!("#n{}", t.john.raw())));
    assert_eq!(row[1], Value::str(format!("#n{}", t.frank.raw())));
}

#[test]
fn labels_function_lists_all_labels() {
    let v = expr("labels(n)");
    assert!(v.as_str().unwrap().contains("Person"));
}

#[test]
fn functions_are_null_safe() {
    // Absent input propagates NULL rather than failing.
    assert_eq!(expr("trim(n.nonexistent)"), Value::Null);
    assert_eq!(expr("year(n.nonexistent)"), Value::Null);
    assert_eq!(expr("sqrt(0.0 - 1.0)"), Value::Null);
    assert_eq!(expr("head(nodes(n))"), Value::Null, "nodes() of a non-path");
}

#[test]
fn case_insensitive_function_names() {
    assert_eq!(expr("LOWER('X')"), Value::str("x"));
    assert_eq!(expr("Starts_With('ab', 'a')"), Value::Bool(true));
}

#[test]
fn aggregates_in_select() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT COUNT(*) AS n, MIN(p.firstName) AS first, \
                    MAX(p.firstName) AS last, \
                    COLLECT(DISTINCT p.employer) AS emps \
             MATCH (p:Person)",
        )
        .unwrap();
    let row = &table.rows()[0];
    assert_eq!(row[0], Value::Int(5));
    assert_eq!(row[1], Value::str("Alice"));
    assert_eq!(row[2], Value::str("Peter"));
    let emps = row[3].as_str().unwrap();
    assert!(emps.contains("Acme") && emps.contains("HAL"));
}

#[test]
fn sum_and_avg() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT SUM(size(p.employer)) AS jobs, AVG(size(p.employer)) AS avg_jobs \
             MATCH (p:Person)",
        )
        .unwrap();
    let row = &table.rows()[0];
    assert_eq!(row[0], Value::Int(5)); // 1+0+1+1+2
    assert_eq!(row[1], Value::Float(1.0));
}
