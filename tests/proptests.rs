//! Property-based tests (proptest) over the data model, the graph set
//! operations of §A.5, and the path machinery.

use gcore_repro::engine::Engine;
use gcore_repro::ppg::{ops, Attributes, GraphBuilder, NodeId, PathPropertyGraph};
use proptest::prelude::*;

/// A random PPG description: `n` nodes with a label chosen from a small
/// pool, plus edges between random endpoints.
#[derive(Clone, Debug)]
struct GraphSpec {
    nodes: usize,
    edges: Vec<(usize, usize, u8)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (1usize..12).prop_flat_map(|nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes, 0u8..3), 0..24);
        edges.prop_map(move |edges| GraphSpec { nodes, edges })
    })
}

const LABELS: [&str; 3] = ["knows", "likes", "follows"];

/// Build the graph with identifiers offset so two specs can share or not
/// share identities.
fn build(spec: &GraphSpec, offset: u64) -> PathPropertyGraph {
    let mut g = PathPropertyGraph::new();
    for i in 0..spec.nodes {
        g.add_node(
            NodeId(offset + i as u64),
            Attributes::labeled("Person").with_prop("idx", i as i64),
        );
    }
    for (k, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(
            gcore_repro::ppg::EdgeId(offset + 1000 + k as u64),
            NodeId(offset + s as u64),
            NodeId(offset + d as u64),
            Attributes::labeled(LABELS[l as usize]),
        )
        .expect("endpoints exist");
    }
    g
}

proptest! {
    // ------------------------------------------------------------------
    // §A.5 graph set-operation laws
    // ------------------------------------------------------------------

    #[test]
    fn union_is_idempotent_and_monotone(spec in graph_spec()) {
        let g = build(&spec, 0);
        let u = ops::union(&g, &g);
        prop_assert_eq!(&u, &g);
        u.validate().unwrap();
    }

    #[test]
    fn intersection_with_self_is_identity(spec in graph_spec()) {
        let g = build(&spec, 0);
        let i = ops::intersect(&g, &g);
        prop_assert_eq!(&i, &g);
    }

    #[test]
    fn difference_with_self_is_empty(spec in graph_spec()) {
        let g = build(&spec, 0);
        let d = ops::difference(&g, &g);
        prop_assert!(d.is_empty());
    }

    #[test]
    fn union_contains_both_operands(a in graph_spec(), b in graph_spec()) {
        // Shared identity space: node i is the same entity in both.
        let ga = build(&a, 0);
        let gb = build(&b, 0);
        // Edges get disjoint ids (offset differs per spec index), so the
        // graphs are consistent by construction except when edge ids
        // coincide — build b's edges with a different id base.
        let mut gb2 = PathPropertyGraph::new();
        for n in gb.node_ids_sorted() {
            gb2.add_node(n, gb.node(n).unwrap().attrs.clone());
        }
        for (k, e) in gb.edge_ids_sorted().iter().enumerate() {
            let d = gb.edge(*e).unwrap();
            gb2.add_edge(
                gcore_repro::ppg::EdgeId(5000 + k as u64),
                d.src,
                d.dst,
                d.attrs.clone(),
            )
            .unwrap();
        }
        let u = ops::union(&ga, &gb2);
        u.validate().unwrap();
        for n in ga.node_ids() {
            prop_assert!(u.contains_node(n));
        }
        for n in gb2.node_ids() {
            prop_assert!(u.contains_node(n));
        }
        for e in ga.edge_ids() {
            prop_assert!(u.contains_edge(e));
        }
    }

    #[test]
    fn difference_never_dangles(a in graph_spec(), b in graph_spec()) {
        let ga = build(&a, 0);
        let gb = build(&b, 0);
        let d = ops::difference(&ga, &gb);
        d.validate().unwrap();
        for e in d.edge_ids() {
            let (s, t) = d.endpoints(e).unwrap();
            prop_assert!(d.contains_node(s));
            prop_assert!(d.contains_node(t));
        }
    }

    #[test]
    fn intersection_commutes(a in graph_spec(), b in graph_spec()) {
        let ga = build(&a, 0);
        let gb = build(&b, 0);
        let ab = ops::intersect(&ga, &gb);
        let ba = ops::intersect(&gb, &ga);
        prop_assert_eq!(ab, ba);
    }

    // ------------------------------------------------------------------
    // Engine-level invariants on arbitrary graphs
    // ------------------------------------------------------------------

    #[test]
    fn construct_match_is_node_identity(spec in graph_spec()) {
        let mut engine = Engine::new();
        let g = build(&spec, 0);
        let node_ids = g.node_ids_sorted();
        engine.register_graph("g", g);
        engine.set_default_graph("g");
        let out = engine.query_graph("CONSTRUCT (n) MATCH (n)").unwrap();
        prop_assert_eq!(out.node_ids_sorted(), node_ids);
        prop_assert_eq!(out.edge_count(), 0);
    }

    #[test]
    fn full_graph_roundtrip_preserves_everything(spec in graph_spec()) {
        let mut engine = Engine::new();
        let g = build(&spec, 0);
        engine.register_graph("g", g.clone());
        engine.set_default_graph("g");
        let out = engine
            .query_graph("CONSTRUCT (n)-[e]->(m) MATCH (n)-[e]->(m) UNION CONSTRUCT (n) MATCH (n)")
            .unwrap();
        prop_assert_eq!(out, g);
    }

    #[test]
    fn where_filter_is_a_subset(spec in graph_spec()) {
        let mut engine = Engine::new();
        let g = build(&spec, 0);
        engine.register_graph("g", g.clone());
        engine.set_default_graph("g");
        let filtered = engine
            .query_graph("CONSTRUCT (n) MATCH (n) WHERE n.idx < 5")
            .unwrap();
        for n in filtered.node_ids() {
            prop_assert!(g.contains_node(n));
        }
        filtered.validate().unwrap();
    }

    #[test]
    fn shortest_paths_are_connected_walks(spec in graph_spec()) {
        let mut engine = Engine::new();
        let g = build(&spec, 0);
        engine.register_graph("g", g.clone());
        engine.set_default_graph("g");
        let out = engine
            .query_graph(
                "CONSTRUCT (n)-/@p:found/->(m) \
                 MATCH (n)-/p <:knows*>/->(m)",
            )
            .unwrap();
        out.validate().unwrap(); // add_path re-checks Def 2.1 (3)
        for p in out.path_ids_sorted() {
            let shape = &out.path(p).unwrap().shape;
            // Every stored path uses only knows edges of the original
            // graph, traversed forward.
            for (i, e) in shape.edges().iter().enumerate() {
                let (s, d) = g.endpoints(*e).unwrap();
                prop_assert_eq!(s, shape.nodes()[i]);
                prop_assert_eq!(d, shape.nodes()[i + 1]);
                prop_assert!(g.has_label((*e).into(), "knows".into()));
            }
        }
    }

    #[test]
    fn reachability_matches_manual_bfs(spec in graph_spec()) {
        let mut engine = Engine::new();
        let g = build(&spec, 0);
        engine.register_graph("g", g.clone());
        engine.set_default_graph("g");
        let out = engine
            .query_graph(
                "CONSTRUCT (m) MATCH (n)-/<:knows*>/->(m) WHERE n.idx = 0",
            )
            .unwrap();
        // Manual BFS over knows edges from node 0.
        let start = NodeId(0);
        let mut seen = vec![start];
        let mut queue = vec![start];
        while let Some(x) = queue.pop() {
            for &e in g.out_edges(x) {
                if !g.has_label(e.into(), "knows".into()) {
                    continue;
                }
                let (_, t) = g.endpoints(e).unwrap();
                if !seen.contains(&t) {
                    seen.push(t);
                    queue.push(t);
                }
            }
        }
        seen.sort();
        prop_assert_eq!(out.node_ids_sorted(), seen);
    }

    // ------------------------------------------------------------------
    // Determinism: same query, same catalog ⇒ byte-identical result
    // ------------------------------------------------------------------

    #[test]
    fn evaluation_is_deterministic(spec in graph_spec()) {
        let build_and_run = || {
            let mut engine = Engine::new();
            let g = build(&spec, 0);
            engine.register_graph("g", g);
            engine.set_default_graph("g");
            engine
                .query_graph(
                    "CONSTRUCT (x GROUP n.idx :G {v := n.idx})<-[:of]-(n) \
                     MATCH (n)-[:knows]->(m)",
                )
                .unwrap()
        };
        prop_assert_eq!(build_and_run(), build_and_run());
    }
}

// ---------------------------------------------------------------------
// Parser roundtrip over the corpus (print → parse → print fixpoint)
// ---------------------------------------------------------------------

#[test]
fn corpus_pretty_print_roundtrip() {
    use gcore_repro::parser::{parse_statement, print_statement};
    for q in gcore_repro::corpus::ALL {
        let ast1 = parse_statement(q.text).unwrap();
        let printed = print_statement(&ast1);
        let ast2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("'{}' failed to reparse: {e}\n{printed}", q.id));
        assert_eq!(ast1, ast2, "roundtrip changed the AST of '{}'", q.id);
    }
}

#[test]
fn builder_and_direct_construction_agree() {
    let mut b = GraphBuilder::standalone();
    let x = b.node(Attributes::labeled("A"));
    let y = b.node(Attributes::labeled("B"));
    b.edge(x, y, Attributes::labeled("e"));
    let g1 = b.build();

    let mut g2 = PathPropertyGraph::new();
    g2.add_node(x, Attributes::labeled("A"));
    g2.add_node(y, Attributes::labeled("B"));
    g2.add_edge(g1.edge_ids_sorted()[0], x, y, Attributes::labeled("e"))
        .unwrap();
    assert_eq!(g1, g2);
}
