//! Shared setup for the integration tests: an engine loaded with the
//! paper's toy datasets (Figures 2 and 4).

use gcore_repro::engine::Engine;
use gcore_repro::ppg::{Key, Label, NodeId, PathPropertyGraph, Value};
use gcore_repro::snb::{figure2, social_dataset};

/// The guided-tour fixture: engine + the named node identities.
// Each integration test uses a different subset of the handles.
#[allow(dead_code)]
pub struct Tour {
    pub engine: Engine,
    pub john: NodeId,
    pub peter: NodeId,
    pub alice: NodeId,
    pub celine: NodeId,
    pub frank: NodeId,
    pub houston: NodeId,
    pub wagner: NodeId,
}

/// An engine with `social_graph` (default), `company_graph`, the
/// `orders` table and the Figure 2 graph registered.
pub fn tour() -> Tour {
    let mut engine = Engine::new();
    let ids = engine.catalog().ids().clone();
    let d = gcore_repro::snb::social_dataset(&ids);
    let fig2 = figure2(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", fig2);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    Tour {
        engine,
        john: d.john,
        peter: d.peter,
        alice: d.alice,
        celine: d.celine,
        frank: d.frank,
        houston: d.houston,
        wagner: d.wagner,
    }
}

/// Re-export for tests that only need the dataset, not an engine.
#[allow(dead_code)]
pub fn dataset() -> gcore_repro::snb::SocialDataset {
    social_dataset(&gcore_repro::ppg::IdGen::new())
}

/// The persons (by id) present in a result graph.
#[allow(dead_code)]
pub fn person_ids(g: &PathPropertyGraph) -> Vec<NodeId> {
    g.nodes_with_label(Label::new("Person"))
}

/// First names of the persons in a result graph, sorted.
#[allow(dead_code)]
pub fn first_names(g: &PathPropertyGraph) -> Vec<String> {
    let mut names: Vec<String> = g
        .nodes_with_label(Label::new("Person"))
        .into_iter()
        .filter_map(|n| {
            g.prop(n.into(), Key::new("firstName"))
                .as_singleton()
                .and_then(|v| v.as_str().map(str::to_owned))
        })
        .collect();
    names.sort();
    names
}

/// Singleton string property of an element.
#[allow(dead_code)]
pub fn str_prop(g: &PathPropertyGraph, id: NodeId, key: &str) -> Option<String> {
    g.prop(id.into(), Key::new(key))
        .as_singleton()
        .and_then(|v| v.as_str().map(str::to_owned))
}

/// Singleton int property of an element id (any sort).
#[allow(dead_code)]
pub fn int_prop(
    g: &PathPropertyGraph,
    id: impl Into<gcore_repro::ppg::ElementId>,
    key: &str,
) -> Option<i64> {
    g.prop(id.into(), Key::new(key))
        .as_singleton()
        .and_then(Value::as_int)
}
