//! GRAPH VIEW `social_graph2` — lines 57–66 — and the expert-finding
//! finale — lines 67–71 (experiment E5): weighted shortest paths over a
//! PATH view, stored `:toWagner` paths, and scoring John's friends.

mod common;

use common::{int_prop, tour, Tour};
use gcore_repro::ppg::{Key, Label, Value};

const SOCIAL_GRAPH1: &str = "GRAPH VIEW social_graph1 AS ( \
     CONSTRUCT social_graph, \
     (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
     MATCH (n)-[e:knows]->(m) \
     WHERE (n:Person) AND (m:Person) \
     OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
              (msg1)-[:reply_of]-(msg2), \
              (msg2:Post|Comment)-[c2]->(m) \
     WHERE (c1:has_creator) AND (c2:has_creator) )";

const SOCIAL_GRAPH2: &str = "GRAPH VIEW social_graph2 AS ( \
     PATH wKnows = (x)-[e:knows]->(y) \
       WHERE NOT 'Acme' IN y.employer \
       COST 1 / (1 + e.nr_messages) \
     CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) \
     MATCH (n:Person)-/p <~wKnows*>/->(m:Person) \
     ON social_graph1 \
     WHERE (m)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
       AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) \
       AND n.firstName = 'John' AND n.lastName = 'Doe' )";

fn with_views() -> Tour {
    let mut t = tour();
    t.engine.run(SOCIAL_GRAPH1).unwrap();
    t.engine.run(SOCIAL_GRAPH2).unwrap();
    t
}

#[test]
fn social_graph2_stores_two_to_wagner_paths() {
    let t = with_views();
    let g = t.engine.graph("social_graph2").unwrap();

    // "it adds to social_graph1 two stored paths" — one per Wagner
    // lover, and "both via Peter".
    let paths = g.paths_with_label(Label::new("toWagner"));
    assert_eq!(paths.len(), 2);
    let mut ends = Vec::new();
    for p in paths {
        let shape = &g.path(p).unwrap().shape;
        assert_eq!(shape.start(), t.john);
        assert_eq!(shape.nodes()[1], t.peter, "both paths go via Peter");
        assert_eq!(shape.length(), 2);
        ends.push(shape.end());
    }
    ends.sort();
    let mut expected = vec![t.celine, t.frank];
    expected.sort();
    assert_eq!(ends, expected);
}

#[test]
fn social_graph2_contains_social_graph1() {
    let t = with_views();
    let g1 = t.engine.graph("social_graph1").unwrap();
    let g2 = t.engine.graph("social_graph2").unwrap();
    for n in g1.node_ids() {
        assert!(g2.contains_node(n));
    }
    for e in g1.edge_ids() {
        assert!(g2.contains_edge(e));
    }
    // nr_messages survives into the second view.
    let knows = g2.edges_with_label(Label::new("knows"));
    let john_peter = knows
        .iter()
        .find(|&&e| g2.endpoints(e) == Some((t.john, t.peter)))
        .unwrap();
    assert_eq!(int_prop(&g2, *john_peter, "nr_messages"), Some(3));
}

#[test]
fn weighted_costs_pick_the_message_heavy_route() {
    let mut t = tour();
    t.engine.run(SOCIAL_GRAPH1).unwrap();
    // Bind the weighted cost: John→Peter = 1/(1+3) = 0.25,
    // Peter→Frank = 1/(1+2) ≈ 0.333; total ≈ 0.583.
    let table = t
        .engine
        .query_table(
            "PATH wKnows = (x)-[e:knows]->(y) \
               WHERE NOT 'Acme' IN y.employer \
               COST 1 / (1 + e.nr_messages) \
             SELECT m.firstName AS name, c AS pathCost \
             MATCH (n:Person)-/p <~wKnows*> COST c/->(m:Person) ON social_graph1 \
             WHERE n.firstName = 'John' AND m.firstName = 'Frank'",
        )
        .unwrap();
    assert_eq!(table.len(), 1);
    let cost = match &table.rows()[0][1] {
        Value::Float(f) => *f,
        other => panic!("expected float cost, got {other:?}"),
    };
    assert!((cost - (0.25 + 1.0 / 3.0)).abs() < 1e-9, "cost {cost}");
}

#[test]
fn acme_employees_are_excluded_from_weighted_paths() {
    let mut t = tour();
    t.engine.run(SOCIAL_GRAPH1).unwrap();
    // Alice works at Acme: no wKnows path may reach her.
    let table = t
        .engine
        .query_table(
            "PATH wKnows = (x)-[e:knows]->(y) \
               WHERE NOT 'Acme' IN y.employer \
               COST 1 / (1 + e.nr_messages) \
             SELECT m.firstName AS name \
             MATCH (n:Person)-/p <~wKnows* > COST c/->(m:Person) ON social_graph1 \
             WHERE n.firstName = 'John' AND m.firstName = 'Alice'",
        )
        .unwrap();
    assert!(table.is_empty());
}

// ---------------------------------------------------------------------
// Lines 67–71: scoring John's friends
// ---------------------------------------------------------------------

/// The paper prints `WHERE n = nodes(p)[1]`, but `n` is bound by the
/// pattern to the *start* of each `:toWagner` path (John), while
/// `nodes(p)[1]` is the second node (the direct friend). The prose and
/// the reported answer ("a single :wagnerFriend edge between John and
/// Peter with score 2") require the friend variable `m` to be the one
/// equated with `nodes(p)[1]` — we evaluate the corrected query and
/// record the erratum in EXPERIMENTS.md.
#[test]
fn wagner_friend_score() {
    let mut t = with_views();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) \
             WHEN e.score > 0 \
             MATCH (n:Person)-/@p:toWagner/->() ON social_graph2, \
                   (m:Person) ON social_graph2 \
             WHERE m = nodes(p)[1]",
        )
        .unwrap();
    // A single wagnerFriend edge John→Peter with score 2.
    let edges = g.edges_with_label(Label::new("wagnerFriend"));
    assert_eq!(edges.len(), 1);
    let e = edges[0];
    assert_eq!(g.endpoints(e), Some((t.john, t.peter)));
    assert_eq!(int_prop(&g, e, "score"), Some(2));
}

#[test]
fn when_filters_zero_score_groups() {
    let mut t = with_views();
    // Negate the condition: WHEN e.score > 2 kills the only group, and
    // the endpoint nodes it would dangle from are dropped with it.
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) \
             WHEN e.score > 2 \
             MATCH (n:Person)-/@p:toWagner/->() ON social_graph2, \
                   (m:Person) ON social_graph2 \
             WHERE m = nodes(p)[1]",
        )
        .unwrap();
    assert_eq!(g.edges_with_label(Label::new("wagnerFriend")).len(), 0);
}

#[test]
fn stored_path_cost_property_is_queryable() {
    let t = with_views();
    let g = t.engine.graph("social_graph2").unwrap();
    // Paths are first-class: they carry labels; nodes()/edges() work on
    // them (checked via the toWagner shapes above). Their identity is in
    // P, disjoint from N and E.
    for p in g.paths_with_label(Label::new("toWagner")) {
        assert!(g.path(p).is_some());
        assert!(g.prop(p.into(), Key::new("nonexistent")).is_empty());
    }
}
