//! Golden-file tests for the rustc-style diagnostic renderer: the
//! exact rendered text (gutter, caret underline, notes, help, summary
//! line) is pinned under `tests/golden/`.
//!
//! To regenerate after an intentional renderer change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test diag_rendering
//! ```

mod common;

use common::tour;
use gcore_repro::engine::render_all;
use std::path::PathBuf;

/// Compare (or, under `GOLDEN_BLESS=1`, rewrite) one golden file.
fn assert_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "rendered diagnostics for {name} diverge from the golden file; \
         if the change is intentional, regenerate with GOLDEN_BLESS=1"
    );
}

fn rendered(text: &str) -> String {
    let t = tour();
    render_all(&t.engine.check(text), text)
}

#[test]
fn golden_sort_mismatch() {
    // Two independent E001 conflicts, collected in one report.
    assert_golden(
        "sort_mismatch.txt",
        &rendered("CONSTRUCT (e), (c) MATCH (n)-[e:knows]->(m)-/p <:knows*> COST c/->(k)"),
    );
}

#[test]
fn golden_unbound_and_unused() {
    assert_golden(
        "unbound_and_unused.txt",
        &rendered("CONSTRUCT (n) MATCH (n:Person)-[e:knows]->(m) WHERE ghost.age > 1"),
    );
}

#[test]
fn golden_optional_shared() {
    assert_golden(
        "optional_shared.txt",
        &rendered(
            "CONSTRUCT (n) MATCH (n:Person) \
             OPTIONAL (n)-[:worksAt]->(a) OPTIONAL (n)-[:livesIn]->(a)",
        ),
    );
}

#[test]
fn golden_parse_error() {
    assert_golden("parse_error.txt", &rendered("CONSTRUCT (n MATCH (n)"));
}

#[test]
fn golden_warnings_only() {
    // W104 + W106 + W107: warnings render with their own severity tag
    // and the summary counts them separately.
    assert_golden(
        "warnings_only.txt",
        &rendered("CONSTRUCT (n) MATCH (n:Wizard) WHERE 1 = 'one' AND 2 = 3"),
    );
}

#[test]
fn golden_multiline_spans() {
    // Spans on a later line of a multi-line query: the gutter shows the
    // right line number and the caret lands under the right column.
    assert_golden(
        "multiline.txt",
        &rendered("CONSTRUCT (e)\nMATCH (n)-[e:knows]->(m)\nWHERE nope.x = 1"),
    );
}

#[test]
fn golden_clean_query_renders_empty_summary() {
    assert_golden(
        "clean.txt",
        &rendered("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'"),
    );
}
