//! Golden-file tests pinning the `EXPLAIN ANALYZE` rendering
//! (`Engine::profile` + `QueryProfile::render`): operator span tree,
//! planner estimates vs actual rows, misestimate markers and auxiliary
//! counters. Timings are redacted (`time=…`) so the structure is
//! deterministic for a given statement and snapshot — the same
//! convention `tests/explain_golden.rs` uses for the static plan.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test profile_golden
//! ```
//!
//! Unlike `Engine::explain` (which always renders the planner's
//! decisions), a profile records the evaluation that actually ran, so
//! under `GCORE_PLAN=off` the span tree legitimately differs — the
//! goldens pin the default (planner-on) rendering and comparisons are
//! skipped in that mode; `crates/core/tests/profile_equivalence.rs`
//! covers planner-off profiling.

mod common;

use common::tour;
use gcore_repro::corpus;
use std::path::PathBuf;

/// True unless `GCORE_PLAN` disables the planner (mirrors
/// `gcore::context::planner_default`, which tests cannot call).
fn planner_on() -> bool {
    !matches!(
        std::env::var("GCORE_PLAN").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// Compare (or, under `GOLDEN_BLESS=1`, rewrite) one golden file.
/// No-op with the planner disabled: the pinned renderings are
/// planner-on artifacts (see the module docs).
fn assert_golden(name: &str, actual: &str) {
    if !planner_on() {
        return;
    }
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "EXPLAIN ANALYZE output for {name} diverges from the golden file; \
         if the change is intentional, regenerate with GOLDEN_BLESS=1"
    );
}

/// Profile one statement on a fresh tour engine and render it in
/// golden (timing-redacted) mode.
fn profiled(text: &str) -> String {
    let mut t = tour();
    let (_, profile) = t.engine.profile(text).expect("statement runs");
    profile.validate().expect("well-formed profile");
    profile.render(true)
}

#[test]
fn golden_single_pattern_with_where() {
    assert_golden(
        "profile_acme_employees.txt",
        &profiled(corpus::ACME_EMPLOYEES.text),
    );
}

#[test]
fn golden_multi_graph_join() {
    assert_golden(
        "profile_works_at_eq.txt",
        &profiled(corpus::WORKS_AT_EQ.text),
    );
}

#[test]
fn golden_in_conjunct_pushdown() {
    assert_golden(
        "profile_value_join.txt",
        &profiled(
            "CONSTRUCT (a)-[:colleague]->(b) \
             MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer",
        ),
    );
}

#[test]
fn golden_shortest_path_search() {
    assert_golden(
        "profile_stored_paths.txt",
        &profiled(corpus::STORED_PATHS.text),
    );
}

#[test]
fn golden_reordered_join() {
    // wagner_friend reads the stored :toWagner paths, so the two view
    // definitions must be committed first — a corpus-order evaluation.
    let mut t = tour();
    t.engine.run(corpus::SOCIAL_GRAPH1.text).expect("view 1");
    t.engine.run(corpus::SOCIAL_GRAPH2.text).expect("view 2");
    let (_, profile) = t
        .engine
        .profile(corpus::WAGNER_FRIEND.text)
        .expect("statement runs");
    profile.validate().expect("well-formed profile");
    assert_golden("profile_wagner_friend.txt", &profile.render(true));
}

#[test]
fn golden_no_match_clause() {
    assert_golden(
        "profile_from_orders.txt",
        &profiled(corpus::FROM_ORDERS.text),
    );
}

/// The un-redacted rendering is the same text with real timings.
#[test]
fn unredacted_rendering_reports_real_timings() {
    let mut t = tour();
    let (_, profile) = t
        .engine
        .profile(corpus::ACME_EMPLOYEES.text)
        .expect("statement runs");
    let real = profile.render(false);
    assert!(!real.contains("time=…"));
    assert!(real.contains("time="));
    // Redaction changes timings only: line structure is identical.
    assert_eq!(profile.render(true).lines().count(), real.lines().count());
}
