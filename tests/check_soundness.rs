//! Soundness of the static analyzer: no error-severity false
//! positives. Every query known to evaluate successfully — the §3/§5
//! paper corpus, the SNB-1000 benchmark mix, and randomized
//! pattern/construct combinations — must produce zero error
//! diagnostics (warnings are fine: they never gate evaluation).

mod common;

use common::tour;
use gcore_repro::corpus;
use gcore_repro::engine::{Engine, EngineError, SemanticError};
use proptest::prelude::*;

/// Every corpus query checks clean (no errors) against the catalog
/// state it runs in, *and* still evaluates successfully afterwards —
/// check-then-run in paper order, so views defined by earlier queries
/// exist for later ones.
#[test]
fn corpus_checks_clean_then_runs() {
    let mut t = tour();
    for q in corpus::ALL {
        let errors: Vec<_> = t
            .engine
            .check(q.text)
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        assert!(
            errors.is_empty(),
            "corpus query '{}' has static errors: {errors:?}",
            q.id
        );
        t.engine
            .run(q.text)
            .unwrap_or_else(|e| panic!("corpus query '{}' failed to run: {e}", q.id));
    }
}

/// The benchmark query mix over a generated SNB network with 1000
/// persons: every query checks clean and evaluates.
#[test]
fn snb_1000_checks_clean_then_runs() {
    // The same mixed read-only corpus the concurrency benchmarks use.
    const SNB_QUERIES: &[&str] = &[
        "CONSTRUCT (n) MATCH (n:Person)",
        "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
        "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) WHERE n.personId < 50",
        "CONSTRUCT (n)-[:fof]->(k) \
         MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) WHERE n.personId < 10",
        "CONSTRUCT (a)-[:colleague]->(b) \
         MATCH (a:Person {employer = e}), (b:Person) WHERE e IN b.employer AND a.personId < 20",
        "CONSTRUCT (n) SET n.msgs := COUNT(*) \
         MATCH (n:Person) OPTIONAL (n)<-[:has_creator]-(msg:Post) WHERE n.personId < 100",
        "CONSTRUCT (n) MATCH (n:Person) \
         WHERE (n)-[:hasInterest]->(:Tag {name = 'Wagner'}) AND n.personId < 200",
        "SELECT n.personId AS id, n.firstName AS name MATCH (n:Person) WHERE n.personId < 300",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 3",
        "CONSTRUCT (n)-/@p:sp/->(m) \
         MATCH (n:Person)-/p <:knows*>/->(m:Person) WHERE n.personId = 1",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows :knows->/->(m:Person) WHERE n.personId < 5",
        "CONSTRUCT (t) MATCH (n:Person)-[:hasInterest]->(t:Tag) WHERE n.personId < 150",
        "CONSTRUCT (c) MATCH (c:City)<-[:isLocatedIn]-(n:Person) WHERE n.personId < 120",
        "SELECT m.firstName AS friend MATCH (n:Person)-[:knows]->(m:Person) WHERE n.personId < 80",
        "CONSTRUCT (n)-[:nearby]->(m) \
         MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) WHERE n.personId < 6",
    ];

    let mut engine = Engine::new();
    let data = gcore_repro::snb::generate(
        &gcore_repro::snb::SnbConfig::scale(1000),
        &engine.catalog().ids().clone(),
    );
    engine.register_graph("snb", data.graph);
    engine.set_default_graph("snb");

    for q in SNB_QUERIES {
        let errors: Vec<_> = engine
            .check(q)
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        assert!(
            errors.is_empty(),
            "SNB query `{q}` has static errors: {errors:?}"
        );
        engine
            .run(q)
            .unwrap_or_else(|e| panic!("SNB query `{q}` failed to run: {e}"));
    }
}

// ---------------------------------------------------------------------
// Randomized soundness: analyzer-clean queries never hit runtime sort
// errors.
// ---------------------------------------------------------------------

const VARS: [&str; 5] = ["a", "b", "c", "d", "p"];

/// A random MATCH step: edge or path connection between two variables
/// from the shared pool (overlaps on purpose, to provoke conflicts).
#[derive(Clone, Debug)]
struct Step {
    from: usize,
    conn: usize,
    to: usize,
    path: bool,
    all: bool,
}

/// A random CONSTRUCT pattern over the same pool.
#[derive(Clone, Debug)]
struct Cons {
    from: usize,
    conn: usize,
    to: usize,
    path: bool,
    stored: bool,
}

fn render(steps: &[Step], cons: &[Cons]) -> String {
    let c: Vec<String> = cons
        .iter()
        .map(|c| {
            let (f, x, t) = (VARS[c.from], VARS[c.conn], VARS[c.to]);
            if c.path {
                let at = if c.stored { "@" } else { "" };
                format!("({f})-/{at}{x}/->({t})")
            } else {
                format!("({f})-[{x}]->({t})")
            }
        })
        .collect();
    let m: Vec<String> = steps
        .iter()
        .map(|s| {
            let (f, x, t) = (VARS[s.from], VARS[s.conn], VARS[s.to]);
            if s.path {
                let mode = if s.all { "ALL " } else { "" };
                format!("({f})-/{mode}{x} <:knows*>/->({t})")
            } else {
                format!("({f})-[{x}:knows]->({t})")
            }
        })
        .collect();
    format!("CONSTRUCT {} MATCH {}", c.join(", "), m.join(", "))
}

fn step() -> impl Strategy<Value = Step> {
    (
        0..5usize,
        0..5usize,
        0..5usize,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(from, conn, to, path, all)| Step {
            from,
            conn,
            to,
            path,
            all,
        })
}

fn cons() -> impl Strategy<Value = Cons> {
    (
        0..5usize,
        0..5usize,
        0..5usize,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(from, conn, to, path, stored)| Cons {
            from,
            conn,
            to,
            path,
            stored,
        })
}

proptest! {
    /// If the analyzer reports no errors, evaluation never fails with a
    /// sort error (E001) — the static sort inference is sound for this
    /// query family. (Other semantic raises, e.g. edge-identity E010,
    /// are runtime-value-dependent and out of scope here.)
    #[test]
    fn analyzer_clean_queries_have_no_runtime_sort_errors(
        steps in prop::collection::vec(step(), 1..3),
        cs in prop::collection::vec(cons(), 1..3),
    ) {
        let text = render(&steps, &cs);
        // Not every combination parses; nothing to assert for those.
        if let Ok(stmt) = gcore_repro::parser::parse_statement(&text) {
            let clean = gcore_repro::engine::analyze_statement(&stmt, None)
                .iter()
                .all(|d| !d.is_error());
            if clean {
                let mut t = tour();
                if let Err(EngineError::Semantic(se)) = t.engine.run(&text) {
                    prop_assert!(
                        !matches!(se, SemanticError::SortMismatch { .. })
                            && !matches!(se, SemanticError::Analysis(_)),
                        "analyzer-clean query `{}` hit a runtime sort error: {}", text, se
                    );
                }
            }
        }
    }
}
