//! GRAPH VIEW `social_graph1` — Figure 5 / lines 39–47 of the paper
//! (experiment E4): OPTIONAL matching + COUNT(*) aggregation adds a
//! `nr_messages` property to every knows edge.

mod common;

use common::{int_prop, tour};
use gcore_repro::ppg::Label;

const SOCIAL_GRAPH1: &str = "GRAPH VIEW social_graph1 AS ( \
     CONSTRUCT social_graph, \
     (n)-[e]->(m) SET e.nr_messages := COUNT(*) \
     MATCH (n)-[e:knows]->(m) \
     WHERE (n:Person) AND (m:Person) \
     OPTIONAL (n)<-[c1]-(msg1:Post|Comment), \
              (msg1)-[:reply_of]-(msg2), \
              (msg2:Post|Comment)-[c2]->(m) \
     WHERE (c1:has_creator) AND (c2:has_creator) )";

#[test]
fn social_graph1_nr_messages() {
    let mut t = tour();
    t.engine.run(SOCIAL_GRAPH1).unwrap();
    let g = t.engine.graph("social_graph1").unwrap();

    // The view contains the original graph plus the annotated edges.
    let orig = t.engine.graph("social_graph").unwrap();
    for n in orig.node_ids() {
        assert!(g.contains_node(n));
    }

    // Expected counts per person pair (see gcore-snb::social_graph):
    //   John ↔ Peter → 3, Peter ↔ Frank → 2, Peter ↔ Celine → 1,
    //   John ↔ Alice → 0 (OPTIONAL ⇒ 0, not absent!).
    let expect = [
        (t.john, t.peter, 3),
        (t.peter, t.john, 3),
        (t.peter, t.frank, 2),
        (t.frank, t.peter, 2),
        (t.peter, t.celine, 1),
        (t.celine, t.peter, 1),
        (t.john, t.alice, 0),
        (t.alice, t.john, 0),
    ];
    let knows = g.edges_with_label(Label::new("knows"));
    assert_eq!(knows.len(), 8);
    for (src, dst, count) in expect {
        let e = knows
            .iter()
            .find(|&&e| g.endpoints(e) == Some((src, dst)))
            .unwrap_or_else(|| panic!("knows edge {src}→{dst} missing"));
        assert_eq!(
            int_prop(&g, *e, "nr_messages"),
            Some(count),
            "nr_messages of {src}→{dst}"
        );
    }
}

#[test]
fn view_is_queryable_like_any_graph() {
    let mut t = tour();
    t.engine.run(SOCIAL_GRAPH1).unwrap();
    // Composability: query the view's result.
    let table = t
        .engine
        .query_table(
            "SELECT n.firstName AS a, m.firstName AS b, e.nr_messages AS msgs \
             MATCH (n)-[e:knows]->(m) ON social_graph1 \
             WHERE e.nr_messages > 1",
        )
        .unwrap();
    // Pairs with >1 message: John↔Peter (both directions), Peter↔Frank
    // (both directions).
    assert_eq!(table.len(), 4);
}

#[test]
fn original_graph_is_untouched() {
    let mut t = tour();
    t.engine.run(SOCIAL_GRAPH1).unwrap();
    // G-CORE is a query language, not an update language: the SET in the
    // view must not modify social_graph.
    let orig = t.engine.graph("social_graph").unwrap();
    for e in orig.edges_with_label(Label::new("knows")) {
        assert_eq!(int_prop(&orig, e, "nr_messages"), None);
    }
}

#[test]
fn optional_blocks_left_outer_join_in_order() {
    let mut t = tour();
    // Lines 48–53: independent OPTIONAL blocks commute.
    let a = t
        .engine
        .query_table(
            "SELECT n.firstName AS f, c.name AS city, w.name AS tag \
             MATCH (n:Person) \
             OPTIONAL (n)-[:isLocatedIn]->(c) \
             OPTIONAL (n)-[:hasInterest]->(w)",
        )
        .unwrap();
    let b = t
        .engine
        .query_table(
            "SELECT n.firstName AS f, c.name AS city, w.name AS tag \
             MATCH (n:Person) \
             OPTIONAL (n)-[:hasInterest]->(w) \
             OPTIONAL (n)-[:isLocatedIn]->(c)",
        )
        .unwrap();
    assert_eq!(a.rows(), b.rows());
    // Every person appears (left outer join keeps unmatched rows) —
    // John and Peter have no interest tag, so their tag cell is NULL.
    assert!(a.len() >= 5);
}

#[test]
fn query_local_graph_clause() {
    let mut t = tour();
    // GRAPH name AS (…) introduces a name visible only inside the query.
    let g = t
        .engine
        .query_graph(
            "GRAPH acme_only AS (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme') \
             CONSTRUCT (n) MATCH (n:Person) ON acme_only WHERE n.firstName = 'John'",
        )
        .unwrap();
    assert_eq!(common::first_names(&g), vec!["John"]);
    // The local name is gone afterwards.
    assert!(t
        .engine
        .query_graph("CONSTRUCT (n) MATCH (n) ON acme_only")
        .is_err());
}
