//! Negative tests: the static and runtime restrictions the paper
//! mandates must be *rejected*, with the right error class.

mod common;

use common::tour;
use gcore_repro::engine::{EngineError, RuntimeError, SemanticError};

/// The stable diagnostic code of a semantic error (static-analysis
/// rejections and direct runtime raises share the same code space, so
/// tests assert codes instead of concrete variants).
fn semantic_code(err: &EngineError) -> &'static str {
    match err {
        EngineError::Semantic(se) => se.code(),
        other => panic!("expected a semantic error, got {other:?}"),
    }
}

/// "Using ALL … is not allowed if a path variable is bound to it and
/// used somewhere" other than graph projection (§3).
#[test]
fn all_paths_cannot_be_stored() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-/@p:everything/->(m) \
             MATCH (n:Person)-/ALL p <:knows*>/->(m:Person)",
        )
        .unwrap_err();
    assert_eq!(semantic_code(&err), "E009", "got {err:?}");
}

/// "changing the source and destination of an edge violates its
/// identity" (§3).
#[test]
fn bound_edge_with_other_endpoints_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph(
            "CONSTRUCT (m)-[e]->(n) \
             MATCH (n)-[e:knows]->(m), (x) \
             WHERE n.firstName = 'John'",
        )
        .unwrap_err();
    assert_eq!(semantic_code(&err), "E010", "got {err:?}");
    assert!(matches!(
        err,
        EngineError::Semantic(SemanticError::EdgeEndpointsChanged(_))
    ));
}

/// GROUP on a variable bound by MATCH is meaningless — grouping of bound
/// elements is fixed to their identity (§A.3).
#[test]
fn group_on_bound_variable_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph("CONSTRUCT (n GROUP n.employer) MATCH (n:Person)")
        .unwrap_err();
    assert_eq!(semantic_code(&err), "E013", "got {err:?}");
}

/// "The specified cost must be numerical, and larger than zero
/// (otherwise a run-time error will be raised)" (§3).
#[test]
fn non_positive_path_cost_is_a_runtime_error() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph(
            "PATH zero = (x)-[e:knows]->(y) COST 0 \
             CONSTRUCT (m) MATCH (n)-/<~zero*>/->(m)",
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Runtime(RuntimeError::NonPositiveCost { .. })
        ),
        "got {err:?}"
    );
    let err = t
        .engine
        .query_graph(
            "PATH neg = (x)-[e:knows]->(y) COST 0 - 1 \
             CONSTRUCT (m) MATCH (n)-/<~neg*>/->(m)",
        )
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Runtime(RuntimeError::NonPositiveCost { .. })
    ));
}

/// Unknown PATH views are runtime errors, not silent empties.
#[test]
fn unknown_path_view_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph("CONSTRUCT (m) MATCH (n)-/<~nosuch*>/->(m)")
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Runtime(RuntimeError::UnknownPathView(_))
    ));
}

/// Recursive PATH views are outside G-CORE.
#[test]
fn recursive_path_view_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph(
            "PATH loopy = (x)-/<~loopy>/->(y) \
             CONSTRUCT (m) MATCH (n)-/<~loopy*>/->(m)",
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Runtime(RuntimeError::Other(_))));
}

/// A construct path variable must come from a MATCH path pattern.
#[test]
fn construct_path_requires_bound_variable() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph("CONSTRUCT (n)-/@q:lost/->(m) MATCH (n)-[:knows]->(m)")
        .unwrap_err();
    assert_eq!(semantic_code(&err), "E012", "got {err:?}");
}

/// SET on a variable that exists nowhere in the pattern is rejected.
#[test]
fn set_on_unknown_variable_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph("CONSTRUCT (n) SET ghost.x := 1 MATCH (n:Person)")
        .unwrap_err();
    assert_eq!(semantic_code(&err), "E014", "got {err:?}");
}

/// Unknown graphs / tables are catalog errors.
#[test]
fn unknown_graph_and_table_are_catalog_errors() {
    let mut t = tour();
    assert!(matches!(
        t.engine
            .query_graph("CONSTRUCT (n) MATCH (n) ON nowhere")
            .unwrap_err(),
        EngineError::Catalog(_)
    ));
    assert!(matches!(
        t.engine
            .query_graph("CONSTRUCT (n GROUP a) FROM notable")
            .unwrap_err(),
        EngineError::Catalog(_)
    ));
}

/// Parse errors carry line/column diagnostics.
#[test]
fn parse_errors_have_positions() {
    let mut t = tour();
    let err = t.engine.run("CONSTRUCT (n MATCH (n)").unwrap_err();
    let EngineError::Parse(p) = err else {
        panic!("expected parse error");
    };
    assert!(p.line() >= 1);
    assert!(p.column() >= 1);
}

/// Division by zero inside WHERE is reported, not swallowed.
#[test]
fn division_by_zero_reported() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph("CONSTRUCT (n) MATCH (n:Person) WHERE 1 / 0 = 1")
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Runtime(RuntimeError::DivisionByZero)
    ));
}

/// GRAPH VIEW over a SELECT body is rejected (views are graphs).
#[test]
fn graph_view_of_select_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .run("GRAPH VIEW v AS (SELECT n.firstName AS f MATCH (n))")
        .unwrap_err();
    assert!(matches!(err, EngineError::Semantic(_)) || matches!(err, EngineError::Parse(_)));
}

/// The syntactic restriction of §3 / [31]: variables shared by OPTIONAL
/// blocks must appear in the enclosing pattern — "such a pattern is not
/// natural, and it should not be allowed in practice".
#[test]
fn optional_blocks_sharing_fresh_variables_rejected() {
    let mut t = tour();
    let err = t
        .engine
        .query_graph(
            "CONSTRUCT (n) MATCH (n:Person) \
             OPTIONAL (n)-[:worksAt]->(a) \
             OPTIONAL (n)-[:livesIn]->(a)",
        )
        .unwrap_err();
    assert_eq!(semantic_code(&err), "E003", "got {err:?}");
    // The order-independent variant (lines 48–53) is fine.
    assert!(t
        .engine
        .query_graph(
            "CONSTRUCT (n) MATCH (n:Person) \
             OPTIONAL (n)-[:worksAt]->(c) \
             OPTIONAL (n)-[:livesIn]->(a)",
        )
        .is_ok());
}
