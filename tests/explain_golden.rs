//! Golden-file tests pinning `Engine::explain` output: the EXPLAIN
//! rendering is part of the tool surface (CI prints it via
//! `examples/check.rs --explain`), so its exact text — estimates, join
//! order, pushdown and strategy notes — is pinned under `tests/golden/`.
//!
//! To regenerate after an intentional planner change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test explain_golden
//! ```

mod common;

use common::tour;
use gcore_repro::corpus;
use std::path::PathBuf;

/// Compare (or, under `GOLDEN_BLESS=1`, rewrite) one golden file.
fn assert_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "EXPLAIN output for {name} diverges from the golden file; \
         if the change is intentional, regenerate with GOLDEN_BLESS=1"
    );
}

fn explained(text: &str) -> String {
    let mut t = tour();
    t.engine.explain(text).expect("statement parses")
}

#[test]
fn golden_single_pattern_with_residual_where() {
    assert_golden(
        "explain_acme_employees.txt",
        &explained(corpus::ACME_EMPLOYEES.text),
    );
}

#[test]
fn golden_multi_graph_join() {
    assert_golden(
        "explain_works_at_eq.txt",
        &explained(corpus::WORKS_AT_EQ.text),
    );
}

#[test]
fn golden_in_conjunct_pushdown() {
    // The value-join shape: `e` is bound by a's {employer = e} entry, so
    // the planner pushes `e IN b.employer` into b's pattern and the
    // residual WHERE disappears.
    assert_golden(
        "explain_value_join.txt",
        &explained(
            "CONSTRUCT (a)-[:colleague]->(b) \
             MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer",
        ),
    );
}

#[test]
fn golden_shortest_path_strategy() {
    assert_golden(
        "explain_stored_paths.txt",
        &explained(corpus::STORED_PATHS.text),
    );
}

#[test]
fn golden_existential_subquery() {
    assert_golden(
        "explain_explicit_exists.txt",
        &explained(corpus::EXPLICIT_EXISTS.text),
    );
}

#[test]
fn golden_reordered_join() {
    // wagner_friend reads the stored :toWagner paths, so the two view
    // definitions must be committed before its plan can resolve
    // social_graph2 — exactly what a corpus-order evaluation does.
    let mut t = tour();
    t.engine.run(corpus::SOCIAL_GRAPH1.text).expect("view 1");
    t.engine.run(corpus::SOCIAL_GRAPH2.text).expect("view 2");
    let plan = t
        .engine
        .explain(corpus::WAGNER_FRIEND.text)
        .expect("parses");
    assert_golden("explain_wagner_friend.txt", &plan);
}

#[test]
fn golden_no_match_clause() {
    assert_golden(
        "explain_from_orders.txt",
        &explained(corpus::FROM_ORDERS.text),
    );
}
