//! Edge-case behaviours of the matcher and path machinery: undirected
//! patterns, self-loops, parallel edges, exact k-shortest enumeration,
//! and the homomorphism semantics of §3/§6.

mod common;

use common::tour;
use gcore_repro::engine::Engine;
use gcore_repro::ppg::{to_dot, to_text, Attributes, GraphBuilder, Label, Value};

/// A fresh engine around a hand-built graph.
fn engine_with(build: impl FnOnce(&mut GraphBuilder)) -> Engine {
    let mut engine = Engine::new();
    let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    build(&mut b);
    engine.register_graph("g", b.build());
    engine.set_default_graph("g");
    engine
}

#[test]
fn undirected_edge_patterns_match_both_directions() {
    let mut engine = engine_with(|b| {
        let x = b.node(Attributes::labeled("N").with_prop("name", "x"));
        let y = b.node(Attributes::labeled("N").with_prop("name", "y"));
        b.edge(x, y, Attributes::labeled("rel"));
    });
    // Directed out: only x→y.
    let out = engine
        .query_table("SELECT a.name AS f MATCH (a)-[:rel]->(b)")
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::str("x"));
    // Undirected: both orientations bind.
    let undirected = engine
        .query_table("SELECT a.name AS f MATCH (a)-[:rel]-(b)")
        .unwrap();
    assert_eq!(undirected.len(), 2);
}

#[test]
fn self_loops_match_and_are_walkable() {
    let mut engine = engine_with(|b| {
        let x = b.node(Attributes::labeled("N").with_prop("name", "x"));
        b.edge(x, x, Attributes::labeled("rel"));
    });
    // Homomorphism: (a)-[e]->(b) binds a = b = x.
    let t = engine
        .query_table("SELECT a AS a, b AS b MATCH (a)-[:rel]->(b)")
        .unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows()[0][0], t.rows()[0][1]);
    // The loop is usable by path search without diverging.
    let g = engine
        .query_graph("CONSTRUCT (a)-/@p:sp/->(b) MATCH (a)-/p <:rel*>/->(b)")
        .unwrap();
    assert!(g.path_count() >= 1);
}

#[test]
fn parallel_edges_bind_separately() {
    let mut engine = engine_with(|b| {
        let x = b.node(Attributes::labeled("N"));
        let y = b.node(Attributes::labeled("N"));
        b.edge(x, y, Attributes::labeled("rel").with_prop("w", 1i64));
        b.edge(x, y, Attributes::labeled("rel").with_prop("w", 2i64));
    });
    let t = engine
        .query_table("SELECT e.w AS w MATCH (a)-[e:rel]->(b) ORDER BY w")
        .unwrap();
    assert_eq!(t.len(), 2);
    assert_eq!(t.rows()[0][0], Value::Int(1));
    assert_eq!(t.rows()[1][0], Value::Int(2));
}

#[test]
fn k_shortest_enumerates_walks_in_cost_order() {
    // Diamond: two 2-hop routes s→m1→t and s→m2→t plus a 1-hop chord.
    let mut engine = engine_with(|b| {
        let s = b.node(Attributes::labeled("N").with_prop("name", "s"));
        let m1 = b.node(Attributes::labeled("N").with_prop("name", "m1"));
        let m2 = b.node(Attributes::labeled("N").with_prop("name", "m2"));
        let t = b.node(Attributes::labeled("N").with_prop("name", "t"));
        b.edge(s, t, Attributes::labeled("rel"));
        b.edge(s, m1, Attributes::labeled("rel"));
        b.edge(m1, t, Attributes::labeled("rel"));
        b.edge(s, m2, Attributes::labeled("rel"));
        b.edge(m2, t, Attributes::labeled("rel"));
    });
    let g = engine
        .query_graph(
            "CONSTRUCT (a)-/@p:route {hops := c}/->(b) \
             MATCH (a)-/3 SHORTEST p <:rel*> COST c/->(b) \
             WHERE a.name = 's' AND b.name = 't'",
        )
        .unwrap();
    // 3 shortest walks s→t: lengths 1, 2, 2.
    let mut hops: Vec<i64> = g
        .path_ids_sorted()
        .iter()
        .map(|&p| g.path(p).unwrap().shape.length() as i64)
        .collect();
    hops.sort_unstable();
    assert_eq!(hops, vec![1, 2, 2]);
}

#[test]
fn shortest_is_deterministic_among_ties() {
    // Two equal-cost shortest paths: the engine must pick the same one
    // every time (fixed identifier-lexicographic tie-break, §A.1 fn 4).
    let run = || {
        let mut engine = engine_with(|b| {
            let s = b.node(Attributes::labeled("N").with_prop("name", "s"));
            let m1 = b.node(Attributes::labeled("N"));
            let m2 = b.node(Attributes::labeled("N"));
            let t = b.node(Attributes::labeled("N").with_prop("name", "t"));
            for (a, c) in [(s, m1), (m1, t), (s, m2), (m2, t)] {
                b.edge(a, c, Attributes::labeled("rel"));
            }
        });
        let g = engine
            .query_graph(
                "CONSTRUCT (a)-/@p:sp/->(b) MATCH (a)-/p <:rel*>/->(b) \
                 WHERE a.name = 's' AND b.name = 't'",
            )
            .unwrap();
        let p = g.path_ids_sorted()[0];
        g.path(p).unwrap().shape.interleaved()
    };
    assert_eq!(run(), run());
}

#[test]
fn homomorphism_allows_repeated_elements() {
    // §6: "no restrictions are imposed during matching" — the same edge
    // may bind two different variables.
    let mut engine = engine_with(|b| {
        let x = b.node(Attributes::labeled("N"));
        let y = b.node(Attributes::labeled("N"));
        b.edge(x, y, Attributes::labeled("rel"));
    });
    let t = engine
        .query_table("SELECT e1 AS a, e2 AS b MATCH (x)-[e1:rel]->(y), (x)-[e2:rel]->(y)")
        .unwrap();
    // One edge, two variables, one row where both bind to it.
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows()[0][0], t.rows()[0][1]);
}

#[test]
fn exports_render_all_element_sorts() {
    let t = tour();
    let g = t.engine.graph("figure2").unwrap();
    let text = to_text(&g);
    assert!(text.contains("node #n101"));
    assert!(text.contains("path #p301"));
    assert!(text.contains(":toWagner"));
    let dot = to_dot(&g, "fig2");
    assert!(dot.contains("digraph"));
    assert!(dot.contains("n101"));
    assert!(dot.contains("->"));
}

#[test]
fn empty_graph_queries() {
    let mut engine = Engine::new();
    engine.register_graph("empty", gcore_repro::ppg::PathPropertyGraph::new());
    engine.set_default_graph("empty");
    let g = engine.query_graph("CONSTRUCT (n) MATCH (n)").unwrap();
    assert!(g.is_empty());
    let g = engine
        .query_graph("CONSTRUCT (m) MATCH (n)-/<:x*>/->(m)")
        .unwrap();
    assert!(g.is_empty());
    let t = engine
        .query_table("SELECT COUNT(*) AS n MATCH (n)")
        .unwrap();
    assert_eq!(t.rows()[0][0], Value::Int(0));
}

#[test]
fn disjunctive_label_tests() {
    let mut engine = engine_with(|b| {
        b.node(Attributes::labeled("Post"));
        b.node(Attributes::labeled("Comment"));
        b.node(Attributes::labeled("Person"));
    });
    let g = engine
        .query_graph("CONSTRUCT (m) MATCH (m:Post|Comment)")
        .unwrap();
    assert_eq!(g.node_count(), 2);
    // Conjunction of disjunctions: (m:Post|Comment) with extra label.
    let g = engine
        .query_graph("CONSTRUCT (m) MATCH (m:Post|Comment:Person)")
        .unwrap();
    assert_eq!(g.node_count(), 0, "no node carries both groups");
}

#[test]
fn multiple_labels_on_construct() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph("CONSTRUCT (n :Vip :Reviewed) MATCH (n:Person) WHERE n.firstName = 'John'")
        .unwrap();
    let john = g.node_ids_sorted()[0];
    for l in ["Person", "Vip", "Reviewed"] {
        assert!(g.has_label(john.into(), Label::new(l)), "missing {l}");
    }
}

#[test]
fn remove_label_and_property() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n) REMOVE n:Person REMOVE n.employer \
             MATCH (n:Person) WHERE n.firstName = 'John'",
        )
        .unwrap();
    let john = g.node_ids_sorted()[0];
    assert!(!g.has_label(john.into(), Label::new("Person")));
    assert!(g
        .prop(john.into(), gcore_repro::ppg::Key::new("employer"))
        .is_empty());
    // Other attributes survive.
    assert_eq!(
        g.prop(john.into(), gcore_repro::ppg::Key::new("firstName")),
        "John".into()
    );
}
