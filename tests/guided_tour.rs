//! The guided tour of Section 3, query by query (experiment E2 of
//! DESIGN.md). Line numbers refer to the paper's listings.

mod common;

use common::{first_names, tour};
use gcore_repro::ppg::{EdgeId, Key, Label, NodeId, Value};

// ---------------------------------------------------------------------
// Lines 1–4: always returning a graph
// ---------------------------------------------------------------------

#[test]
fn q1_acme_employees() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n) MATCH (n:Person) ON social_graph \
             WHERE n.employer = 'Acme'",
        )
        .unwrap();
    // "constructs a new graph with no edges and only nodes, namely those
    //  persons who work at Acme"
    assert_eq!(first_names(&g), vec!["Alice", "John"]);
    assert_eq!(g.edge_count(), 0);
    // "all the labels and properties that these person nodes had in
    //  social_graph are preserved"
    assert!(g.has_label(t.john.into(), Label::new("Person")));
    assert_eq!(g.prop(t.john.into(), Key::new("lastName")), "Doe".into());
}

// ---------------------------------------------------------------------
// Lines 5–9: multi-graph equi-join (c.name = n.employer)
// ---------------------------------------------------------------------

#[test]
fn q2_works_at_equijoin_union() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (c)<-[:worksAt]-(n) \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
             WHERE c.name = n.employer \
             UNION social_graph",
        )
        .unwrap();
    // Binding table in the paper: (Acme,Alice), (HAL,Celine), (Acme,John)
    // — Frank's multi-valued employer fails `=`, Peter is unbound.
    let works_at = g.edges_with_label(Label::new("worksAt"));
    assert_eq!(works_at.len(), 3);
    // The union keeps the original graph intact.
    let d = tour();
    let orig = d.engine.graph("social_graph").unwrap();
    for n in orig.node_ids() {
        assert!(g.contains_node(n));
    }
    for e in orig.edge_ids() {
        assert!(g.contains_edge(e));
    }
}

/// The 20-row Cartesian-product table the paper prints when the WHERE is
/// omitted (4 companies × 5 persons).
#[test]
fn q2b_cartesian_product_without_where() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT c.name AS cname, n.firstName AS fname \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph",
        )
        .unwrap();
    assert_eq!(table.len(), 20);
}

// ---------------------------------------------------------------------
// Lines 10–14: IN instead of = (multi-valued employer)
// ---------------------------------------------------------------------

#[test]
fn q3_works_at_with_in() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (c)<-[:worksAt]-(n) \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
             WHERE c.name IN n.employer \
             UNION social_graph",
        )
        .unwrap();
    // "While five new edges are created here": Frank matches CWI and MIT.
    assert_eq!(g.edges_with_label(Label::new("worksAt")).len(), 5);
    // Frank has exactly two worksAt edges.
    let frank_works: Vec<EdgeId> = g
        .out_edges(t.frank)
        .iter()
        .copied()
        .filter(|&e| g.has_label(e.into(), Label::new("worksAt")))
        .collect();
    assert_eq!(frank_works.len(), 2);
}

// ---------------------------------------------------------------------
// Lines 15–19: property unrolling with {employer = e}
// ---------------------------------------------------------------------

#[test]
fn q4_property_unrolling() {
    let mut t = tour();
    // The binding set has exactly the 5 rows the paper prints.
    let table = t
        .engine
        .query_table(
            "SELECT c.name AS cname, n.firstName AS fname, e AS emp \
             MATCH (c:Company) ON company_graph, \
                   (n:Person {employer = e}) ON social_graph \
             WHERE c.name = e",
        )
        .unwrap();
    assert_eq!(table.len(), 5);
    let mut rows: Vec<(String, String)> = table
        .rows()
        .iter()
        .map(|r| {
            (
                r[1].as_str().unwrap().to_owned(),
                r[2].as_str().unwrap().to_owned(),
            )
        })
        .collect();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            ("Alice".into(), "Acme".into()),
            ("Celine".into(), "HAL".into()),
            ("Frank".into(), "CWI".into()),
            ("Frank".into(), "MIT".into()),
            ("John".into(), "Acme".into()),
        ]
    );

    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (c)<-[:worksAt]-(n) \
             MATCH (c:Company) ON company_graph, \
                   (n:Person {employer = e}) ON social_graph \
             WHERE c.name = e \
             UNION social_graph",
        )
        .unwrap();
    assert_eq!(g.edges_with_label(Label::new("worksAt")).len(), 5);
}

// ---------------------------------------------------------------------
// Lines 20–22: graph aggregation with GROUP
// ---------------------------------------------------------------------

#[test]
fn q5_graph_aggregation_creates_one_company_per_employer() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT social_graph, \
             (x GROUP e :Company {name := e})<-[y:worksAt]-(n) \
             MATCH (n:Person {employer = e})",
        )
        .unwrap();
    // Four new company nodes — one per unique employer value.
    let companies = g.nodes_with_label(Label::new("Company"));
    assert_eq!(companies.len(), 4);
    let mut names: Vec<String> = companies
        .iter()
        .filter_map(|&c| {
            g.prop(c.into(), Key::new("name"))
                .as_singleton()
                .and_then(|v| v.as_str().map(str::to_owned))
        })
        .collect();
    names.sort();
    assert_eq!(names, vec!["Acme", "CWI", "HAL", "MIT"]);
    // Five worksAt edges (Frank gets two, one per employer).
    assert_eq!(g.edges_with_label(Label::new("worksAt")).len(), 5);
    // Person nodes are the *same identities* as in social_graph.
    assert!(g.contains_node(t.frank));
    assert!(g.contains_node(t.john));
}

// ---------------------------------------------------------------------
// Lines 23–27: storing shortest paths with @p
// ---------------------------------------------------------------------

#[test]
fn q6_stored_shortest_paths() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-/@p:localPeople {distance := c}/->(m) \
             MATCH (n)-/3 SHORTEST p <:knows*> COST c/->(m) \
             WHERE (n:Person) AND (m:Person) \
               AND n.firstName = 'John' AND n.lastName = 'Doe' \
               AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        )
        .unwrap();
    // Paths are first-class: the result graph contains stored paths,
    // each labeled and annotated with its cost.
    assert!(g.path_count() > 0);
    for p in g.path_ids_sorted() {
        assert!(g.has_label(p.into(), Label::new("localPeople")));
        let dist = g.prop(p.into(), Key::new("distance"));
        let shape = &g.path(p).unwrap().shape;
        assert_eq!(
            dist.as_singleton().and_then(Value::as_int),
            Some(shape.length() as i64),
            "distance property equals hop count"
        );
        assert_eq!(shape.start(), t.john, "all paths start at John");
    }
    // The co-located targets Peter, Frank and Celine are all reached.
    let targets: Vec<NodeId> = g
        .path_ids_sorted()
        .iter()
        .map(|&p| g.path(p).unwrap().shape.end())
        .collect();
    for person in [t.peter, t.frank, t.celine] {
        assert!(targets.contains(&person), "missing path to {person}");
    }
    // Alice lives in Austin: no path may end at her.
    assert!(!targets.contains(&t.alice));
    // The graph is exactly the projection of the stored paths (plus the
    // paths): every node/edge lies on some stored path.
    for e in g.edge_ids_sorted() {
        let on_some_path = g
            .path_ids_sorted()
            .iter()
            .any(|&p| g.path(p).unwrap().shape.edges().contains(&e));
        assert!(on_some_path, "edge {e} not on any stored path");
    }
}

// ---------------------------------------------------------------------
// Lines 28–31: reachability
// ---------------------------------------------------------------------

#[test]
fn q7_reachability() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (m) \
             MATCH (n:Person)-/<:knows*>/->(m:Person) \
             WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
               AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        )
        .unwrap();
    // knows* includes the zero-length path, so John reaches himself; the
    // other co-located persons are Peter, Frank and Celine. Alice lives
    // elsewhere and is excluded by the location join.
    assert_eq!(first_names(&g), vec!["Celine", "Frank", "John", "Peter"]);
    assert_eq!(g.edge_count(), 0);
}

// ---------------------------------------------------------------------
// Lines 32–35: ALL paths graph projection
// ---------------------------------------------------------------------

#[test]
fn q8_all_paths_projection() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n)-/p/->(m) \
             MATCH (n:Person)-/ALL p <:knows*>/->(m:Person) \
             WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
               AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        )
        .unwrap();
    // The projection materializes no path objects …
    assert_eq!(g.path_count(), 0);
    // … only the nodes and edges lying on some conforming walk. With
    // arbitrary-walk semantics every person in John's knows-component
    // can appear on a walk, Alice included (via John).
    assert_eq!(
        first_names(&g),
        vec!["Alice", "Celine", "Frank", "John", "Peter"]
    );
    for e in g.edge_ids_sorted() {
        assert!(g.has_label(e.into(), Label::new("knows")));
    }
}

// ---------------------------------------------------------------------
// Lines 36–38: explicit existential subquery
// ---------------------------------------------------------------------

#[test]
fn q9_explicit_exists_equals_implicit_pattern() {
    let mut t = tour();
    let implicit = t
        .engine
        .query_graph(
            "CONSTRUCT (m) \
             MATCH (n:Person), (m:Person) \
             WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
               AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        )
        .unwrap();
    let explicit = t
        .engine
        .query_graph(
            "CONSTRUCT (m) \
             MATCH (n:Person), (m:Person) \
             WHERE n.firstName = 'John' AND n.lastName = 'Doe' \
               AND EXISTS ( CONSTRUCT () \
                            MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )",
        )
        .unwrap();
    assert_eq!(first_names(&implicit), first_names(&explicit));
    assert_eq!(
        first_names(&implicit),
        vec!["Celine", "Frank", "John", "Peter"]
    );
}

// ---------------------------------------------------------------------
// Identity sharing: the result graph shares node identities with input
// ---------------------------------------------------------------------

#[test]
fn results_share_identities_with_inputs() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph("CONSTRUCT (n) MATCH (n:Person)")
        .unwrap();
    for p in [t.john, t.peter, t.alice, t.celine, t.frank] {
        assert!(g.contains_node(p), "identity {p} must be shared");
    }
}

// ---------------------------------------------------------------------
// Set operations on full graphs
// ---------------------------------------------------------------------

#[test]
fn graph_set_operations() {
    let mut t = tour();
    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n) MATCH (n:Person) \
             MINUS \
             CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
        )
        .unwrap();
    assert_eq!(first_names(&g), vec!["Celine", "Frank", "Peter"]);

    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John' \
             UNION \
             CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'Peter'",
        )
        .unwrap();
    assert_eq!(first_names(&g), vec!["John", "Peter"]);

    let g = t
        .engine
        .query_graph(
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme' \
             INTERSECT \
             CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'John'",
        )
        .unwrap();
    assert_eq!(first_names(&g), vec!["John"]);
}
