//! Experiment E1: the PPG data model against Figure 2 / Example 2.2 —
//! identifier sets, ρ, δ, λ, σ, and the nodes()/edges() path accessors,
//! checked through the public engine API.

mod common;

use common::tour;
use gcore_repro::ppg::{EdgeId, NodeId, PathId, Value};

#[test]
fn example_2_2_components() {
    let t = tour();
    let g = t.engine.graph("figure2").unwrap();

    // N, E, P.
    assert_eq!(g.node_count(), 6);
    assert_eq!(g.edge_count(), 7);
    assert_eq!(g.path_count(), 1);

    // ρ(201) = (102, 101) and ρ(207) = (105, 103).
    assert_eq!(g.endpoints(EdgeId(201)), Some((NodeId(102), NodeId(101))));
    assert_eq!(g.endpoints(EdgeId(207)), Some((NodeId(105), NodeId(103))));

    // δ(301) = [105, 207, 103, 202, 102].
    let p = g.path(PathId(301)).unwrap();
    assert_eq!(
        p.shape.interleaved(),
        vec![105, 207, 103, 202, 102],
        "δ(301) interleaves nodes and edges exactly as printed"
    );
}

#[test]
fn nodes_and_edges_functions_through_queries() {
    let mut t = tour();
    // nodes(p)[0] is the first node (the paper: "G-CORE starts counting
    // at 0").
    let table = t
        .engine
        .query_table(
            "SELECT nodes(z)[0] AS first, nodes(z)[1] AS second, edges(z)[0] AS e0 \
             MATCH (x)-/@z <(:knows + :knows-)*>/->(y) ON figure2",
        )
        .unwrap();
    assert_eq!(table.len(), 1);
    let row = &table.rows()[0];
    assert_eq!(row[0], Value::str("#n105"));
    assert_eq!(row[1], Value::str("#n103"));
    assert_eq!(row[2], Value::str("#e207"));
}

#[test]
fn labels_function_and_path_properties() {
    let mut t = tour();
    let table = t
        .engine
        .query_table(
            "SELECT labels(z) AS ls, z.trust AS trust, length(z) AS len \
             MATCH (x)-/@z <(:knows + :knows-)*>/->(y) ON figure2",
        )
        .unwrap();
    assert_eq!(table.len(), 1);
    let row = &table.rows()[0];
    assert!(row[0].as_str().unwrap().contains("toWagner"));
    assert_eq!(row[1], Value::Float(0.95));
    assert_eq!(row[2], Value::Int(2));
}

#[test]
fn multi_valued_property_semantics_of_section_2() {
    let mut t = tour();
    // σ(x, k) is a set; absent properties are the empty set, detectable
    // with size().
    let table = t
        .engine
        .query_table(
            "SELECT n.firstName AS name, size(n.employer) AS jobs \
             MATCH (n:Person) ON social_graph \
             ORDER BY name",
        )
        .unwrap();
    let rows: Vec<(String, i64)> = table
        .rows()
        .iter()
        .map(|r| (r[0].as_str().unwrap().to_owned(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("Alice".to_owned(), 1),
            ("Celine".to_owned(), 1),
            ("Frank".to_owned(), 2),
            ("John".to_owned(), 1),
            ("Peter".to_owned(), 0),
        ]
    );
}

#[test]
fn case_coalesces_missing_data() {
    let mut t = tour();
    // "G-CORE provides CASE expressions to coalesce such missing data".
    let table = t
        .engine
        .query_table(
            "SELECT n.firstName AS name, \
                    CASE WHEN size(n.employer) = 0 THEN 'unemployed' \
                         ELSE 'employed' END AS status \
             MATCH (n:Person) ON social_graph \
             WHERE n.firstName = 'Peter'",
        )
        .unwrap();
    assert_eq!(table.rows()[0][1], Value::str("unemployed"));
}

#[test]
fn set_equality_vs_membership_vs_subset() {
    let mut t = tour();
    // The §3 explanation: "MIT" = {"CWI","MIT"} is FALSE, "MIT" IN
    // {"CWI","MIT"} is TRUE; SUBSET compares as sets.
    let eq = t
        .engine
        .query_table(
            "SELECT n.firstName AS f MATCH (n:Person) \
             WHERE 'MIT' = n.employer",
        )
        .unwrap();
    assert!(eq.is_empty());
    let inn = t
        .engine
        .query_table(
            "SELECT n.firstName AS f MATCH (n:Person) \
             WHERE 'MIT' IN n.employer",
        )
        .unwrap();
    assert_eq!(inn.len(), 1);
    assert_eq!(inn.rows()[0][0], Value::str("Frank"));
    let sub = t
        .engine
        .query_table(
            "SELECT n.firstName AS f MATCH (n:Person) \
             WHERE n.employer SUBSET n.employer",
        )
        .unwrap();
    assert_eq!(sub.len(), 5, "every set is a subset of itself");
}
