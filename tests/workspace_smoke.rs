//! Workspace-wiring smoke test: one corpus query per §3/§5 family,
//! parsed and executed end-to-end through the facade crate
//! (`gcore_repro::corpus` → `gcore_repro::parser` → engine), on the
//! guided-tour fixture. A failure here means the crates are mis-wired,
//! not that a specific semantic rule broke — the per-family detail
//! tests live in `guided_tour.rs`, `tabular.rs`, `views.rs`, etc.

mod common;

use gcore_repro::corpus::{self, CorpusQuery};
use gcore_repro::engine::query::QueryOutput;
use gcore_repro::parser::parse_statement;

/// One representative per query family of the paper's §3 guided tour and
/// the §5 tabular extensions.
const FAMILY_REPRESENTATIVES: &[(&str, &CorpusQuery)] = &[
    ("§3.1 basic MATCH + WHERE", &corpus::ACME_EMPLOYEES),
    ("§3.1 multi-graph join + UNION", &corpus::WORKS_AT_IN),
    (
        "§3.2 CONSTRUCT grouping/aggregation",
        &corpus::GRAPH_AGGREGATION,
    ),
    ("§3.3 stored paths", &corpus::STORED_PATHS),
    ("§3.3 reachability", &corpus::REACHABILITY),
    ("§3.3 ALL paths", &corpus::ALL_PATHS),
    ("§3.4 EXISTS subquery", &corpus::EXPLICIT_EXISTS),
    ("§3.5 OPTIONAL", &corpus::OPTIONAL_BLOCKS),
    ("§5 SELECT (graph → table)", &corpus::SELECT_FRIENDS),
    ("§5 FROM (table → graph)", &corpus::FROM_ORDERS),
];

#[test]
fn one_query_per_family_parses_and_executes() {
    let mut t = common::tour();
    for (family, q) in FAMILY_REPRESENTATIVES {
        // Parses through the re-exported parser…
        let stmt = parse_statement(q.text)
            .unwrap_or_else(|e| panic!("{family} ({}) failed to parse: {e}", q.id));
        // …and executes through the re-exported engine.
        let out = t
            .engine
            .eval(&stmt)
            .unwrap_or_else(|e| panic!("{family} ({}) failed to execute: {e}", q.id));
        match out {
            QueryOutput::Graph(g) => {
                g.validate()
                    .unwrap_or_else(|e| panic!("{family} ({}) built an invalid PPG: {e}", q.id));
                assert!(
                    g.node_count() > 0,
                    "{family} ({}) produced an empty graph on the tour fixture",
                    q.id
                );
            }
            QueryOutput::Table(tab) => {
                assert!(
                    !tab.is_empty(),
                    "{family} ({}) produced an empty table on the tour fixture",
                    q.id
                );
            }
        }
    }
}

#[test]
fn entire_corpus_executes_on_the_tour_fixture() {
    let mut t = common::tour();
    for q in corpus::ALL {
        t.engine
            .run(q.text)
            .unwrap_or_else(|e| panic!("corpus query {} failed: {e}", q.id));
    }
}
