//! Parser robustness: keyword aliases, new built-in functions, and the
//! print → parse fixpoint over tricky constructs.

use gcore_repro::parser::{parse_query, parse_statement, print_statement};

fn roundtrip(text: &str) {
    let ast1 = parse_statement(text).unwrap_or_else(|e| panic!("parse '{text}': {e}"));
    let printed = print_statement(&ast1);
    let ast2 = parse_statement(&printed).unwrap_or_else(|e| panic!("reparse of '{printed}': {e}"));
    assert_eq!(ast1, ast2, "roundtrip changed the AST of '{text}'");
}

#[test]
fn keyword_aliases_are_allowed() {
    roundtrip("SELECT c AS cost MATCH (n)-/p <:knows*> COST c/->(m)");
    roundtrip("SELECT n AS match, m AS construct MATCH (n)-[e]->(m)");
}

#[test]
fn new_functions_roundtrip() {
    roundtrip(
        "SELECT substring(n.name, 0, 3) AS pre, year(n.since) AS y, \
         contains(n.name, 'x') AS has_x, head(nodes(p)) AS h \
         MATCH (n)-/p <:knows*>/->(m)",
    );
    roundtrip("CONSTRUCT (n) MATCH (n) WHERE startsWith(trim(n.name), 'A')");
    roundtrip("CONSTRUCT (n) MATCH (n) WHERE sqrt(abs(n.x)) < ceil(n.y) + floor(n.z)");
}

#[test]
fn nested_structures_roundtrip() {
    roundtrip(
        "PATH w = (x)-[e:knows]->(y) WHERE NOT 'A' IN y.emp COST 1 / (1 + e.w) \
         GRAPH tmp AS (CONSTRUCT (n) MATCH (n:Person)) \
         CONSTRUCT tmp, (a)-/@p:lbl {c := w}/->(b) \
         MATCH (a)-/p <~w*> COST w/->(b) ON tmp \
         WHERE EXISTS ( CONSTRUCT () MATCH (a)-[:x]->()<-[:x]-(b) )",
    );
    roundtrip(
        "CONSTRUCT (x GROUP e.a, e.b :L {v := COUNT(DISTINCT n.k)}) \
         WHEN x.v > 0 \
         MATCH (n)-[e]->(m) \
         OPTIONAL (n)-[:opt]->(o) WHERE (o:Tag)",
    );
    roundtrip(
        "CONSTRUCT (n) SET n.s := CASE WHEN size(n.e) = 0 THEN 'none' ELSE 'some' END \
         REMOVE n:Old \
         MATCH (n) WHERE n.v IN m.w AND n.q SUBSET m.q OR NOT (n:X|Y)",
    );
}

#[test]
fn set_ops_and_bare_graph_names_roundtrip() {
    roundtrip("CONSTRUCT (n) MATCH (n) UNION g1 INTERSECT (CONSTRUCT (m) MATCH (m)) MINUS g2");
}

#[test]
fn copy_syntax_roundtrip() {
    roundtrip("CONSTRUCT (=n)-[=e]->(=m) MATCH (n)-[e]->(m)");
}

#[test]
fn select_modifiers_roundtrip() {
    roundtrip(
        "SELECT DISTINCT n.a AS a, COUNT(*) AS c MATCH (n) \
         GROUP BY n.a ORDER BY c DESC, a ASC LIMIT 10 OFFSET 5",
    );
}

#[test]
fn errors_report_positions_and_expectations() {
    for bad in [
        "CONSTRUCT",
        "MATCH (n)",                           // missing CONSTRUCT/SELECT head
        "CONSTRUCT (n MATCH (n)",              // unclosed paren
        "CONSTRUCT (n) MATCH (n)-[e]-",        // dangling connection
        "CONSTRUCT (n) MATCH (n)-/p <>/->(m)", // empty regex
        "SELECT MATCH (n)",                    // empty projection
    ] {
        let err = parse_query(bad).unwrap_err();
        assert!(err.line() >= 1, "error for '{bad}' has a line");
    }
}

#[test]
fn comments_and_whitespace() {
    let q = parse_query(
        "CONSTRUCT (n) -- trailing comment\n\
         MATCH (n:Person) /* block\n comment */ WHERE n.a = 1",
    );
    assert!(q.is_ok(), "comments must lex away: {q:?}");
}
