//! Snapshot-isolation guarantees: executors pin the committed state of
//! their epoch, catalog writes bump the observable epoch without
//! disturbing in-flight readers, frozen snapshots never run on
//! invalidated label indexes, and the per-snapshot SCC-condensation
//! cache is reused within — and only within — one snapshot.

use gcore::{Engine, QueryExecutor};
use gcore_ppg::{Attributes, GraphBuilder, Label};
use std::borrow::Cow;

/// Ann–knows→Bob–knows→Eve.
fn engine_with_people() -> Engine {
    let mut engine = Engine::new();
    let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
    let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
    let eve = b.node(Attributes::labeled("Person").with_prop("name", "Eve"));
    b.edge(ann, bob, Attributes::labeled("knows"));
    b.edge(bob, eve, Attributes::labeled("knows"));
    engine.register_graph("people", b.build());
    engine.set_default_graph("people");
    engine
}

fn names(exec: &QueryExecutor) -> Vec<String> {
    let t = exec
        .query_table("SELECT n.name AS name MATCH (n:Person)")
        .unwrap();
    let mut v: Vec<String> = t.rows().iter().map(|r| format!("{:?}", r[0])).collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------
// Isolation under mid-flight catalog mutation
// ---------------------------------------------------------------------

#[test]
fn register_overwrite_does_not_leak_into_old_snapshot() {
    let mut engine = engine_with_people();
    let old = engine.executor();
    let before = names(&old);
    assert_eq!(before.len(), 3);

    // Overwrite the default graph with completely different content.
    let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    b.node(Attributes::labeled("Person").with_prop("name", "Zed"));
    engine.register_graph("people", b.build());

    // The old executor keeps answering from its snapshot…
    assert_eq!(names(&old), before);
    // …while a fresh one sees the overwrite.
    let new = engine.executor();
    assert_eq!(names(&new), vec!["Str(\"Zed\")"]);
    assert!(new.epoch() > old.epoch());
}

#[test]
fn construct_into_catalog_is_invisible_to_old_snapshot() {
    let mut engine = engine_with_people();
    let old = engine.executor();
    let e0 = engine.snapshot_epoch();

    // CONSTRUCT-into-catalog: a committed GRAPH VIEW.
    engine
        .run("GRAPH VIEW bobless AS (CONSTRUCT (n) MATCH (n) WHERE n.name != 'Bob')")
        .unwrap();
    assert!(engine.snapshot_epoch() > e0, "view commit bumps the epoch");

    // The old snapshot cannot resolve the view; a new one can.
    assert!(old
        .query_graph("CONSTRUCT (n) MATCH (n) ON bobless")
        .is_err());
    let new = engine.executor();
    let g = new
        .query_graph("CONSTRUCT (n) MATCH (n) ON bobless")
        .unwrap();
    assert_eq!(g.node_count(), 2);

    // And the old snapshot's own results are unchanged by the commit.
    assert_eq!(names(&old).len(), 3);
}

#[test]
fn epoch_is_monotone_across_write_kinds() {
    let mut engine = Engine::new();
    let mut seen = vec![engine.snapshot_epoch()];
    engine.register_graph("g", gcore_ppg::PathPropertyGraph::new());
    seen.push(engine.snapshot_epoch());
    engine.set_default_graph("g");
    seen.push(engine.snapshot_epoch());
    engine.register_table("t", gcore_ppg::Table::new(vec!["a"]).unwrap());
    seen.push(engine.snapshot_epoch());
    engine.catalog_mut(); // mutable access counts as a write
    seen.push(engine.snapshot_epoch());
    engine
        .run("GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n))")
        .unwrap();
    seen.push(engine.snapshot_epoch());
    assert!(seen.windows(2).all(|w| w[0] < w[1]), "epochs: {seen:?}");
}

// ---------------------------------------------------------------------
// Label-index freeze: snapshots never run on the scan fallback
// ---------------------------------------------------------------------

#[test]
fn snapshot_freezes_label_indexes_after_mutation() {
    let mut engine = engine_with_people();

    // Mutate a registered graph out-of-band: clone it, add a node —
    // the clone's index is dropped by the mutation — and put it back
    // through the raw catalog handle.
    let mutated = {
        let g = engine.graph("people").unwrap();
        let mut g = (*g).clone();
        assert!(g.has_label_index());
        g.add_node(
            engine.catalog().ids().node(),
            Attributes::labeled("Person").with_prop("name", "Noa"),
        );
        assert!(!g.has_label_index(), "mutation must invalidate the index");
        g
    };
    engine.catalog_mut().register_graph("people", mutated);

    // The frozen snapshot must have rebuilt the index (not silently
    // fallen back to scanning): indexed accessors serve borrowed
    // slices, the scan fallback would return owned vectors.
    let snap = engine.snapshot();
    let g = snap.catalog().graph("people").unwrap();
    assert!(g.has_label_index());
    assert!(snap.catalog().all_indexed());
    let person = Label::lookup("Person").unwrap();
    assert_eq!(g.nodes_with_label(person).len(), 4);
    let ann = g.nodes_with_label(person)[0];
    let knows = Label::lookup("knows").unwrap();
    assert!(matches!(
        g.out_steps_with_label(ann, knows),
        Cow::Borrowed(_)
    ));

    // Queries through the snapshot see the mutation at indexed speed.
    let exec = engine.executor();
    assert_eq!(names(&exec).len(), 4);
}

#[test]
fn snapshot_freeze_edge_cases_empty_and_single_label() {
    let mut engine = Engine::new();
    engine.register_graph("empty", gcore_ppg::PathPropertyGraph::new());
    let mut single = gcore_ppg::PathPropertyGraph::new();
    single.add_node(engine.catalog().ids().node(), Attributes::labeled("Only"));
    engine.catalog_mut().register_graph("single", single);
    engine.set_default_graph("single");

    let snap = engine.snapshot();
    assert!(snap.catalog().all_indexed());
    let empty = snap.catalog().graph("empty").unwrap();
    assert!(empty.has_label_index());
    assert!(empty.nodes_with_label(Label::new("anything")).is_empty());

    let exec = engine.executor();
    let g = exec.query_graph("CONSTRUCT (n) MATCH (n:Only)").unwrap();
    assert_eq!(g.node_count(), 1);
    let g = exec
        .query_graph("CONSTRUCT (n) MATCH (n:Person) ON empty")
        .unwrap();
    assert_eq!(g.node_count(), 0);
}

// ---------------------------------------------------------------------
// SCC-condensation cache: reuse within a snapshot, never across
// ---------------------------------------------------------------------

const REACH: &str = "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m) WHERE n.name = 'Ann'";
const REACH_ONE: &str = "CONSTRUCT (m) MATCH (n:Person)-/<:knows>/->(m) WHERE n.name = 'Ann'";

#[test]
fn same_snapshot_reuses_condensation() {
    let mut engine = engine_with_people();
    let exec = engine.executor();

    let g1 = exec.query_graph(REACH).unwrap();
    assert_eq!(g1.node_count(), 3); // knows* reaches Ann herself too
    let (h0, m0, _) = exec.snapshot().scc_cache_stats();
    assert_eq!(h0, 0, "first condensation cannot hit");
    assert!(m0 > 0, "first condensation must populate the cache");

    // The same reachability query again, on the same snapshot: the
    // source's destination set is served from the cache.
    let g2 = exec.query_graph(REACH).unwrap();
    assert_eq!(g1, g2);
    let (h1, m1, _) = exec.snapshot().scc_cache_stats();
    assert!(h1 > h0, "repeat query must hit the condensation cache");
    assert_eq!(m1, m0, "repeat query must not re-condense");
}

#[test]
fn distinct_nfa_misses_even_on_same_snapshot() {
    let mut engine = engine_with_people();
    let exec = engine.executor();

    exec.query_graph(REACH).unwrap();
    let (_, m0, _) = exec.snapshot().scc_cache_stats();

    // A single :knows hop is a structurally different automaton: same
    // graph, same source, but its closure is cached under its own key.
    let g = exec.query_graph(REACH_ONE).unwrap();
    assert_eq!(g.node_count(), 1); // exactly Bob — no star, no empty walk
    let (h1, m1, _) = exec.snapshot().scc_cache_stats();
    assert!(m1 > m0, "distinct NFA must miss");
    assert_eq!(h1, 0);
}

#[test]
fn epoch_bump_starts_a_fresh_cache() {
    let mut engine = engine_with_people();
    let old = engine.executor();
    old.query_graph(REACH).unwrap();
    old.query_graph(REACH).unwrap();
    let (old_hits, old_misses, _) = old.snapshot().scc_cache_stats();
    assert!(old_hits > 0 && old_misses > 0);

    // Any committed write bumps the epoch; the next snapshot carries an
    // empty cache (cross-snapshot reuse would serve stale reachability).
    let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    let zed = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
    let yan = b.node(Attributes::labeled("Person").with_prop("name", "Yan"));
    b.edge(zed, yan, Attributes::labeled("knows"));
    engine.register_graph("people", b.build());

    let new = engine.executor();
    assert!(new.epoch() > old.epoch());
    assert_eq!(new.snapshot().scc_cache_stats(), (0, 0, 0));
    let g = new.query_graph(REACH).unwrap();
    assert_eq!(g.node_count(), 2); // the new Ann reaches herself and Yan
    let (h, m, _) = new.snapshot().scc_cache_stats();
    assert_eq!(h, 0, "nothing from the old snapshot may be reused");
    assert!(m > 0);

    // The old snapshot still answers from its own frozen state + cache.
    let g = old.query_graph(REACH).unwrap();
    assert_eq!(g.node_count(), 3);
}
