//! Differential testing of the regular-path-expression compiler: the
//! Thompson NFA of `gcore::regex` against a naive recursive oracle that
//! implements the §A.1 conformance definition directly.
//!
//! Random regexes (labels, inverses, node tests, wildcards, alternation,
//! concatenation, star/plus/opt) are evaluated over random walks; the
//! two implementations must agree on every input.

use gcore::regex::{walk_conforms, Nfa};
use gcore_parser::ast::Regex;
use gcore_ppg::Label;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// The oracle: positions reachable from `i` after matching `re`.
// ---------------------------------------------------------------------

type Walk = (Vec<Vec<Label>>, Vec<(Vec<Label>, bool)>);

fn oracle_positions(
    re: &Regex,
    nodes: &[Vec<Label>],
    steps: &[(Vec<Label>, bool)],
    i: usize,
) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    match re {
        Regex::Label(l) => {
            let l = Label::new(l);
            if i < steps.len() && steps[i].1 && steps[i].0.contains(&l) {
                out.insert(i + 1);
            }
        }
        Regex::LabelInv(l) => {
            let l = Label::new(l);
            if i < steps.len() && !steps[i].1 && steps[i].0.contains(&l) {
                out.insert(i + 1);
            }
        }
        Regex::NodeTest(l) => {
            if nodes[i].contains(&Label::new(l)) {
                out.insert(i);
            }
        }
        Regex::Wildcard => {
            if i < steps.len() {
                out.insert(i + 1);
            }
        }
        Regex::View(_) => unreachable!("views are not generated here"),
        Regex::Concat(parts) => {
            let mut cur = BTreeSet::from([i]);
            for p in parts {
                let mut next = BTreeSet::new();
                for &j in &cur {
                    next.extend(oracle_positions(p, nodes, steps, j));
                }
                cur = next;
            }
            out = cur;
        }
        Regex::Alt(parts) => {
            for p in parts {
                out.extend(oracle_positions(p, nodes, steps, i));
            }
        }
        Regex::Star(inner) => {
            out.insert(i);
            loop {
                let mut grew = false;
                for j in out.clone() {
                    for k in oracle_positions(inner, nodes, steps, j) {
                        grew |= out.insert(k);
                    }
                }
                if !grew {
                    break;
                }
            }
        }
        Regex::Plus(inner) => {
            let after_one: BTreeSet<usize> = oracle_positions(inner, nodes, steps, i);
            let star = Regex::Star(inner.clone());
            for j in after_one {
                out.extend(oracle_positions(&star, nodes, steps, j));
            }
        }
        Regex::Opt(inner) => {
            out.insert(i);
            out.extend(oracle_positions(inner, nodes, steps, i));
        }
    }
    out
}

fn oracle_conforms(re: &Regex, walk: &Walk) -> bool {
    let (nodes, steps) = walk;
    oracle_positions(re, nodes, steps, 0).contains(&steps.len())
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

const EDGE_LABELS: [&str; 2] = ["a", "b"];
const NODE_LABELS: [&str; 2] = ["P", "Q"];

fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..2usize).prop_map(|i| Regex::Label(EDGE_LABELS[i].to_owned())),
        (0..2usize).prop_map(|i| Regex::LabelInv(EDGE_LABELS[i].to_owned())),
        (0..2usize).prop_map(|i| Regex::NodeTest(NODE_LABELS[i].to_owned())),
        Just(Regex::Wildcard),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.prop_map(|r| Regex::Opt(Box::new(r))),
        ]
    })
}

fn walk_strategy() -> impl Strategy<Value = Walk> {
    (0usize..4).prop_flat_map(|len| {
        let nodes = prop::collection::vec(
            prop::collection::vec(0..2usize, 0..2)
                .prop_map(|is| is.into_iter().map(|i| Label::new(NODE_LABELS[i])).collect()),
            len + 1..len + 2,
        );
        let steps = prop::collection::vec(
            ((0..2usize), any::<bool>())
                .prop_map(|(i, fwd)| (vec![Label::new(EDGE_LABELS[i])], fwd)),
            len..len + 1,
        );
        (nodes, steps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn nfa_agrees_with_oracle(re in regex_strategy(), walk in walk_strategy()) {
        let nfa = Nfa::compile(&re);
        let got = walk_conforms(&nfa, &walk.0, &walk.1);
        let expected = oracle_conforms(&re, &walk);
        prop_assert_eq!(
            got,
            expected,
            "regex {:?} on walk {:?}",
            re,
            walk
        );
    }

    #[test]
    fn empty_walk_acceptance_matches_nullability(re in regex_strategy()) {
        // A zero-step walk at an unlabeled node conforms iff the regex
        // is nullable (ignoring node tests, which fail on no labels).
        let nfa = Nfa::compile(&re);
        let walk: Walk = (vec![Vec::new()], Vec::new());
        let got = walk_conforms(&nfa, &walk.0, &walk.1);
        prop_assert_eq!(got, oracle_conforms(&re, &walk));
    }
}
