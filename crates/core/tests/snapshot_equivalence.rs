//! Differential concurrency suite: `Engine::run_batch_parallel` over
//! the paper's §3/§5 corpus must be indistinguishable from sequential
//! `Engine::run`, at every thread count and under randomized statement
//! interleavings.
//!
//! Outputs are compared *canonically*: SELECT tables row-identical
//! after a canonical sort, and graph outputs identical after
//! renumbering skolemized identifiers. Two runs of the same statement
//! draw fresh identifiers from the engine's shared atomic generator in
//! the same relative order (per-statement evaluation is
//! single-threaded and deterministic), but concurrent statements
//! interleave their draws — so fresh identifiers (above the
//! pre-run generator watermark) are renumbered by ascending rank,
//! per element sort, before comparison. Identifiers at or below the
//! watermark are shared identities from the input graphs and must
//! match exactly.

use gcore::{Engine, EngineError, QueryOutput};
use gcore_ppg::{EdgeId, NodeId, PathId, PathPropertyGraph, Table};
use gcore_repro::corpus;
use gcore_snb::{figure2, social_dataset};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The deterministic guided-tour engine (same layout as the facade's
/// integration fixture): independently constructed engines are
/// bit-identical, including their identifier generators.
fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    let fig2 = figure2(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", fig2);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

/// The corpus texts, with the two `GRAPH VIEW` statements *pre-committed*
/// on the returned engine: a read-only batch resolves `social_graph1` /
/// `social_graph2` from its snapshot, so the views must exist before the
/// batch's epoch (the sequential reference re-runs the view statements
/// like any other statement; re-registration is content-identical up to
/// skolemized path identifiers, which the canonicalizer absorbs).
fn prepared_engine() -> Engine {
    let mut engine = tour_engine();
    engine.run(corpus::SOCIAL_GRAPH1.text).expect("view 1");
    engine.run(corpus::SOCIAL_GRAPH2.text).expect("view 2");
    engine
}

fn corpus_texts() -> Vec<&'static str> {
    corpus::ALL.iter().map(|q| q.text).collect()
}

// ---------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------

/// Renumbering of one identifier sort: identifiers issued before the
/// watermark are identities and map to themselves; later (skolemized)
/// ones map to `watermark + rank` in ascending order.
struct Renumber {
    watermark: u64,
    fresh: Vec<u64>, // sorted ascending
}

impl Renumber {
    fn new(watermark: u64, mut fresh: Vec<u64>) -> Self {
        fresh.sort_unstable();
        fresh.dedup();
        Renumber { watermark, fresh }
    }

    fn map(&self, raw: u64) -> u64 {
        if raw < self.watermark {
            raw
        } else {
            let rank = self.fresh.binary_search(&raw).expect("collected id") as u64;
            self.watermark + rank
        }
    }
}

fn canon_value(v: &gcore_ppg::Value) -> String {
    format!("{v:?}")
}

fn canon_attrs(attrs: &gcore_ppg::Attributes) -> String {
    let mut labels = attrs.labels.names();
    labels.sort();
    let mut props: Vec<String> = attrs
        .properties
        .iter()
        .map(|(k, vs)| {
            let mut vals: Vec<String> = vs.iter().map(canon_value).collect();
            vals.sort();
            format!("{}={:?}", k.name(), vals)
        })
        .collect();
    props.sort();
    format!("labels={labels:?} props={props:?}")
}

/// A graph rendered invariantly under skolem renumbering: nodes, edges
/// (with endpoints) and stored paths (with shapes), all in canonical
/// identifier order.
fn canon_graph(g: &PathPropertyGraph, watermark: u64) -> String {
    let nodes = Renumber::new(
        watermark,
        g.node_ids()
            .map(|n| n.raw())
            .filter(|&r| r >= watermark)
            .collect(),
    );
    let edges = Renumber::new(
        watermark,
        g.edge_ids()
            .map(|e| e.raw())
            .filter(|&r| r >= watermark)
            .collect(),
    );
    let paths = Renumber::new(
        watermark,
        g.path_ids()
            .map(|p| p.raw())
            .filter(|&r| r >= watermark)
            .collect(),
    );

    let mut out = String::new();
    let mut node_lines: Vec<String> = g
        .node_ids()
        .map(|n| {
            format!(
                "n{} {}",
                nodes.map(n.raw()),
                canon_attrs(&g.node(n).unwrap().attrs)
            )
        })
        .collect();
    node_lines.sort();
    let mut edge_lines: Vec<String> = g
        .edge_ids()
        .map(|e| {
            let d = g.edge(e).unwrap();
            format!(
                "e{} {}->{} {}",
                edges.map(e.raw()),
                nodes.map(d.src.raw()),
                nodes.map(d.dst.raw()),
                canon_attrs(&d.attrs)
            )
        })
        .collect();
    edge_lines.sort();
    let mut path_lines: Vec<String> = g
        .path_ids()
        .map(|p| {
            let d = g.path(p).unwrap();
            let ns: Vec<u64> = d.shape.nodes().iter().map(|n| nodes.map(n.raw())).collect();
            let es: Vec<u64> = d.shape.edges().iter().map(|e| edges.map(e.raw())).collect();
            format!(
                "p{} nodes={ns:?} edges={es:?} {}",
                paths.map(p.raw()),
                canon_attrs(&d.attrs)
            )
        })
        .collect();
    path_lines.sort();
    for l in node_lines.iter().chain(&edge_lines).chain(&path_lines) {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// A table rendered as its column header plus canonically sorted rows.
fn canon_table(t: &Table) -> String {
    let mut rows: Vec<String> = t
        .rows()
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(canon_value).collect();
            cells.join(" | ")
        })
        .collect();
    rows.sort();
    format!("cols={:?}\n{}", t.columns(), rows.join("\n"))
}

fn canon_result(r: &Result<QueryOutput, EngineError>, watermark: u64) -> String {
    match r {
        Ok(QueryOutput::Graph(g)) => format!("GRAPH\n{}", canon_graph(g, watermark)),
        Ok(QueryOutput::Table(t)) => format!("TABLE\n{}", canon_table(t)),
        Err(e) => format!("ERR {e:?}"),
    }
}

// ---------------------------------------------------------------------
// The differential runs
// ---------------------------------------------------------------------

/// Sequential reference: fresh engine, `Engine::run` per statement (with
/// commits applying between statements, exactly as a single-threaded
/// caller would see).
fn sequential_canon(texts: &[&str]) -> Vec<String> {
    let mut engine = prepared_engine();
    let watermark = engine.catalog().ids().peek();
    texts
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

/// Parallel run: identically constructed engine, one snapshot, `threads`
/// scoped workers.
fn parallel_canon(texts: &[&str], threads: usize) -> Vec<String> {
    let mut engine = prepared_engine();
    let watermark = engine.catalog().ids().peek();
    engine
        .run_batch_parallel(texts, threads)
        .iter()
        .map(|r| canon_result(r, watermark))
        .collect()
}

#[test]
fn corpus_batch_matches_sequential_at_every_thread_count() {
    let texts = corpus_texts();
    let reference = sequential_canon(&texts);
    for threads in THREAD_COUNTS {
        let parallel = parallel_canon(&texts, threads);
        for (i, (seq, par)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(
                seq,
                par,
                "corpus statement {i} ({}) diverged at {threads} threads",
                corpus::ALL[i].id
            );
        }
    }
}

#[test]
fn batch_results_are_identical_across_thread_counts() {
    // Beyond matching the sequential reference, the batch itself must be
    // deterministic: the same snapshot gives bit-identical canonical
    // results no matter how many workers race over the corpus.
    let texts = corpus_texts();
    let one = parallel_canon(&texts, 1);
    for threads in [2, 4, 8] {
        assert_eq!(one, parallel_canon(&texts, threads));
    }
}

/// Number of randomized-interleaving cases; pin with `PROPTEST_CASES`
/// (CI does) — the vendored proptest is seed-deterministic either way.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Randomized query interleavings: shuffle the corpus (so view
    /// re-registrations, reads and SELECTs interleave differently),
    /// pick a thread count, and require the parallel batch to match the
    /// sequential reference over the same permutation.
    #[test]
    fn shuffled_corpus_matches_sequential(
        keys in prop::collection::vec(0usize..1_000_000, corpus::ALL.len()..corpus::ALL.len() + 1),
        tix in 0usize..THREAD_COUNTS.len(),
    ) {
        let mut order: Vec<usize> = (0..corpus::ALL.len()).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let texts: Vec<&str> = order.iter().map(|&i| corpus::ALL[i].text).collect();
        let threads = THREAD_COUNTS[tix];
        let reference = sequential_canon(&texts);
        let parallel = parallel_canon(&texts, threads);
        for (pos, (seq, par)) in reference.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(
                seq, par,
                "statement {} ({}) diverged at {} threads",
                pos, corpus::ALL[order[pos]].id, threads
            );
        }
    }
}

// ---------------------------------------------------------------------
// Canonicalizer self-checks (they guard the guard)
// ---------------------------------------------------------------------

#[test]
fn renumbering_absorbs_skolem_offsets_only() {
    // Two graphs identical up to a shift of their fresh identifiers
    // canonicalize equal; shifting an *identity* (below the watermark)
    // does not.
    use gcore_ppg::Attributes;
    let build = |fresh_base: u64| {
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(1), Attributes::labeled("Person"));
        g.add_node(NodeId(fresh_base), Attributes::labeled("Group"));
        g.add_edge(
            EdgeId(fresh_base + 3),
            NodeId(1),
            NodeId(fresh_base),
            Attributes::labeled("memberOf"),
        )
        .unwrap();
        let shape = gcore_ppg::PathShape::new(
            vec![NodeId(1), NodeId(fresh_base)],
            vec![EdgeId(fresh_base + 3)],
        )
        .unwrap();
        g.add_path(PathId(fresh_base + 7), shape, Attributes::labeled("route"))
            .unwrap();
        g
    };
    let watermark = 100;
    assert_eq!(
        canon_graph(&build(150), watermark),
        canon_graph(&build(207), watermark)
    );
    // Same content on a *shared identity* must not be conflated.
    let mut a = PathPropertyGraph::new();
    a.add_node(NodeId(1), gcore_ppg::Attributes::labeled("Person"));
    let mut b = PathPropertyGraph::new();
    b.add_node(NodeId(2), gcore_ppg::Attributes::labeled("Person"));
    assert_ne!(canon_graph(&a, watermark), canon_graph(&b, watermark));
}
