//! Differential concurrency suite: `Engine::run_batch_parallel` over
//! the paper's §3/§5 corpus must be indistinguishable from sequential
//! `Engine::run`, at every thread count and under randomized statement
//! interleavings.
//!
//! Outputs are compared *canonically* (see `common/mod.rs`, shared with
//! the storage cold-start suite): SELECT tables row-identical after a
//! canonical sort, and graph outputs identical after renumbering
//! skolemized identifiers. Two runs of the same statement draw fresh
//! identifiers from the engine's shared atomic generator in the same
//! relative order (per-statement evaluation is single-threaded and
//! deterministic), but concurrent statements interleave their draws —
//! so fresh identifiers (above the pre-run generator watermark) are
//! renumbered by ascending rank, per element sort, before comparison.
//! Identifiers at or below the watermark are shared identities from
//! the input graphs and must match exactly.

mod common;

use common::{canon_graph, canon_result, corpus_texts, prepared_engine};
use gcore_ppg::{EdgeId, NodeId, PathId, PathPropertyGraph};
use gcore_repro::corpus;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

// ---------------------------------------------------------------------
// The differential runs
// ---------------------------------------------------------------------

/// Sequential reference: fresh engine, `Engine::run` per statement (with
/// commits applying between statements, exactly as a single-threaded
/// caller would see).
fn sequential_canon(texts: &[&str]) -> Vec<String> {
    let mut engine = prepared_engine();
    let watermark = engine.catalog().ids().peek();
    texts
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

/// Parallel run: identically constructed engine, one snapshot, `threads`
/// scoped workers.
fn parallel_canon(texts: &[&str], threads: usize) -> Vec<String> {
    let mut engine = prepared_engine();
    let watermark = engine.catalog().ids().peek();
    engine
        .run_batch_parallel(texts, threads)
        .iter()
        .map(|r| canon_result(r, watermark))
        .collect()
}

#[test]
fn corpus_batch_matches_sequential_at_every_thread_count() {
    let texts = corpus_texts();
    let reference = sequential_canon(&texts);
    for threads in THREAD_COUNTS {
        let parallel = parallel_canon(&texts, threads);
        for (i, (seq, par)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(
                seq,
                par,
                "corpus statement {i} ({}) diverged at {threads} threads",
                corpus::ALL[i].id
            );
        }
    }
}

#[test]
fn batch_results_are_identical_across_thread_counts() {
    // Beyond matching the sequential reference, the batch itself must be
    // deterministic: the same snapshot gives bit-identical canonical
    // results no matter how many workers race over the corpus.
    let texts = corpus_texts();
    let one = parallel_canon(&texts, 1);
    for threads in [2, 4, 8] {
        assert_eq!(one, parallel_canon(&texts, threads));
    }
}

/// Number of randomized-interleaving cases; pin with `PROPTEST_CASES`
/// (CI does) — the vendored proptest is seed-deterministic either way.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Randomized query interleavings: shuffle the corpus (so view
    /// re-registrations, reads and SELECTs interleave differently),
    /// pick a thread count, and require the parallel batch to match the
    /// sequential reference over the same permutation.
    #[test]
    fn shuffled_corpus_matches_sequential(
        keys in prop::collection::vec(0usize..1_000_000, corpus::ALL.len()..corpus::ALL.len() + 1),
        tix in 0usize..THREAD_COUNTS.len(),
    ) {
        let mut order: Vec<usize> = (0..corpus::ALL.len()).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let texts: Vec<&str> = order.iter().map(|&i| corpus::ALL[i].text).collect();
        let threads = THREAD_COUNTS[tix];
        let reference = sequential_canon(&texts);
        let parallel = parallel_canon(&texts, threads);
        for (pos, (seq, par)) in reference.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(
                seq, par,
                "statement {} ({}) diverged at {} threads",
                pos, corpus::ALL[order[pos]].id, threads
            );
        }
    }
}

// ---------------------------------------------------------------------
// Canonicalizer self-checks (they guard the guard)
// ---------------------------------------------------------------------

#[test]
fn renumbering_absorbs_skolem_offsets_only() {
    // Two graphs identical up to a shift of their fresh identifiers
    // canonicalize equal; shifting an *identity* (below the watermark)
    // does not.
    use gcore_ppg::Attributes;
    let build = |fresh_base: u64| {
        let mut g = PathPropertyGraph::new();
        g.add_node(NodeId(1), Attributes::labeled("Person"));
        g.add_node(NodeId(fresh_base), Attributes::labeled("Group"));
        g.add_edge(
            EdgeId(fresh_base + 3),
            NodeId(1),
            NodeId(fresh_base),
            Attributes::labeled("memberOf"),
        )
        .unwrap();
        let shape = gcore_ppg::PathShape::new(
            vec![NodeId(1), NodeId(fresh_base)],
            vec![EdgeId(fresh_base + 3)],
        )
        .unwrap();
        g.add_path(PathId(fresh_base + 7), shape, Attributes::labeled("route"))
            .unwrap();
        g
    };
    let watermark = 100;
    assert_eq!(
        canon_graph(&build(150), watermark),
        canon_graph(&build(207), watermark)
    );
    // Same content on a *shared identity* must not be conflated.
    let mut a = PathPropertyGraph::new();
    a.add_node(NodeId(1), gcore_ppg::Attributes::labeled("Person"));
    let mut b = PathPropertyGraph::new();
    b.add_node(NodeId(2), gcore_ppg::Attributes::labeled("Person"));
    assert_ne!(canon_graph(&a, watermark), canon_graph(&b, watermark));
}
