//! Shared helpers for the differential suites: the canonicalizer that
//! makes query outputs comparable across engines (renumbering
//! skolemized identifiers above a generator watermark) and the
//! deterministic guided-tour engine fixtures.
//!
//! Used by `snapshot_equivalence.rs` (parallel ≡ sequential) and
//! `storage_cold_start.rs` (reloaded-from-disk ≡ in-memory); the
//! comparisons only mean anything if both suites canonicalize the same
//! way, so the definition lives here once.

#![allow(dead_code)] // each test binary uses the slice it needs

use gcore::{Engine, EngineError, QueryOutput};
use gcore_ppg::{PathPropertyGraph, Table};
use gcore_repro::corpus;
use gcore_snb::{figure2, social_dataset};

/// The deterministic guided-tour engine (same layout as the facade's
/// integration fixture): independently constructed engines are
/// bit-identical, including their identifier generators.
pub fn tour_engine() -> Engine {
    let mut engine = Engine::new();
    let ids = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    let fig2 = figure2(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", fig2);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

/// [`tour_engine`] with the two `GRAPH VIEW` statements of the corpus
/// *pre-committed*, so read-only batches (and engines reloaded from a
/// store) resolve `social_graph1` / `social_graph2` from their
/// snapshot.
pub fn prepared_engine() -> Engine {
    let mut engine = tour_engine();
    engine.run(corpus::SOCIAL_GRAPH1.text).expect("view 1");
    engine.run(corpus::SOCIAL_GRAPH2.text).expect("view 2");
    engine
}

/// Every corpus statement's text, in corpus order.
pub fn corpus_texts() -> Vec<&'static str> {
    corpus::ALL.iter().map(|q| q.text).collect()
}

// ---------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------

/// Renumbering of one identifier sort: identifiers issued before the
/// watermark are identities and map to themselves; later (skolemized)
/// ones map to `watermark + rank` in ascending order.
struct Renumber {
    watermark: u64,
    fresh: Vec<u64>, // sorted ascending
}

impl Renumber {
    fn new(watermark: u64, mut fresh: Vec<u64>) -> Self {
        fresh.sort_unstable();
        fresh.dedup();
        Renumber { watermark, fresh }
    }

    fn map(&self, raw: u64) -> u64 {
        if raw < self.watermark {
            raw
        } else {
            let rank = self.fresh.binary_search(&raw).expect("collected id") as u64;
            self.watermark + rank
        }
    }
}

fn canon_value(v: &gcore_ppg::Value) -> String {
    format!("{v:?}")
}

fn canon_attrs(attrs: &gcore_ppg::Attributes) -> String {
    let mut labels = attrs.labels.names();
    labels.sort();
    let mut props: Vec<String> = attrs
        .properties
        .iter()
        .map(|(k, vs)| {
            let mut vals: Vec<String> = vs.iter().map(canon_value).collect();
            vals.sort();
            format!("{}={:?}", k.name(), vals)
        })
        .collect();
    props.sort();
    format!("labels={labels:?} props={props:?}")
}

/// A graph rendered invariantly under skolem renumbering: nodes, edges
/// (with endpoints) and stored paths (with shapes), all in canonical
/// identifier order.
pub fn canon_graph(g: &PathPropertyGraph, watermark: u64) -> String {
    let nodes = Renumber::new(
        watermark,
        g.node_ids()
            .map(|n| n.raw())
            .filter(|&r| r >= watermark)
            .collect(),
    );
    let edges = Renumber::new(
        watermark,
        g.edge_ids()
            .map(|e| e.raw())
            .filter(|&r| r >= watermark)
            .collect(),
    );
    let paths = Renumber::new(
        watermark,
        g.path_ids()
            .map(|p| p.raw())
            .filter(|&r| r >= watermark)
            .collect(),
    );

    let mut out = String::new();
    let mut node_lines: Vec<String> = g
        .node_ids()
        .map(|n| {
            format!(
                "n{} {}",
                nodes.map(n.raw()),
                canon_attrs(&g.node(n).unwrap().attrs)
            )
        })
        .collect();
    node_lines.sort();
    let mut edge_lines: Vec<String> = g
        .edge_ids()
        .map(|e| {
            let d = g.edge(e).unwrap();
            format!(
                "e{} {}->{} {}",
                edges.map(e.raw()),
                nodes.map(d.src.raw()),
                nodes.map(d.dst.raw()),
                canon_attrs(&d.attrs)
            )
        })
        .collect();
    edge_lines.sort();
    let mut path_lines: Vec<String> = g
        .path_ids()
        .map(|p| {
            let d = g.path(p).unwrap();
            let ns: Vec<u64> = d.shape.nodes().iter().map(|n| nodes.map(n.raw())).collect();
            let es: Vec<u64> = d.shape.edges().iter().map(|e| edges.map(e.raw())).collect();
            format!(
                "p{} nodes={ns:?} edges={es:?} {}",
                paths.map(p.raw()),
                canon_attrs(&d.attrs)
            )
        })
        .collect();
    path_lines.sort();
    for l in node_lines.iter().chain(&edge_lines).chain(&path_lines) {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// A table rendered as its column header plus canonically sorted rows.
pub fn canon_table(t: &Table) -> String {
    let mut rows: Vec<String> = t
        .rows()
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(canon_value).collect();
            cells.join(" | ")
        })
        .collect();
    rows.sort();
    format!("cols={:?}\n{}", t.columns(), rows.join("\n"))
}

/// Canonical rendering of one statement outcome.
pub fn canon_result(r: &Result<QueryOutput, EngineError>, watermark: u64) -> String {
    match r {
        Ok(QueryOutput::Graph(g)) => format!("GRAPH\n{}", canon_graph(g, watermark)),
        Ok(QueryOutput::Table(t)) => format!("TABLE\n{}", canon_table(t)),
        Err(e) => format!("ERR {e:?}"),
    }
}
