//! Storage cold-start differential suite: an engine reloaded from a
//! `gcore-store` backend must answer the paper's §3/§5 corpus — and an
//! SNB-1000 workload — canonically identically to the in-memory engine
//! it was saved from.
//!
//! Comparison uses the same canonicalizer as the concurrency suite
//! (`common/mod.rs`): the reloaded engine's identifier generator
//! restarts at the stored watermark, so statement evaluation draws
//! different (but order-isomorphic) fresh identifiers; renumbering
//! above a *shared* watermark absorbs exactly that. Shared identities
//! (the stored graphs' elements) must match raw.

mod common;

use common::{canon_result, corpus_texts, prepared_engine};
use gcore::Engine;
use gcore_repro::corpus;
use gcore_snb::{generate, SnbConfig};
use gcore_store::{DirBackend, MemBackend, StorageBackend};

/// A unique scratch directory removed on drop (std-only tempdir).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gcore-cold-start-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run every statement sequentially and canonicalize with `watermark`.
fn run_canon(engine: &mut Engine, texts: &[&str], watermark: u64) -> Vec<String> {
    texts
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

/// The cold-start differential itself, against any backend: save the
/// prepared guided-tour engine, reload it, and replay the full corpus
/// on both. The watermark is the *reloaded* engine's generator start —
/// it sits above every stored identity on both sides and below every
/// fresh identifier either engine draws, so one value canonicalizes
/// both runs.
fn corpus_cold_start_matches(backend: &dyn StorageBackend) {
    let mut warm = prepared_engine();
    warm.save_to(backend).expect("save");
    let mut cold = Engine::open_from(backend).expect("open");

    // Same graphs, same default, identical stored content.
    assert_eq!(cold.catalog().graph_names(), warm.catalog().graph_names());
    assert_eq!(
        cold.catalog().default_graph_name(),
        warm.catalog().default_graph_name()
    );
    for name in warm.catalog().graph_names() {
        let a = warm.graph(&name).unwrap();
        let b = cold.graph(&name).unwrap();
        a.same_as(&b)
            .unwrap_or_else(|d| panic!("graph {name}: {d}"));
    }

    let watermark = cold.catalog().ids().peek();
    assert!(
        watermark <= warm.catalog().ids().peek(),
        "reload can only rewind the generator, never advance it"
    );

    let texts = corpus_texts();
    let reference = run_canon(&mut warm, &texts, watermark);
    let reloaded = run_canon(&mut cold, &texts, watermark);
    for (i, (a, b)) in reference.iter().zip(&reloaded).enumerate() {
        assert_eq!(
            a,
            b,
            "corpus statement {i} ({}) diverged after cold start",
            corpus::ALL[i].id
        );
    }
}

#[test]
fn corpus_cold_start_matches_in_memory_mem_backend() {
    corpus_cold_start_matches(&MemBackend::new());
}

#[test]
fn corpus_cold_start_matches_in_memory_dir_backend() {
    let tmp = TempDir::new("corpus");
    corpus_cold_start_matches(&DirBackend::new(&tmp.0).unwrap());
}

/// SNB-1000: persist the generated network, cold-start from disk, and
/// compare a mixed read workload (scans, joins, reachability, shortest
/// paths) statement by statement.
#[test]
fn snb_1000_cold_start_serves_identical_results() {
    const SNB_QUERIES: &[&str] = &[
        "SELECT n.personId AS id, n.firstName AS name MATCH (n:Person) WHERE n.personId < 40",
        "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) WHERE n.personId < 30",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) WHERE n.personId = 0",
        "CONSTRUCT (n)-/@p:sp/->(m) \
         MATCH (n:Person)-/p <:knows*>/->(m:Person) WHERE n.personId = 1",
        "CONSTRUCT (t) MATCH (n:Person)-[:hasInterest]->(t:Tag) WHERE n.personId < 25",
    ];

    let mut warm = Engine::new();
    let data = generate(&SnbConfig::scale(1000), &warm.catalog().ids().clone());
    warm.register_graph("snb", data.graph);
    warm.set_default_graph("snb");

    let tmp = TempDir::new("snb1000");
    let backend = DirBackend::new(&tmp.0).unwrap();
    warm.save_to(&backend).expect("save snb");
    let mut cold = Engine::open_from(&backend).expect("open snb");

    warm.graph("snb")
        .unwrap()
        .same_as(&cold.graph("snb").unwrap())
        .expect("stored SNB graph identical");

    let watermark = cold.catalog().ids().peek();
    let reference = run_canon(&mut warm, SNB_QUERIES, watermark);
    let reloaded = run_canon(&mut cold, SNB_QUERIES, watermark);
    for (i, (a, b)) in reference.iter().zip(&reloaded).enumerate() {
        assert_eq!(a, b, "SNB statement {i} diverged after cold start");
    }
}

/// Saving twice from independently reconstructed engines produces
/// byte-identical stores — the writer-determinism guarantee, observed
/// end to end through the engine API.
#[test]
fn independent_saves_are_byte_identical() {
    let a = MemBackend::new();
    let b = MemBackend::new();
    prepared_engine().save_to(&a).unwrap();
    prepared_engine().save_to(&b).unwrap();
    let keys = a.list().unwrap();
    assert_eq!(keys, b.list().unwrap());
    assert!(!keys.is_empty());
    for key in keys {
        assert_eq!(
            a.get_bytes(&key).unwrap(),
            b.get_bytes(&key).unwrap(),
            "object {key} differs between independent saves"
        );
    }
}

/// Save → restart → the snapshot epoch never regresses: the manifest
/// records the saving engine's epoch and `open_from` resumes there, so
/// a client of a restarted server that had observed epoch `e` can
/// never be handed an epoch `< e` (the PR 5 epoch-restart fix).
#[test]
fn save_restart_epoch_is_monotone() {
    let warm = prepared_engine();
    let saved_epoch = warm.snapshot_epoch();
    assert!(saved_epoch > 0, "fixture commits must have advanced it");

    let backend = MemBackend::new();
    warm.save_to(&backend).unwrap();
    let mut cold = Engine::open_from(&backend).unwrap();
    assert_eq!(cold.snapshot_epoch(), saved_epoch);

    // Writes on the restarted engine keep climbing from there.
    cold.run("GRAPH VIEW after_restart AS (CONSTRUCT (n) MATCH (n))")
        .unwrap();
    assert!(cold.snapshot_epoch() > saved_epoch);

    // Hot reload on a live engine is monotone from whichever side is
    // ahead: the live engine here has advanced past the store.
    let live_epoch = cold.snapshot_epoch();
    let reloaded_epoch = cold.reload_from(&backend).unwrap();
    assert!(reloaded_epoch > live_epoch);
    assert_eq!(cold.snapshot_epoch(), reloaded_epoch);
    // The reload really swapped the catalog back to the stored state.
    assert!(!cold.catalog().has_graph("after_restart"));
}

/// Save → reload → save again: the second store equals the first
/// (stability under a full round trip).
#[test]
fn save_reload_save_is_stable() {
    let first = MemBackend::new();
    prepared_engine().save_to(&first).unwrap();
    let reloaded = Engine::open_from(&first).unwrap();
    let second = MemBackend::new();
    reloaded.save_to(&second).unwrap();
    assert_eq!(first.list().unwrap(), second.list().unwrap());
    for key in first.list().unwrap() {
        assert_eq!(
            first.get_bytes(&key).unwrap(),
            second.get_bytes(&key).unwrap(),
            "object {key} changed across a reload cycle"
        );
    }
}
