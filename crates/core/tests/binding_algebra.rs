//! Property tests for the binding-table algebra (§A.1) over the
//! columnar implementation: the algebraic laws the evaluator relies on,
//! plus a naive row-major oracle for the join family.
//!
//! Generated cells avoid numerically-equal-but-distinct literals (no
//! floats), so the oracle's structural equality and the interner's code
//! unification agree on which rows are duplicates.

use gcore::binding::{BindingTable, Bound, Column, TableBuilder};
use gcore_ppg::{EdgeId, NodeId, PathPropertyGraph, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn col(var: &str) -> Column {
    Column {
        var: var.to_owned(),
        graph: Arc::new(PathPropertyGraph::new()),
    }
}

fn table_from(vars: &[&str], rows: &[Vec<Bound>]) -> BindingTable {
    let mut b = TableBuilder::new(vars.iter().map(|v| col(v)).collect());
    for r in rows {
        b.push(r);
    }
    b.finish()
}

/// Decode every row (tables are normalized, so equal tables decode to
/// equal row vectors in the same order).
fn rows_of(t: &BindingTable) -> Vec<Vec<Bound>> {
    (0..t.len())
        .map(|r| (0..t.columns().len()).map(|c| t.bound(r, c)).collect())
        .collect()
}

// ---------------------------------------------------------------------
// Naive row-major oracle for ⋈ / ⋉ / ∖ over decoded rows
// ---------------------------------------------------------------------

fn compatible(a: &[Bound], b: &[Bound], shared: &[(usize, usize)]) -> bool {
    shared
        .iter()
        .all(|&(i, j)| a[i].is_missing() || b[j].is_missing() || a[i] == b[j])
}

fn shared_pairs(av: &[&str], bv: &[&str]) -> Vec<(usize, usize)> {
    av.iter()
        .enumerate()
        .filter_map(|(i, v)| bv.iter().position(|w| w == v).map(|j| (i, j)))
        .collect()
}

/// Nested-loop join in merged-schema order (a's columns, then b's new
/// ones), sorted + deduplicated — the §A.1 definition executed naively.
fn oracle_join(a: &BindingTable, b: &BindingTable) -> Vec<Vec<Bound>> {
    let av = a.var_names();
    let bv = b.var_names();
    let shared = shared_pairs(&av, &bv);
    let b_new: Vec<usize> = (0..bv.len()).filter(|j| !av.contains(&bv[*j])).collect();
    let mut out = Vec::new();
    for ar in rows_of(a) {
        for br in rows_of(b) {
            if !compatible(&ar, &br, &shared) {
                continue;
            }
            let mut row = ar.clone();
            for &(i, j) in &shared {
                if row[i].is_missing() {
                    row[i] = br[j].clone();
                }
            }
            for &j in &b_new {
                row.push(br[j].clone());
            }
            out.push(row);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn oracle_semi(a: &BindingTable, b: &BindingTable, keep_matched: bool) -> Vec<Vec<Bound>> {
    let shared = shared_pairs(&a.var_names(), &b.var_names());
    let b_rows = rows_of(b);
    let mut out: Vec<Vec<Bound>> = rows_of(a)
        .into_iter()
        .filter(|ar| b_rows.iter().any(|br| compatible(ar, br, &shared)) == keep_matched)
        .collect();
    out.sort();
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

const STRS: [&str; 2] = ["red", "blue"];

fn bound_strategy() -> impl Strategy<Value = Bound> {
    prop_oneof![
        Just(Bound::Missing),
        (0..3u64).prop_map(|i| Bound::Node(NodeId(i))),
        (0..2u64).prop_map(|i| Bound::Edge(EdgeId(i))),
        (0..3i64).prop_map(|i| Bound::Value(Value::Int(i))),
        (0..2usize).prop_map(|i| Bound::Value(Value::str(STRS[i]))),
    ]
}

fn rows_strategy(width: usize) -> impl Strategy<Value = Vec<Vec<Bound>>> {
    prop::collection::vec(
        prop::collection::vec(bound_strategy(), width..width + 1),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Ω₁ ⋈ Ω₂ = Ω₂ ⋈ Ω₁ up to column order.
    #[test]
    fn join_commutes_up_to_column_order(
        ra in rows_strategy(2),
        rb in rows_strategy(2),
    ) {
        let a = table_from(&["x", "y"], &ra);
        let b = table_from(&["y", "z"], &rb);
        let ab = a.join(&b);
        let ba = b.join(&a);
        let order = ["x", "y", "z"];
        prop_assert_eq!(
            rows_of(&ab.project(&order)),
            rows_of(&ba.project(&order)),
            "a = {:?}, b = {:?}", ra, rb
        );
    }

    /// Ω₁ ⟕ Ω₂ = (Ω₁ ⋈ Ω₂) ∪ (Ω₁ ∖ Ω₂).
    #[test]
    fn left_outer_is_join_union_anti(
        ra in rows_strategy(2),
        rb in rows_strategy(2),
    ) {
        let a = table_from(&["x", "y"], &ra);
        let b = table_from(&["y", "z"], &rb);
        let lhs = a.left_outer_join(&b);
        let rhs = a.join(&b).union(&a.antijoin(&b));
        prop_assert_eq!(rows_of(&lhs), rows_of(&rhs));
    }

    /// The unit table is the ⋈ identity on both sides.
    #[test]
    fn unit_is_join_identity(ra in rows_strategy(2)) {
        let a = table_from(&["x", "y"], &ra);
        let left = BindingTable::unit().join(&a);
        let right = a.join(&BindingTable::unit());
        prop_assert_eq!(rows_of(&left), rows_of(&a));
        prop_assert_eq!(rows_of(&right), rows_of(&a));
    }

    /// Rebuilding a table from its own rows (even pushed twice) is the
    /// identity: normalization is idempotent and set semantics hold.
    #[test]
    fn dedup_is_idempotent(ra in rows_strategy(3)) {
        let a = table_from(&["x", "y", "z"], &ra);
        let decoded = rows_of(&a);
        let doubled: Vec<Vec<Bound>> =
            decoded.iter().chain(decoded.iter()).cloned().collect();
        let rebuilt = table_from(&["x", "y", "z"], &doubled);
        prop_assert_eq!(rows_of(&rebuilt), decoded);
    }

    /// ⋈ agrees with the naive nested-loop oracle.
    #[test]
    fn join_matches_oracle(
        ra in rows_strategy(2),
        rb in rows_strategy(2),
    ) {
        let a = table_from(&["x", "y"], &ra);
        let b = table_from(&["y", "z"], &rb);
        prop_assert_eq!(rows_of(&a.join(&b)), oracle_join(&a, &b));
    }

    /// ⋉ and ∖ agree with the oracle and partition Ω₁.
    #[test]
    fn semijoin_antijoin_match_oracle_and_partition(
        ra in rows_strategy(2),
        rb in rows_strategy(2),
    ) {
        let a = table_from(&["x", "y"], &ra);
        let b = table_from(&["y", "z"], &rb);
        let semi = a.semijoin(&b);
        let anti = a.antijoin(&b);
        prop_assert_eq!(rows_of(&semi), oracle_semi(&a, &b, true));
        prop_assert_eq!(rows_of(&anti), oracle_semi(&a, &b, false));
        // ⋉ ∪ ∖ = Ω₁ (they partition the left table).
        prop_assert_eq!(rows_of(&semi.union(&anti)), rows_of(&a));
    }
}
