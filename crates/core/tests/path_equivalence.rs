//! Equivalence property tests for the path-engine search strategies.
//!
//! The overhauled product search has four accelerations — label-indexed
//! expansion, bidirectional single-pair search, backward-cone pruning and
//! the SCC-condensed shared frontier — all of which must be *invisible*:
//! on random graphs and random regexes, each strategy's canonical
//! paths / reachability sets must be identical to the baseline
//! unidirectional scan search.

use gcore::paths::{ExpandMode, PathSearcher, ViewMap};
use gcore::regex::Nfa;
use gcore_parser::ast::Regex;
use gcore_ppg::hash::FxHashSet;
use gcore_ppg::{Attributes, EdgeId, NodeId, PathPropertyGraph};
use proptest::prelude::*;

const EDGE_LABELS: [&str; 2] = ["a", "b"];
const NODE_LABELS: [&str; 2] = ["P", "Q"];

/// A random multigraph: node count, per-node label picks, and a list of
/// (src, dst, label) edges over those nodes.
#[derive(Clone, Debug)]
struct RandomGraph {
    nodes: usize,
    node_labels: Vec<usize>, // 0 = none, 1 = P, 2 = Q, 3 = both
    edges: Vec<(usize, usize, usize)>,
}

impl RandomGraph {
    fn build(&self, indexed: bool) -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        for i in 0..self.nodes {
            let mut attrs = Attributes::new();
            if self.node_labels[i] & 1 != 0 {
                attrs = attrs.with_label(NODE_LABELS[0]);
            }
            if self.node_labels[i] & 2 != 0 {
                attrs = attrs.with_label(NODE_LABELS[1]);
            }
            g.add_node(NodeId(1 + i as u64), attrs);
        }
        for (i, &(s, d, l)) in self.edges.iter().enumerate() {
            g.add_edge(
                EdgeId(100 + i as u64),
                NodeId(1 + s as u64),
                NodeId(1 + d as u64),
                Attributes::labeled(EDGE_LABELS[l]),
            )
            .expect("endpoints exist");
        }
        if indexed {
            g.build_label_index();
        }
        g
    }
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (2usize..6).prop_flat_map(|nodes| {
        let labels = prop::collection::vec(0usize..4, nodes..nodes + 1);
        let edges = prop::collection::vec((0..nodes, 0..nodes, 0..EDGE_LABELS.len()), 0..12);
        (labels, edges).prop_map(move |(node_labels, edges)| RandomGraph {
            nodes,
            node_labels,
            edges,
        })
    })
}

/// Random view-free regexes (views have no reversal, and need an engine
/// to evaluate; the strategies under test fall back to the baseline for
/// them anyway).
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..2usize).prop_map(|i| Regex::Label(EDGE_LABELS[i].to_owned())),
        (0..2usize).prop_map(|i| Regex::LabelInv(EDGE_LABELS[i].to_owned())),
        (0..2usize).prop_map(|i| Regex::NodeTest(NODE_LABELS[i].to_owned())),
        Just(Regex::Wildcard),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.prop_map(|r| Regex::Opt(Box::new(r))),
        ]
    })
}

/// Flatten a k-shortest result into a comparable, deterministic form.
fn flat_paths(
    found: &gcore_ppg::hash::FxHashMap<NodeId, Vec<gcore::paths::FoundPath>>,
) -> Vec<(NodeId, Vec<Vec<u64>>)> {
    let mut v: Vec<(NodeId, Vec<Vec<u64>>)> = found
        .iter()
        .map(|(dst, paths)| (*dst, paths.iter().map(|p| p.walk.interleaved()).collect()))
        .collect();
    v.sort_by_key(|(d, _)| *d);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Indexed expansion is invisible: reachability sets and canonical
    /// k-shortest walks agree with the scan expansion.
    #[test]
    fn indexed_expansion_is_equivalent(rg in graph_strategy(), re in regex_strategy()) {
        let g = rg.build(true);
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();
        let indexed = PathSearcher::new(&g, &nfa, &views);
        let scan = PathSearcher::new(&g, &nfa, &views).with_expansion(ExpandMode::Scan);
        for i in 0..rg.nodes {
            let src = NodeId(1 + i as u64);
            prop_assert_eq!(indexed.reachable(src), scan.reachable(src));
            let a = flat_paths(&indexed.k_shortest(src, 2, None));
            let b = flat_paths(&scan.k_shortest(src, 2, None));
            prop_assert_eq!(a, b, "k-shortest from {}", src);
        }
    }

    /// The bidirectional pair search answers exactly like membership in
    /// the unidirectional reachability set.
    #[test]
    fn bidirectional_is_equivalent(rg in graph_strategy(), re in regex_strategy()) {
        let g = rg.build(true);
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        for i in 0..rg.nodes {
            let src = NodeId(1 + i as u64);
            let reach = s.reachable(src);
            for j in 0..rg.nodes {
                let dst = NodeId(1 + j as u64);
                prop_assert_eq!(
                    s.reachable_pair(src, dst),
                    reach.contains(&dst),
                    "pair ({}, {})", src, dst
                );
            }
        }
    }

    /// The shared-frontier (SCC-condensed) multi-source search returns,
    /// per source, exactly the per-source reachability set.
    #[test]
    fn shared_frontier_is_equivalent(rg in graph_strategy(), re in regex_strategy()) {
        let g = rg.build(true);
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let sources: Vec<NodeId> = (0..rg.nodes).map(|i| NodeId(1 + i as u64)).collect();
        let many = s.reachable_many(&sources);
        for &src in &sources {
            prop_assert_eq!(&*many[&src], &s.reachable(src), "source {}", src);
        }
    }

    /// Backward-cone pruning with concrete targets yields walk-identical
    /// results to the unrestricted search filtered to the target.
    #[test]
    fn cone_pruning_is_equivalent(rg in graph_strategy(), re in regex_strategy()) {
        let g = rg.build(true);
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        for i in 0..rg.nodes {
            let src = NodeId(1 + i as u64);
            let all = s.k_shortest(src, 2, None);
            for j in 0..rg.nodes {
                let dst = NodeId(1 + j as u64);
                let mut t = FxHashSet::default();
                t.insert(dst);
                let pruned = s.k_shortest(src, 2, Some(&t));
                match all.get(&dst) {
                    None => prop_assert!(pruned.is_empty(), "({}, {})", src, dst),
                    Some(paths) => {
                        prop_assert_eq!(pruned.len(), 1);
                        let got: Vec<Vec<u64>> =
                            pruned[&dst].iter().map(|p| p.walk.interleaved()).collect();
                        let want: Vec<Vec<u64>> =
                            paths.iter().map(|p| p.walk.interleaved()).collect();
                        prop_assert_eq!(got, want, "walks ({}, {})", src, dst);
                    }
                }
            }
        }
    }
}
