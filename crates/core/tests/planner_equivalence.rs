//! Differential planner suite: the cost-based planner (join reordering,
//! IN-conjunct pushdown, path-strategy selection) and intra-query
//! parallelism are pure optimizations — every query must return exactly
//! the same output with them on, off, or at any thread count, and under
//! *arbitrary* graph statistics (statistics steer cost estimates, never
//! semantics).
//!
//! Outputs are compared canonically (see `common/mod.rs`, shared with
//! the snapshot and cold-start suites): identifiers skolemized above the
//! engine's generator watermark are renumbered by rank, so structurally
//! identical outputs compare equal even though two engines draw fresh
//! ids independently.

mod common;

use common::{canon_result, corpus_texts};
use gcore::Engine;
use gcore_ppg::{EdgeLabelStats, GraphStats, PathPropertyGraph, PropStats};
use gcore_snb::{figure2, generate, social_dataset, SnbConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Engine fixtures
// ---------------------------------------------------------------------

/// The guided-tour engine with planner and parallelism pinned *before*
/// any statement runs, so the two corpus `GRAPH VIEW` definitions are
/// also built under the configuration being differenced.
fn tour_engine(planner: bool, threads: usize) -> Engine {
    let mut engine = Engine::new();
    engine.set_planner(planner);
    engine.set_parallelism(threads);
    let ids = engine.catalog().ids().clone();
    let d = social_dataset(&ids);
    let fig2 = figure2(&ids);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", fig2);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    engine
}

/// Run the whole §3/§5 corpus on a fresh tour engine and canonicalize
/// every statement's result (errors included — a query that fails must
/// fail identically under every configuration).
fn corpus_canon(planner: bool, threads: usize) -> Vec<String> {
    let mut engine = tour_engine(planner, threads);
    let watermark = engine.catalog().ids().peek();
    corpus_texts()
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

// ---------------------------------------------------------------------
// Corpus: planner on ≡ off, parallel ≡ sequential
// ---------------------------------------------------------------------

#[test]
fn corpus_planner_on_matches_off() {
    let off = corpus_canon(false, 1);
    let on = corpus_canon(true, 1);
    for (i, (a, b)) in off.iter().zip(&on).enumerate() {
        assert_eq!(
            a,
            b,
            "corpus statement {i} ({}) diverged with the planner on",
            gcore_repro::corpus::ALL[i].id
        );
    }
}

#[test]
fn corpus_parallel_matches_sequential() {
    let sequential = corpus_canon(true, 1);
    for threads in [2, 4, 8] {
        let parallel = corpus_canon(true, threads);
        for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                a,
                b,
                "corpus statement {i} ({}) diverged at {threads} threads",
                gcore_repro::corpus::ALL[i].id
            );
        }
    }
}

// ---------------------------------------------------------------------
// SNB: planner on ≡ off on a generated network
// ---------------------------------------------------------------------

/// A 16-query mix exercising every planned shape on the SNB schema:
/// the benchmark suite's matching shapes (scans, hops, value joins,
/// optionals), equi-joins the planner reorders, IN conjuncts it pushes
/// into patterns, and bound-pair path reachability where it consults
/// the reverse-cone strategy.
const SNB_QUERIES: &[&str] = &[
    // The benchmark suite's matching shapes.
    "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:knows]->(m:Person) \
     WHERE n.personId < 50",
    "CONSTRUCT (n)-[:fof]->(k) \
     MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
     WHERE n.personId < 10",
    "CONSTRUCT (a)-[:colleague]->(b) \
     MATCH (a:Person {employer = e}), (b:Person) \
     WHERE e IN b.employer AND a.personId < 20",
    "CONSTRUCT (n) SET n.msgs := COUNT(*) \
     MATCH (n:Person) \
     OPTIONAL (n)<-[:has_creator]-(msg:Post) \
     WHERE n.personId < 100",
    "CONSTRUCT (n) MATCH (n:Person) \
     WHERE (n)-[:hasInterest]->(:Tag {name = 'Wagner'}) \
       AND n.personId < 200",
    // Pessimal syntactic order: the broad pattern first, the selective
    // one last — the planner reorders, results must not move.
    "CONSTRUCT (b)<-[:sameEmployer]-(a) \
     MATCH (b:Person), (a:Person {employer = e}) \
     WHERE e IN b.employer AND a.personId < 20",
    "SELECT t.name, COUNT(*) AS fans \
     MATCH (p:Person)-[:hasInterest]->(t:Tag) \
     GROUP BY t.name",
    // Existential subquery on top of a planned main clause.
    "CONSTRUCT (p) MATCH (p:Person) \
     WHERE p.personId < 60 AND EXISTS ( CONSTRUCT () \
       MATCH (p)-[:knows]->(q:Person) WHERE q.employer = p.employer )",
    "CONSTRUCT (c)<-[:electorate]-(p) \
     MATCH (c:City), (p:Person) \
     WHERE (p)-[:isLocatedIn]->(c) AND p.personId < 120",
    // Multi-pattern join with a pessimal syntactic order (broad knows
    // fan-out first, selective city filter last).
    "SELECT p.firstName, q.firstName \
     MATCH (p:Person)-[:knows]->(q:Person), (q)-[:isLocatedIn]->(c:City) \
     WHERE c.name = 'Arnhem'",
    // Value join between disconnected patterns.
    "SELECT p.firstName, t.name \
     MATCH (p:Person), (t:Tag) \
     WHERE t.name IN p.speaks",
    // Path join between reachability and co-location patterns.
    "CONSTRUCT (p)-[:sameCity]->(q) \
     MATCH (p:Person)-/<:knows*>/->(q:Person), \
           (p)-[:isLocatedIn]->(c:City)<-[:isLocatedIn]-(q) \
     WHERE p.personId < 25 AND q.personId < 40",
    // Bound-destination path step: the chain binds q before the knows*
    // step back to p, so the matcher evaluates src→dst pairs and
    // consults the planner's bound-pair strategy.
    "SELECT p.personId, q.personId \
     MATCH (p:Person)-[:knows]->(q:Person)-/<:knows*>/->(p) \
     WHERE p.personId < 40",
    // Reverse-direction step over the hub relation (fan-in ≫ fan-out).
    "SELECT c.name, COUNT(*) AS people \
     MATCH (c:City)<-[:isLocatedIn]-(p:Person) \
     GROUP BY c.name",
    // Shortest-path matching with a stored-path CONSTRUCT.
    "CONSTRUCT (p)-/@sp/->(q) \
     MATCH (p:Person)-/3 SHORTEST sp <:knows*>/->(q:Person) \
     WHERE p.firstName = 'Mahinda'",
    // Optional blocks on top of a planned main clause.
    "SELECT p.firstName, c.name \
     MATCH (p:Person), (c:City) \
     WHERE (p)-[:isLocatedIn]->(c) \
     OPTIONAL (p)-[:hasInterest]->(t:Tag)",
];

fn snb_canon(planner: bool, threads: usize, persons: usize) -> Vec<String> {
    let mut engine = Engine::new();
    engine.set_planner(planner);
    engine.set_parallelism(threads);
    let data = generate(&SnbConfig::scale(persons), &engine.catalog().ids().clone());
    engine.register_graph("snb", data.graph);
    engine.set_default_graph("snb");
    let watermark = engine.catalog().ids().peek();
    SNB_QUERIES
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

#[test]
fn snb_planner_on_matches_off() {
    let off = snb_canon(false, 1, 1000);
    let on = snb_canon(true, 1, 1000);
    for (i, (a, b)) in off.iter().zip(&on).enumerate() {
        assert_eq!(a, b, "SNB query {i} diverged with the planner on");
    }
}

#[test]
fn snb_parallel_matches_sequential() {
    let sequential = snb_canon(true, 1, 1000);
    for threads in [2, 4] {
        assert_eq!(
            sequential,
            snb_canon(true, threads, 1000),
            "SNB results diverged at {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------
// Reverse-cone pair reachability ≡ bidirectional
// ---------------------------------------------------------------------

/// The two bound-pair strategies must agree on every (src, dst, regex)
/// — `reachable_pair_reverse` is what the planner dispatches to when
/// statistics favor searching backward from the destination.
#[test]
fn pair_reverse_matches_bidirectional() {
    use gcore::paths::{PathSearcher, ViewMap};
    use gcore::regex::Nfa;
    use gcore_parser::ast::Regex;

    let engine = Engine::new();
    let data = generate(&SnbConfig::scale(200), &engine.catalog().ids().clone());
    let graph = data.graph;
    let views = ViewMap::default();
    let regexes = [
        Regex::Star(Box::new(Regex::Label("knows".into()))),
        Regex::Label("isLocatedIn".into()),
        Regex::LabelInv("isLocatedIn".into()),
        Regex::Concat(vec![
            Regex::Star(Box::new(Regex::Label("knows".into()))),
            Regex::Label("isLocatedIn".into()),
        ]),
        Regex::Alt(vec![
            Regex::Label("hasInterest".into()),
            Regex::Concat(vec![
                Regex::Label("knows".into()),
                Regex::Label("hasInterest".into()),
            ]),
        ]),
        Regex::Opt(Box::new(Regex::Wildcard)),
    ];
    let mut nodes: Vec<_> = graph.node_ids().collect();
    nodes.sort_unstable();
    // A deterministic sample of pairs: striding keeps the test fast but
    // mixes persons, cities and tags on both sides.
    let sample: Vec<_> = nodes.iter().step_by(37).copied().collect();
    for regex in &regexes {
        let nfa = Nfa::compile(regex);
        let searcher = PathSearcher::new(&graph, &nfa, &views);
        for &src in &sample {
            for &dst in &sample {
                assert_eq!(
                    searcher.reachable_pair(src, dst),
                    searcher.reachable_pair_reverse(src, dst),
                    "strategies disagree on {src:?} → {dst:?} via {regex:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Arbitrary statistics never change results
// ---------------------------------------------------------------------

/// Overwrite a graph's statistics with arbitrary (but count-consistent)
/// numbers: every label row, relation sketch and property sketch is
/// replaced by values drawn from `vals`, cycled. `set_stats` keeps the
/// payload because the element counts still match the graph.
fn scramble_stats(g: &mut PathPropertyGraph, vals: &[u64]) {
    g.build_stats();
    let mut s: GraphStats = g.stats().expect("just built").clone();
    let mut i = 0usize;
    let mut next = || {
        let v = vals[i % vals.len()];
        i += 1;
        v
    };
    for (_, count) in &mut s.nodes_per_label {
        *count = next();
    }
    for (_, e) in &mut s.edges_per_label {
        *e = EdgeLabelStats {
            count: next(),
            distinct_src: next(),
            distinct_dst: next(),
        };
    }
    for (_, p) in s.node_props.iter_mut().chain(s.edge_props.iter_mut()) {
        *p = PropStats {
            carriers: next(),
            values: next(),
            distinct: next(),
        };
    }
    g.set_stats(s);
}

/// [`corpus_canon`] over an engine whose input graphs carry scrambled
/// statistics.
fn scrambled_canon(vals: &[u64]) -> Vec<String> {
    let mut engine = Engine::new();
    engine.set_planner(true);
    let ids = engine.catalog().ids().clone();
    let mut d = social_dataset(&ids);
    let mut fig2 = figure2(&ids);
    scramble_stats(&mut d.social_graph, vals);
    scramble_stats(&mut d.company_graph, vals);
    scramble_stats(&mut fig2, vals);
    engine.register_graph("social_graph", d.social_graph);
    engine.register_graph("company_graph", d.company_graph);
    engine.register_graph("figure2", fig2);
    engine.register_table("orders", d.orders);
    engine.set_default_graph("social_graph");
    let watermark = engine.catalog().ids().peek();
    corpus_texts()
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

/// Number of randomized-statistics cases; pin with `PROPTEST_CASES` (CI
/// does) — the vendored proptest is seed-deterministic either way.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Statistics are advisory: whatever cardinalities the planner is
    /// fed — zeros, ones, astronomically wrong counts — the corpus
    /// results must match the planner-off reference bit for bit.
    #[test]
    fn arbitrary_stats_never_change_results(
        vals in prop::collection::vec(0u64..1_000_000_000, 8..32),
    ) {
        let reference = corpus_canon(false, 1);
        let scrambled = scrambled_canon(&vals);
        for (i, (a, b)) in reference.iter().zip(&scrambled).enumerate() {
            prop_assert_eq!(
                a, b,
                "corpus statement {} ({}) diverged under scrambled statistics",
                i, gcore_repro::corpus::ALL[i].id
            );
        }
    }
}
