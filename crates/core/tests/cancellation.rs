//! Cooperative cancellation is a pure *absence* mechanism: a token that
//! never fires must leave every result bit-identical to an engine with
//! no token at all, a token that has already fired must fail every
//! statement with `E016`, and a deadline must cut a pathological
//! statement short without wedging the engine for later statements.
//!
//! Outputs are compared canonically (see `common/mod.rs`, shared with
//! the planner, snapshot and cold-start suites).

mod common;

use common::{canon_result, corpus_texts, prepared_engine};
use gcore::cancel::{CancelToken, CHECK_STRIDE};
use gcore::diag::DiagCode;
use gcore::Engine;
use gcore_snb::{generate, SnbConfig};
use std::time::Duration;

/// The stable code the serving and tooling layers key on.
#[test]
fn cancelled_has_the_stable_code_e016() {
    assert_eq!(DiagCode::Cancelled.as_str(), "E016");
}

// ---------------------------------------------------------------------
// Differential: cancellation that never fires is invisible
// ---------------------------------------------------------------------

/// Run the whole §3/§5 corpus on a fresh tour engine and canonicalize
/// every statement's result (errors included).
fn corpus_canon(deadline: Option<Duration>) -> Vec<String> {
    let mut engine = prepared_engine();
    engine.set_statement_deadline(deadline);
    let watermark = engine.catalog().ids().peek();
    corpus_texts()
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

/// A generous deadline is a token that never fires: every checkpoint in
/// the matcher, joins, WHERE evaluation and path searches consults it,
/// and none may perturb the result.
#[test]
fn corpus_with_inert_deadline_matches_baseline() {
    let baseline = corpus_canon(None);
    let guarded = corpus_canon(Some(Duration::from_hours(1)));
    for (i, (a, b)) in baseline.iter().zip(&guarded).enumerate() {
        assert_eq!(
            a,
            b,
            "corpus statement {i} ({}) diverged under an inert deadline",
            gcore_repro::corpus::ALL[i].id
        );
    }
}

/// A mix over the SNB schema hitting every cancellation-instrumented
/// code path: label scans, multi-pattern joins, WHERE filtering,
/// unbounded reachability (`knows*`), bound-pair reachability, shortest
/// paths, and aggregation over a reverse hub relation.
const SNB_MIX: &[&str] = &[
    "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[:fof]->(k) \
     MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
     WHERE n.personId < 10",
    "SELECT p.firstName, q.firstName \
     MATCH (p:Person)-[:knows]->(q:Person), (q)-[:isLocatedIn]->(c:City) \
     WHERE c.name = 'Arnhem'",
    "CONSTRUCT (p)-[:sameCity]->(q) \
     MATCH (p:Person)-/<:knows*>/->(q:Person), \
           (p)-[:isLocatedIn]->(c:City)<-[:isLocatedIn]-(q) \
     WHERE p.personId < 25 AND q.personId < 40",
    "SELECT p.personId, q.personId \
     MATCH (p:Person)-[:knows]->(q:Person)-/<:knows*>/->(p) \
     WHERE p.personId < 40",
    "CONSTRUCT (p)-/@sp/->(q) \
     MATCH (p:Person)-/3 SHORTEST sp <:knows*>/->(q:Person) \
     WHERE p.firstName = 'Mahinda'",
    "SELECT c.name, COUNT(*) AS people \
     MATCH (c:City)<-[:isLocatedIn]-(p:Person) \
     GROUP BY c.name",
    "SELECT t.name, COUNT(*) AS fans \
     MATCH (p:Person)-[:hasInterest]->(t:Tag) \
     GROUP BY t.name",
];

fn snb_canon(deadline: Option<Duration>) -> Vec<String> {
    let mut engine = Engine::new();
    engine.set_statement_deadline(deadline);
    let data = generate(&SnbConfig::scale(1000), &engine.catalog().ids().clone());
    engine.register_graph("snb", data.graph);
    engine.set_default_graph("snb");
    let watermark = engine.catalog().ids().peek();
    SNB_MIX
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

#[test]
fn snb_mix_with_inert_deadline_matches_baseline() {
    let baseline = snb_canon(None);
    let guarded = snb_canon(Some(Duration::from_hours(1)));
    for (i, (a, b)) in baseline.iter().zip(&guarded).enumerate() {
        assert_eq!(a, b, "SNB query {i} diverged under an inert deadline");
    }
}

// ---------------------------------------------------------------------
// A fired token fails fast with E016
// ---------------------------------------------------------------------

/// Read statements spanning the instrumented paths: a pre-fired token
/// must turn each of them into `RuntimeError::Cancelled`, never a
/// partial answer.
#[test]
fn pre_fired_token_fails_every_statement() {
    let mut engine = prepared_engine();
    let token = CancelToken::new();
    token.cancel();
    for text in [
        "SELECT n.name AS name MATCH (n:Person)",
        "CONSTRUCT (n)-[e]->(m) MATCH (n:Person)-[e:worksAt]->(m:Company)",
        "SELECT x.name AS who MATCH (x:Person)-/<:knows*>/->(y:Person)",
    ] {
        let mut executor = engine.executor();
        executor.set_cancel_token(token.clone());
        let err = executor.run(text).expect_err(text);
        assert!(err.is_cancelled(), "{text}: expected E016, got {err}");
    }
}

/// An already-expired deadline behaves exactly like a fired token.
#[test]
fn expired_deadline_cancels() {
    let mut engine = prepared_engine();
    let mut executor = engine.executor();
    executor.set_statement_deadline(Some(Duration::ZERO));
    let err = executor
        .run("SELECT n.name AS name MATCH (n:Person)")
        .expect_err("zero budget must cancel");
    assert!(err.is_cancelled(), "got {err}");
}

/// [`Engine::set_statement_deadline`] is the embedder's knob: a tiny
/// budget cancels a pathological statement, clearing it restores full
/// evaluation on the same engine — cancellation never wedges state.
#[test]
fn engine_statement_deadline_applies_and_clears() {
    let mut engine = prepared_engine();
    engine.set_statement_deadline(Some(Duration::from_millis(1)));
    let err = engine
        .run(
            "SELECT COUNT(*) AS c \
             MATCH (a:Person), (b:Person), (c:Person), (d:Person), \
                   (e:Person), (f:Person), (g:Person), (h:Person)",
        )
        .expect_err("a 1 ms budget must cancel the eight-way product");
    assert!(err.is_cancelled(), "got {err}");

    engine.set_statement_deadline(None);
    let output = engine
        .run("SELECT n.name AS name MATCH (n:Person)")
        .expect("deadline cleared, statements must run again");
    assert!(output.into_table().is_some());
}

/// Cancelling mid-flight from another thread stops a statement that
/// would otherwise grind through an enormous cross product. The stride
/// bounds how much work a checkpoint may miss, so a prompt cancel must
/// come back well before the full product is enumerated.
#[test]
fn concurrent_cancel_interrupts_evaluation() {
    let mut engine = prepared_engine();
    let token = CancelToken::new();
    let mut executor = engine.executor();
    executor.set_cancel_token(token.clone());

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        })
    };
    let err = executor
        .run(
            "SELECT COUNT(*) AS c \
             MATCH (a:Person), (b:Person), (c:Person), (d:Person), \
                   (e:Person), (f:Person), (g:Person), (h:Person)",
        )
        .expect_err("concurrent cancel must interrupt the product");
    assert!(err.is_cancelled(), "got {err}");
    canceller.join().unwrap();
    // Sanity on the constant the bound above relies on: checkpoints
    // poll at least once every CHECK_STRIDE iterations.
    assert!(CHECK_STRIDE.is_power_of_two());
}
