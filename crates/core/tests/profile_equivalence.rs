//! Profiling is pure *observation*: enabling it may never change any
//! result. This suite pins profiling-on ≡ profiling-off bit-identically
//! over the whole §3/§5 corpus and an SNB-1000 mix, in both planner
//! modes (it runs in the `GCORE_PLAN=off` CI job too), and checks that
//! every profiled statement yields a structurally well-formed profile.
//!
//! Outputs are compared canonically (see `common/mod.rs`, shared with
//! the planner, snapshot and cancellation suites).

mod common;

use common::{canon_result, corpus_texts, prepared_engine};
use gcore::Engine;
use gcore_snb::{generate, SnbConfig};

/// Run the whole §3/§5 corpus on a fresh tour engine and canonicalize
/// every statement's result (errors included).
fn corpus_canon(profiling: bool) -> Vec<String> {
    let mut engine = prepared_engine();
    engine.set_profiling(profiling);
    let watermark = engine.catalog().ids().peek();
    corpus_texts()
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

/// Every profile span boundary sits on an existing evaluation boundary;
/// collecting a span tree must leave each corpus result bit-identical.
#[test]
fn corpus_with_profiling_matches_baseline() {
    let baseline = corpus_canon(false);
    let profiled = corpus_canon(true);
    for (i, (a, b)) in baseline.iter().zip(&profiled).enumerate() {
        assert_eq!(
            a,
            b,
            "corpus statement {i} ({}) diverged under profiling",
            gcore_repro::corpus::ALL[i].id
        );
    }
}

/// A mix over the SNB schema hitting every instrumented operator: label
/// scans, multi-pattern joins, WHERE filtering, unbounded reachability
/// (`knows*`), bound-pair reachability, shortest paths, and aggregation
/// over a reverse hub relation. Same mix as the cancellation suite —
/// spans and cancellation polls share their loop boundaries.
const SNB_MIX: &[&str] = &[
    "CONSTRUCT (n) MATCH (n:Person) WHERE n.personId < 50",
    "CONSTRUCT (n)-[:fof]->(k) \
     MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(k:Person) \
     WHERE n.personId < 10",
    "SELECT p.firstName, q.firstName \
     MATCH (p:Person)-[:knows]->(q:Person), (q)-[:isLocatedIn]->(c:City) \
     WHERE c.name = 'Arnhem'",
    "CONSTRUCT (p)-[:sameCity]->(q) \
     MATCH (p:Person)-/<:knows*>/->(q:Person), \
           (p)-[:isLocatedIn]->(c:City)<-[:isLocatedIn]-(q) \
     WHERE p.personId < 25 AND q.personId < 40",
    "SELECT p.personId, q.personId \
     MATCH (p:Person)-[:knows]->(q:Person)-/<:knows*>/->(p) \
     WHERE p.personId < 40",
    "CONSTRUCT (p)-/@sp/->(q) \
     MATCH (p:Person)-/3 SHORTEST sp <:knows*>/->(q:Person) \
     WHERE p.firstName = 'Mahinda'",
    "SELECT c.name, COUNT(*) AS people \
     MATCH (c:City)<-[:isLocatedIn]-(p:Person) \
     GROUP BY c.name",
    "SELECT t.name, COUNT(*) AS fans \
     MATCH (p:Person)-[:hasInterest]->(t:Tag) \
     GROUP BY t.name",
];

fn snb_engine() -> Engine {
    let mut engine = Engine::new();
    let data = generate(&SnbConfig::scale(1000), &engine.catalog().ids().clone());
    engine.register_graph("snb", data.graph);
    engine.set_default_graph("snb");
    engine
}

fn snb_canon(profiling: bool) -> Vec<String> {
    let mut engine = snb_engine();
    engine.set_profiling(profiling);
    let watermark = engine.catalog().ids().peek();
    SNB_MIX
        .iter()
        .map(|t| canon_result(&engine.run(t), watermark))
        .collect()
}

#[test]
fn snb_mix_with_profiling_matches_baseline() {
    let baseline = snb_canon(false);
    let profiled = snb_canon(true);
    for (i, (a, b)) in baseline.iter().zip(&profiled).enumerate() {
        assert_eq!(a, b, "SNB query {i} diverged under profiling");
    }
}

/// `Engine::profile` must return the same output `Engine::run` does,
/// plus a well-formed profile for every SNB mix statement.
#[test]
fn profile_returns_the_same_output_plus_a_wellformed_profile() {
    let mut plain = snb_engine();
    let mut profiled = snb_engine();
    let watermark = plain.catalog().ids().peek();
    for text in SNB_MIX {
        let via_run = canon_result(&plain.run(text), watermark);
        let (out, profile) = profiled.profile(text).expect(text);
        assert_eq!(via_run, canon_result(&Ok(out), watermark), "{text}");
        profile
            .validate()
            .unwrap_or_else(|e| panic!("{text}: malformed profile: {e}"));
        assert!(profile.span_count() > 0);
    }
}

/// Profiled evaluation feeds the engine's metrics registry: statement
/// counts always, misestimate counts whenever estimates diverge.
#[test]
fn profiled_statements_reach_the_metrics_registry() {
    let mut engine = snb_engine();
    engine.set_profiling(true);
    for text in SNB_MIX {
        engine.run(text).expect(text);
    }
    let snap = engine.metrics_registry().snapshot();
    let get = |name: &str| {
        snap.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("metric '{name}' not registered"))
    };
    assert_eq!(get("statements"), SNB_MIX.len() as u64);
    assert_eq!(get("cancellations"), 0);
    // The mix contains multi-pattern clauses; the planner must have
    // done *something* observable across it.
    assert!(get("planner_reorders") + get("planner_pushdowns") > 0 || !planner_on());
}

fn planner_on() -> bool {
    !matches!(
        std::env::var("GCORE_PLAN").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}
