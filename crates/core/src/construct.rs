//! The CONSTRUCT clause — §A.3 of the paper.
//!
//! A full construct is a comma-separated list of basic constructs; each
//! basic construct is either a graph name (shorthand for a graph union,
//! §3) or a pattern of object constructs. Every object construct carries
//! a grouping set Γ:
//!
//! * a **bound** variable groups by its identity (Γ = {x}) and re-uses it
//!   — the result graph *shares* elements with the input;
//! * an **unbound** variable with `GROUP e₁, e₂, …` groups by those
//!   expression values and mints one fresh element per group via the
//!   skolem function `new(x, Ω′(Γ))`;
//! * an unbound variable without `GROUP` defaults to one element per
//!   binding (Γ = all match variables).
//!
//! Edges group by the combination of their endpoint groups (Γz ⊇ Γx ∪ Γy
//! ∪ {x, y}); the skolem map is shared across the whole CONSTRUCT so a
//! variable occurring in several patterns denotes the same new elements.
//!
//! `WHEN` filters *per constructed group* (the reading required by the
//! paper's `wagnerFriend` example, where `WHEN e.score > 0` inspects the
//! aggregate just computed for each new edge); when the condition does
//! not depend on any group this degenerates to the all-or-nothing
//! semantics of the formalism. Dangling edges are impossible: an edge or
//! path whose endpoint group was filtered away is dropped with it.

use crate::binding::{BindingTable, Bound, Column, TableBuilder};
use crate::context::FreshPath;
use crate::error::{Result, RuntimeError, SemanticError};
use crate::expr::{eval_aggregate, eval_expr, Env, Rv};
use crate::query::Evaluator;
use gcore_parser::ast::{
    ConstructClause, ConstructConnection, ConstructItem, ConstructPattern, Direction, Expr, Ident,
    PropAssign, RemoveItem, SetItem,
};
use gcore_ppg::{
    Attributes, EdgeId, ElementId, IdGen, Key, Label, NodeId, PathId, PathPropertyGraph, PathShape,
    PropertySet, Value,
};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Group keys
// ---------------------------------------------------------------------

/// An `Rv` wrapper with the total order of [`Rv::total_cmp`], usable as a
/// (deterministic) BTreeMap key for grouping.
#[derive(Clone, Debug)]
struct OrdRv(Rv);

impl PartialEq for OrdRv {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdRv {}
impl PartialOrd for OrdRv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdRv {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

type GroupKey = Vec<OrdRv>;

fn bound_key(b: &Bound) -> OrdRv {
    OrdRv(Rv::from_bound(b))
}

/// Per-loop grouping-key decoder. Literal cells are decoded against one
/// snapshot of the table's value pool, fetched lazily on the first
/// literal encountered — the grouping loops then pay no pool read-lock
/// and exactly one clone per cell, instead of the per-cell lock + double
/// clone of `bound_key(&table.bound(…))`.
struct KeyDecoder<'a> {
    bindings: &'a BindingTable,
    snap: std::cell::OnceCell<Arc<Vec<Value>>>,
}

impl<'a> KeyDecoder<'a> {
    fn new(bindings: &'a BindingTable) -> Self {
        KeyDecoder {
            bindings,
            snap: std::cell::OnceCell::new(),
        }
    }

    fn key(&self, ri: usize, ci: usize) -> OrdRv {
        match self.bindings.value_code(ri, ci) {
            Some(code) => {
                let snap = self.snap.get_or_init(|| self.bindings.pool().snapshot());
                OrdRv(Rv::Value(snap[code as usize].clone()))
            }
            None => bound_key(&self.bindings.bound(ri, ci)),
        }
    }
}

// ---------------------------------------------------------------------
// Staged elements
// ---------------------------------------------------------------------

/// One constructed path group: the identity (for stored paths), the walk
/// to project, and the graph its element attributes come from.
struct PathGroup {
    id: Option<PathId>,
    walk: Option<PathShape>,
    /// Projection-only members (ALL-paths construct).
    proj_nodes: Vec<NodeId>,
    proj_edges: Vec<EdgeId>,
    graph: Arc<PathPropertyGraph>,
}

/// Accumulates everything a CONSTRUCT produces before WHEN filtering.
struct Staging {
    graph: PathPropertyGraph,
    /// Per binding row: construct-variable bindings (for WHEN).
    row_env: Vec<BTreeMap<String, Bound>>,
    /// Elements produced per pattern (for WHEN group filtering).
    pattern_elems: Vec<Vec<ElementId>>,
    /// Which rows fed each element (element → rows).
    elem_rows: BTreeMap<ElementId, Vec<usize>>,
    /// Edges / paths depend on these endpoint/member elements.
    deps: BTreeMap<ElementId, Vec<ElementId>>,
}

/// Shared skolem state: `new(x, Ω′(Γ))` must return the same identifier
/// for the same variable and group across all patterns of one CONSTRUCT.
struct Skolem {
    ids: IdGen,
    nodes: BTreeMap<(String, GroupKey), NodeId>,
    edges: BTreeMap<(String, GroupKey), EdgeId>,
    paths: BTreeMap<(String, GroupKey), PathId>,
}

impl Skolem {
    fn node(&mut self, token: &str, key: &GroupKey) -> NodeId {
        if let Some(id) = self.nodes.get(&(token.to_owned(), key.clone())) {
            return *id;
        }
        let id = self.ids.node();
        self.nodes.insert((token.to_owned(), key.clone()), id);
        id
    }

    fn edge(&mut self, token: &str, key: &GroupKey) -> EdgeId {
        if let Some(id) = self.edges.get(&(token.to_owned(), key.clone())) {
            return *id;
        }
        let id = self.ids.edge();
        self.edges.insert((token.to_owned(), key.clone()), id);
        id
    }

    fn path(&mut self, token: &str, key: &GroupKey) -> PathId {
        if let Some(id) = self.paths.get(&(token.to_owned(), key.clone())) {
            return *id;
        }
        let id = self.ids.path();
        self.paths.insert((token.to_owned(), key.clone()), id);
        id
    }
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Evaluate a CONSTRUCT clause over the bindings produced by MATCH,
/// returning the new graph (§A.3).
pub fn eval_construct(
    ev: &Evaluator<'_>,
    construct: &ConstructClause,
    bindings: &BindingTable,
    outer: Option<&Env<'_>>,
) -> Result<PathPropertyGraph> {
    let mut skolem = Skolem {
        ids: ev.ctx.catalog.borrow().ids().clone(),
        nodes: BTreeMap::new(),
        edges: BTreeMap::new(),
        paths: BTreeMap::new(),
    };
    let mut staging = Staging {
        graph: PathPropertyGraph::new(),
        row_env: vec![BTreeMap::new(); bindings.len()],
        pattern_elems: Vec::new(),
        elem_rows: BTreeMap::new(),
        deps: BTreeMap::new(),
    };
    let mut union_graphs: Vec<Arc<PathPropertyGraph>> = Vec::new();
    let mut whens: Vec<(usize, Expr)> = Vec::new();
    let mut anon = 0usize;

    // A variable's explicit GROUP applies to *every* occurrence of that
    // variable across the CONSTRUCT ("unbound variables … occur multiple
    // times in the construct patterns, in order to ensure that the same
    // identities will be used").
    let group_overrides = collect_group_overrides(construct)?;

    for item in &construct.items {
        match item {
            ConstructItem::GraphName(name) => {
                union_graphs.push(ev.ctx.graph(name)?);
            }
            ConstructItem::Pattern(pat) => {
                let idx = staging.pattern_elems.len();
                staging.pattern_elems.push(Vec::new());
                stage_pattern(
                    ev,
                    pat,
                    bindings,
                    outer,
                    &mut skolem,
                    &mut staging,
                    &mut anon,
                    &group_overrides,
                )?;
                if let Some(w) = &pat.when {
                    whens.push((idx, w.clone()));
                }
            }
        }
    }

    // WHEN filtering: a group survives iff the condition is truthy for at
    // least one of its feeding rows (evaluated with the construct
    // variables bound against the staged graph).
    let mut dead: Vec<ElementId> = Vec::new();
    if !whens.is_empty() {
        let staged = Arc::new(staging.graph.clone());
        let ext = extended_table(bindings, &staging.row_env, &staged);
        for (pidx, cond) in &whens {
            for elem in &staging.pattern_elems[*pidx] {
                let rows = staging.elem_rows.get(elem).cloned().unwrap_or_default();
                let mut alive = false;
                for &ri in &rows {
                    let mut env = Env::new(&ext, ri);
                    env.parent = outer;
                    let v = eval_when(ev, &ext, &rows, ri, cond, outer)
                        .or_else(|_| eval_expr(ev.ctx, ev, &env, cond))?;
                    if v.truthy() {
                        alive = true;
                        break;
                    }
                }
                if !alive {
                    dead.push(*elem);
                }
            }
        }
    }

    let result = if dead.is_empty() {
        staging.graph
    } else {
        rebuild_without(&staging, &dead)
    };

    // Union in the named graphs (§3 shorthand for `… UNION social_graph`).
    let mut out = result;
    for g in union_graphs {
        out = gcore_ppg::ops::union(&out, &g);
    }
    Ok(out)
}

/// Gather the explicit GROUP clause of every named construct variable;
/// conflicting GROUP clauses for one variable are rejected.
fn collect_group_overrides(construct: &ConstructClause) -> Result<BTreeMap<String, Vec<Expr>>> {
    let mut map: BTreeMap<String, Vec<Expr>> = BTreeMap::new();
    let mut add = |var: &Option<Ident>, group: &Option<Vec<Expr>>| -> Result<()> {
        let (Some(v), Some(g)) = (var, group) else {
            return Ok(());
        };
        if let Some(prev) = map.get(v.as_str()) {
            if prev != g {
                return Err(SemanticError::GroupConflict(v.text.clone()).into());
            }
        } else {
            map.insert(v.text.clone(), g.clone());
        }
        Ok(())
    };
    for item in &construct.items {
        let ConstructItem::Pattern(pat) = item else {
            continue;
        };
        add(&pat.start.var, &pat.start.group)?;
        for step in &pat.steps {
            add(&step.node.var, &step.node.group)?;
            if let ConstructConnection::Edge(e) = &step.connection {
                add(&e.var, &e.group)?;
            }
        }
    }
    Ok(map)
}

/// Evaluate a WHEN condition that may contain aggregates over the group.
fn eval_when(
    ev: &Evaluator<'_>,
    table: &BindingTable,
    group_rows: &[usize],
    row: usize,
    cond: &Expr,
    outer: Option<&Env<'_>>,
) -> Result<Rv> {
    if !cond.contains_aggregate() {
        let mut env = Env::new(table, row);
        env.parent = outer;
        return eval_expr(ev.ctx, ev, &env, cond);
    }
    let folded = fold_aggregates(ev, table, group_rows, &[], cond, outer)?;
    let mut env = Env::new(table, row);
    env.parent = outer;
    eval_expr(ev.ctx, ev, &env, &folded)
}

/// The binding table extended with one column per construct variable,
/// resolving against the staged graph (so `e.score` sees the freshly
/// computed property).
fn extended_table(
    bindings: &BindingTable,
    row_env: &[BTreeMap<String, Bound>],
    staged: &Arc<PathPropertyGraph>,
) -> BindingTable {
    let mut vars: Vec<String> = Vec::new();
    for m in row_env {
        for v in m.keys() {
            if !vars.contains(v) && bindings.column_index(v).is_none() {
                vars.push(v.clone());
            }
        }
    }
    let mut columns: Vec<Column> = bindings.columns().to_vec();
    for v in &vars {
        columns.push(Column {
            var: v.clone(),
            graph: staged.clone(),
        });
    }
    // NOTE: finished raw (no normalization) on purpose — row order must
    // stay aligned with `bindings` for group indexes.
    let mut b = TableBuilder::with_pool(columns, bindings.pool().clone());
    let mut extra: Vec<Bound> = Vec::with_capacity(vars.len());
    for (ri, env) in row_env.iter().enumerate().take(bindings.len()) {
        extra.clear();
        for v in &vars {
            extra.push(env.get(v).cloned().unwrap_or(Bound::Missing));
        }
        b.push_extended(bindings, ri, &extra);
    }
    b.finish_raw()
}

/// Rebuild the staged graph without the dead elements (and without
/// anything that depends on them).
fn rebuild_without(staging: &Staging, dead: &[ElementId]) -> PathPropertyGraph {
    let mut killed: Vec<ElementId> = dead.to_vec();
    // Transitively kill dependents (edges on dead nodes, paths on dead
    // edges/nodes).
    loop {
        let mut grew = false;
        for (elem, deps) in &staging.deps {
            if killed.contains(elem) {
                continue;
            }
            if deps.iter().any(|d| killed.contains(d)) {
                killed.push(*elem);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let g = &staging.graph;
    let mut out = PathPropertyGraph::new();
    for id in g.node_ids_sorted() {
        if !killed.contains(&ElementId::Node(id)) {
            out.add_node(id, g.node(id).expect("staged node").attrs.clone());
        }
    }
    for id in g.edge_ids_sorted() {
        if killed.contains(&ElementId::Edge(id)) {
            continue;
        }
        let e = g.edge(id).expect("staged edge");
        if out.contains_node(e.src) && out.contains_node(e.dst) {
            out.add_edge(id, e.src, e.dst, e.attrs.clone())
                .expect("endpoints staged");
        }
    }
    for id in g.path_ids_sorted() {
        if killed.contains(&ElementId::Path(id)) {
            continue;
        }
        let p = g.path(id).expect("staged path");
        let ok = p.shape.nodes().iter().all(|n| out.contains_node(*n))
            && p.shape.edges().iter().all(|e| out.contains_edge(*e));
        if ok {
            out.add_path(id, p.shape.clone(), p.attrs.clone())
                .expect("members staged");
        }
    }
    out
}

// ---------------------------------------------------------------------
// Pattern staging
// ---------------------------------------------------------------------

struct NodeSpec<'a> {
    token: String,
    named: Option<&'a str>,
    copy_of: Option<&'a str>,
    group: Option<&'a [Expr]>,
    labels: &'a [String],
    assigns: Vec<&'a PropAssign>,
    set_labels: Vec<&'a str>,
    set_copies: Vec<&'a str>,
    removes_prop: Vec<&'a str>,
    removes_label: Vec<&'a str>,
}

#[allow(clippy::too_many_arguments)]
fn stage_pattern<'a>(
    ev: &Evaluator<'_>,
    pat: &'a ConstructPattern,
    bindings: &BindingTable,
    outer: Option<&Env<'_>>,
    skolem: &mut Skolem,
    staging: &mut Staging,
    anon: &mut usize,
    overrides: &'a BTreeMap<String, Vec<Expr>>,
) -> Result<()> {
    // ---- collect the node constructs of the chain -------------------
    fn fresh_token(anon: &mut usize, kind: &str) -> String {
        let t = format!("#c{kind}{anon}");
        *anon += 1;
        t
    }

    fn mk_node_spec<'a>(
        n: &'a gcore_parser::ast::ConstructNode,
        token: String,
        overrides: &'a BTreeMap<String, Vec<Expr>>,
    ) -> NodeSpec<'a> {
        let group = n.group.as_deref().or_else(|| {
            n.var
                .as_deref()
                .and_then(|v| overrides.get(v))
                .map(Vec::as_slice)
        });
        NodeSpec {
            token,
            named: n.var.as_deref(),
            copy_of: n.copy_of.as_deref(),
            group,
            labels: &n.labels,
            assigns: n.assigns.iter().collect(),
            set_labels: Vec::new(),
            set_copies: Vec::new(),
            removes_prop: Vec::new(),
            removes_label: Vec::new(),
        }
    }

    let mut node_specs: Vec<NodeSpec<'_>> = Vec::new();
    let start_token = pat
        .start
        .var
        .as_ref()
        .map(|v| v.text.clone())
        .unwrap_or_else(|| fresh_token(anon, "n"));
    node_specs.push(mk_node_spec(&pat.start, start_token, overrides));
    for step in &pat.steps {
        let t = step
            .node
            .var
            .as_ref()
            .map(|v| v.text.clone())
            .unwrap_or_else(|| fresh_token(anon, "n"));
        node_specs.push(mk_node_spec(&step.node, t, overrides));
    }

    // ---- fold trailing SET / REMOVE into the element specs ----------
    for set in &pat.sets {
        let var = match set {
            SetItem::Prop { var, .. } | SetItem::Label { var, .. } | SetItem::Copy { var, .. } => {
                var.as_str()
            }
        };
        let mut found = false;
        for spec in node_specs.iter_mut().filter(|s| s.named == Some(var)) {
            found = true;
            match set {
                SetItem::Prop { .. } => {} // handled via assigns below
                SetItem::Label { label, .. } => spec.set_labels.push(label),
                SetItem::Copy { from, .. } => spec.set_copies.push(from),
            }
        }
        // Connection variables are handled during connection staging.
        let conn_has = pat.steps.iter().any(|s| match &s.connection {
            ConstructConnection::Edge(e) => e.var.as_deref() == Some(var),
            ConstructConnection::Path(p) => p.var == var,
        });
        if !found && !conn_has {
            return Err(SemanticError::UnknownSetTarget(var.to_owned()).into());
        }
    }
    for rem in &pat.removes {
        let var = match rem {
            RemoveItem::Prop { var, .. } | RemoveItem::Label { var, .. } => var.as_str(),
        };
        let mut found = false;
        for spec in node_specs.iter_mut().filter(|s| s.named == Some(var)) {
            found = true;
            match rem {
                RemoveItem::Prop { key, .. } => spec.removes_prop.push(key),
                RemoveItem::Label { label, .. } => spec.removes_label.push(label),
            }
        }
        let conn_has = pat.steps.iter().any(|s| match &s.connection {
            ConstructConnection::Edge(e) => e.var.as_deref() == Some(var),
            ConstructConnection::Path(p) => p.var == var,
        });
        if !found && !conn_has {
            return Err(SemanticError::UnknownSetTarget(var.to_owned()).into());
        }
    }

    // SET x.k := v on nodes becomes an extra assign.
    let set_prop_assigns: Vec<(String, PropAssign)> = pat
        .sets
        .iter()
        .filter_map(|s| match s {
            SetItem::Prop { var, key, value } => Some((
                var.text.clone(),
                PropAssign {
                    key: key.clone().into(),
                    value: value.clone(),
                },
            )),
            _ => None,
        })
        .collect();

    // ---- stage nodes -------------------------------------------------
    // node_ids[i][row] = the node this row's group produced (None = skip).
    let mut node_ids: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(node_specs.len());
    let mut node_group_cols: Vec<Vec<usize>> = Vec::with_capacity(node_specs.len());
    for spec in &node_specs {
        let extra: Vec<&PropAssign> = set_prop_assigns
            .iter()
            .filter(|(v, _)| spec.named == Some(v.as_str()))
            .map(|(_, a)| a)
            .collect();
        let (ids, cols) = stage_node(ev, spec, &extra, bindings, outer, skolem, staging)?;
        node_ids.push(ids);
        node_group_cols.push(cols);
    }

    // ---- stage connections --------------------------------------------
    for (i, step) in pat.steps.iter().enumerate() {
        match &step.connection {
            ConstructConnection::Edge(e) => {
                let token = e
                    .var
                    .as_ref()
                    .map(|v| v.text.clone())
                    .unwrap_or_else(|| fresh_token(anon, "e"));
                let extra: Vec<&PropAssign> = set_prop_assigns
                    .iter()
                    .filter(|(v, _)| e.var.as_deref() == Some(v.as_str()))
                    .map(|(_, a)| a)
                    .collect();
                let set_labels: Vec<&str> = pat
                    .sets
                    .iter()
                    .filter_map(|s| match s {
                        SetItem::Label { var, label } if e.var.as_deref() == Some(var.as_str()) => {
                            Some(label.as_str())
                        }
                        _ => None,
                    })
                    .collect();
                let set_copies: Vec<&str> = pat
                    .sets
                    .iter()
                    .filter_map(|s| match s {
                        SetItem::Copy { var, from } if e.var.as_deref() == Some(var.as_str()) => {
                            Some(from.as_str())
                        }
                        _ => None,
                    })
                    .collect();
                let removes_prop: Vec<&str> = pat
                    .removes
                    .iter()
                    .filter_map(|r| match r {
                        RemoveItem::Prop { var, key } if e.var.as_deref() == Some(var.as_str()) => {
                            Some(key.as_str())
                        }
                        _ => None,
                    })
                    .collect();
                let removes_label: Vec<&str> = pat
                    .removes
                    .iter()
                    .filter_map(|r| match r {
                        RemoveItem::Label { var, label }
                            if e.var.as_deref() == Some(var.as_str()) =>
                        {
                            Some(label.as_str())
                        }
                        _ => None,
                    })
                    .collect();
                stage_edge(
                    ev,
                    e,
                    &token,
                    &extra,
                    &set_labels,
                    &set_copies,
                    &removes_prop,
                    &removes_label,
                    (&node_ids[i], &node_group_cols[i]),
                    (&node_ids[i + 1], &node_group_cols[i + 1]),
                    bindings,
                    outer,
                    skolem,
                    staging,
                )?;
            }
            ConstructConnection::Path(p) => {
                let extra: Vec<&PropAssign> = set_prop_assigns
                    .iter()
                    .filter(|(v, _)| p.var == *v)
                    .map(|(_, a)| a)
                    .collect();
                stage_path(ev, p, &extra, bindings, outer, skolem, staging)?;
            }
        }
    }
    Ok(())
}

/// Result of [`group_rows_for`]: the groups (key → contributing row
/// indexes), the binding-table columns defining the key, and whether
/// the variable was bound by MATCH.
type Grouping = (BTreeMap<GroupKey, Vec<usize>>, Vec<usize>, bool);

/// Grouping key + group columns for one object construct occurrence.
fn group_rows_for(
    ev: &Evaluator<'_>,
    var: Option<&str>,
    group: Option<&[Expr]>,
    bindings: &BindingTable,
    outer: Option<&Env<'_>>,
) -> Result<Grouping> {
    let bound_col = var.and_then(|v| bindings.column_index(v));
    if let Some(ci) = bound_col {
        if group.is_some() {
            return Err(SemanticError::GroupOnBoundVariable(var.unwrap_or("?").to_owned()).into());
        }
        // Γ = {x}: group by identity.
        let keys = KeyDecoder::new(bindings);
        let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
        for ri in 0..bindings.len() {
            if bindings.is_missing_at(ri, ci) {
                continue; // Ω′(x) undefined ⇒ G∅ for this row
            }
            groups.entry(vec![keys.key(ri, ci)]).or_default().push(ri);
        }
        return Ok((groups, vec![ci], true));
    }
    match group {
        Some(exprs) => {
            let mut cols: Vec<usize> = Vec::new();
            for e in exprs {
                collect_var_cols(e, bindings, &mut cols);
            }
            let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
            for ri in 0..bindings.len() {
                let mut env = Env::new(bindings, ri);
                env.parent = outer;
                let mut key = Vec::with_capacity(exprs.len());
                let mut defined = true;
                for e in exprs {
                    let v = eval_expr(ev.ctx, ev, &env, e)?;
                    if matches!(v, Rv::Null) {
                        defined = false;
                        break;
                    }
                    key.push(OrdRv(v));
                }
                if defined {
                    groups.entry(key).or_default().push(ri);
                }
            }
            Ok((groups, cols, false))
        }
        None => {
            // Default: one element per binding (Γ = all variables).
            let width = bindings.columns().len();
            let keys = KeyDecoder::new(bindings);
            let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
            for ri in 0..bindings.len() {
                let key: GroupKey = (0..width).map(|ci| keys.key(ri, ci)).collect();
                groups.entry(key).or_default().push(ri);
            }
            let cols = (0..width).collect();
            Ok((groups, cols, false))
        }
    }
}

fn collect_var_cols(e: &Expr, bindings: &BindingTable, out: &mut Vec<usize>) {
    match e {
        Expr::Var(v) => {
            if let Some(i) = bindings.column_index(v) {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
        }
        Expr::Prop(b, _) | Expr::LabelTest(b, _) | Expr::Unary(_, b) => {
            collect_var_cols(b, bindings, out)
        }
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            collect_var_cols(a, bindings, out);
            collect_var_cols(b, bindings, out);
        }
        Expr::Func(_, args) => {
            for a in args {
                collect_var_cols(a, bindings, out);
            }
        }
        _ => {}
    }
}

/// Stage one node construct; returns per-row node assignment and the
/// grouping columns.
fn stage_node(
    ev: &Evaluator<'_>,
    spec: &NodeSpec<'_>,
    extra_assigns: &[&PropAssign],
    bindings: &BindingTable,
    outer: Option<&Env<'_>>,
    skolem: &mut Skolem,
    staging: &mut Staging,
) -> Result<(Vec<Option<NodeId>>, Vec<usize>)> {
    let (groups, group_cols, is_bound) =
        group_rows_for(ev, spec.named, spec.group, bindings, outer)?;
    let mut per_row: Vec<Option<NodeId>> = vec![None; bindings.len().max(1)];
    if bindings.len() > per_row.len() {
        per_row.resize(bindings.len(), None);
    }

    for (key, rows) in &groups {
        let id = if is_bound {
            match bindings.bound(rows[0], group_cols[0]) {
                Bound::Node(n) => n,
                other => {
                    return Err(SemanticError::SortMismatch {
                        var: spec.named.unwrap_or("?").to_owned(),
                        expected: "node".into(),
                        found: format!("{other:?}"),
                    }
                    .into())
                }
            }
        } else {
            skolem.node(&spec.token, key)
        };

        // Base attributes: identity carry-over for bound vars, copy
        // syntax for `(=n)`.
        let mut attrs = Attributes::new();
        if is_bound {
            let ci = group_cols[0];
            let col = &bindings.columns()[ci];
            if let Some(a) = col.graph.attributes(ElementId::Node(id)) {
                attrs = a.clone();
            }
        }
        if let Some(cv) = spec.copy_of {
            union_copied_attrs(&mut attrs, cv, bindings, rows)?;
        }
        for cv in &spec.set_copies {
            union_copied_attrs(&mut attrs, cv, bindings, rows)?;
        }
        for l in spec.labels {
            attrs.labels.insert(Label::new(l));
        }
        for l in &spec.set_labels {
            attrs.labels.insert(Label::new(l));
        }
        let assigns = spec
            .assigns
            .iter()
            .copied()
            .chain(extra_assigns.iter().copied());
        for a in assigns {
            let vs = eval_assign(ev, bindings, rows, &group_cols, &a.value, outer)?;
            let merged = attrs.prop(Key::new(&a.key)).union(&vs);
            attrs.set_prop(Key::new(&a.key), merged);
        }
        for l in &spec.removes_label {
            attrs.labels.remove(Label::new(l));
        }
        for k in &spec.removes_prop {
            attrs.set_prop(Key::new(k), PropertySet::empty());
        }

        staging.graph.add_node(id, attrs);
        let elem = ElementId::Node(id);
        record_elem(staging, elem, rows);
        for &ri in rows {
            per_row[ri] = Some(id);
            staging.row_env[ri].insert(spec.token.clone(), Bound::Node(id));
        }
    }
    Ok((per_row, group_cols))
}

fn record_elem(staging: &mut Staging, elem: ElementId, rows: &[usize]) {
    if let Some(last) = staging.pattern_elems.last_mut() {
        if !last.contains(&elem) {
            last.push(elem);
        }
    }
    staging
        .elem_rows
        .entry(elem)
        .or_default()
        .extend(rows.iter().copied());
}

/// Union the labels/properties of a copied element (`(=n)` / `SET x = y`)
/// over the group rows into `attrs`.
fn union_copied_attrs(
    attrs: &mut Attributes,
    var: &str,
    bindings: &BindingTable,
    rows: &[usize],
) -> Result<()> {
    let Some(ci) = bindings.column_index(var) else {
        return Err(SemanticError::UnboundVariable(var.to_owned()).into());
    };
    let col = &bindings.columns()[ci];
    for &ri in rows {
        let elem: Option<ElementId> = match bindings.bound(ri, ci) {
            Bound::Node(n) => Some(n.into()),
            Bound::Edge(e) => Some(e.into()),
            Bound::Path(p) => Some(p.into()),
            _ => None,
        };
        if let Some(e) = elem {
            if let Some(a) = col.graph.attributes(e) {
                attrs.union_in_place(a);
            }
        }
    }
    Ok(())
}

/// Evaluate one `{k := expr}` assignment over a group: aggregates fold
/// over the group's rows; plain expressions evaluate per row and union
/// their values (footnote 2 of the paper: constructing a company per
/// Frank binding would give `name = {"CWI","MIT"}`).
fn eval_assign(
    ev: &Evaluator<'_>,
    bindings: &BindingTable,
    rows: &[usize],
    group_cols: &[usize],
    expr: &Expr,
    outer: Option<&Env<'_>>,
) -> Result<PropertySet> {
    if expr.contains_aggregate() {
        let rv = eval_group_aggregate(ev, bindings, rows, group_cols, expr, outer)?;
        return rv_to_propset(rv);
    }
    let mut out = PropertySet::empty();
    for &ri in rows {
        let mut env = Env::new(bindings, ri);
        env.parent = outer;
        let v = eval_expr(ev.ctx, ev, &env, expr)?;
        out = out.union(&rv_to_propset(v)?);
    }
    Ok(out)
}

fn rv_to_propset(rv: Rv) -> Result<PropertySet> {
    match rv {
        Rv::Null => Ok(PropertySet::empty()),
        Rv::Value(v) => Ok(PropertySet::single(v)),
        Rv::Set(s) => Ok(s),
        Rv::List(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for i in items {
                match i.as_scalar() {
                    Some(v) => vals.push(v),
                    None => {
                        return Err(RuntimeError::Type(
                            "cannot store a non-scalar list element as a property".into(),
                        )
                        .into())
                    }
                }
            }
            Ok(PropertySet::from_values(vals))
        }
        other => {
            Err(RuntimeError::Type(format!("cannot store {other:?} as a property value")).into())
        }
    }
}

/// Evaluate an aggregate-bearing expression over one group (shared with
/// SELECT's projection evaluation).
pub(crate) fn eval_group_aggregate(
    ev: &Evaluator<'_>,
    bindings: &BindingTable,
    rows: &[usize],
    group_cols: &[usize],
    expr: &Expr,
    outer: Option<&Env<'_>>,
) -> Result<Rv> {
    // Bare aggregate: evaluate directly (COLLECT keeps its list shape).
    if let Expr::Aggregate { op, distinct, arg } = expr {
        return eval_aggregate(
            ev.ctx,
            ev,
            bindings,
            rows,
            group_cols,
            *op,
            *distinct,
            arg.as_deref(),
            outer,
        );
    }
    let folded = fold_aggregates(ev, bindings, rows, group_cols, expr, outer)?;
    let repr = rows
        .first()
        .copied()
        .unwrap_or(0)
        .min(bindings.len().saturating_sub(1));
    let unit = BindingTable::unit();
    let (tbl, row): (&BindingTable, usize) = if bindings.is_empty() {
        (&unit, 0)
    } else {
        (bindings, repr)
    };
    let mut env = Env::new(tbl, row);
    env.parent = outer;
    eval_expr(ev.ctx, ev, &env, &folded)
}

/// Replace every aggregate subexpression with the literal it evaluates
/// to for this group. Only scalar aggregate results can be embedded.
fn fold_aggregates(
    ev: &Evaluator<'_>,
    bindings: &BindingTable,
    rows: &[usize],
    group_cols: &[usize],
    expr: &Expr,
    outer: Option<&Env<'_>>,
) -> Result<Expr> {
    if !expr.contains_aggregate() {
        return Ok(expr.clone());
    }
    Ok(match expr {
        Expr::Aggregate { op, distinct, arg } => {
            let rv = eval_aggregate(
                ev.ctx,
                ev,
                bindings,
                rows,
                group_cols,
                *op,
                *distinct,
                arg.as_deref(),
                outer,
            )?;
            rv_to_literal(rv)?
        }
        Expr::Unary(op, e) => Expr::Unary(
            *op,
            Box::new(fold_aggregates(ev, bindings, rows, group_cols, e, outer)?),
        ),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(fold_aggregates(ev, bindings, rows, group_cols, a, outer)?),
            Box::new(fold_aggregates(ev, bindings, rows, group_cols, b, outer)?),
        ),
        Expr::Func(f, args) => Expr::Func(
            *f,
            args.iter()
                .map(|a| fold_aggregates(ev, bindings, rows, group_cols, a, outer))
                .collect::<Result<Vec<_>>>()?,
        ),
        Expr::Prop(e, k) => Expr::Prop(
            Box::new(fold_aggregates(ev, bindings, rows, group_cols, e, outer)?),
            k.clone(),
        ),
        Expr::Index(a, b) => Expr::Index(
            Box::new(fold_aggregates(ev, bindings, rows, group_cols, a, outer)?),
            Box::new(fold_aggregates(ev, bindings, rows, group_cols, b, outer)?),
        ),
        Expr::Case {
            operand,
            whens,
            else_,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(fold_aggregates(
                    ev, bindings, rows, group_cols, o, outer,
                )?)),
                None => None,
            },
            whens: whens
                .iter()
                .map(|(c, r)| {
                    Ok((
                        fold_aggregates(ev, bindings, rows, group_cols, c, outer)?,
                        fold_aggregates(ev, bindings, rows, group_cols, r, outer)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
            else_: match else_ {
                Some(e) => Some(Box::new(fold_aggregates(
                    ev, bindings, rows, group_cols, e, outer,
                )?)),
                None => None,
            },
        },
        other => other.clone(),
    })
}

fn rv_to_literal(rv: Rv) -> Result<Expr> {
    Ok(match rv.as_scalar() {
        Some(Value::Int(i)) => Expr::Int(i),
        Some(Value::Float(f)) => Expr::Float(f),
        Some(Value::Bool(b)) => Expr::Bool(b),
        Some(Value::Str(s)) => Expr::Str(s.to_string()),
        Some(Value::Date(d)) => Expr::DateLit(d.to_string()),
        Some(Value::Null) | None => match rv {
            Rv::Null => Expr::Null,
            other => {
                return Err(RuntimeError::Type(format!(
                    "aggregate inside a composite expression must be scalar, got {other:?}"
                ))
                .into())
            }
        },
    })
}

// ---------------------------------------------------------------------
// Edge staging
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn stage_edge(
    ev: &Evaluator<'_>,
    e: &gcore_parser::ast::ConstructEdge,
    token: &str,
    extra_assigns: &[&PropAssign],
    set_labels: &[&str],
    set_copies: &[&str],
    removes_prop: &[&str],
    removes_label: &[&str],
    left: (&[Option<NodeId>], &[usize]),
    right: (&[Option<NodeId>], &[usize]),
    bindings: &BindingTable,
    outer: Option<&Env<'_>>,
    skolem: &mut Skolem,
    staging: &mut Staging,
) -> Result<()> {
    // Normalize direction: `src` is where the arrow leaves from.
    let (src_ids, src_cols, dst_ids, dst_cols) = match e.direction {
        Direction::Out | Direction::Undirected => (left.0, left.1, right.0, right.1),
        Direction::In => (right.0, right.1, left.0, left.1),
    };

    let bound_col = e.var.as_deref().and_then(|v| bindings.column_index(v));
    if bound_col.is_some() && e.group.is_some() {
        return Err(SemanticError::GroupOnBoundVariable(
            e.var.as_deref().unwrap_or_default().to_owned(),
        )
        .into());
    }

    // Group columns: endpoints' group columns + our own identity/group.
    let mut group_cols: Vec<usize> = src_cols.to_vec();
    for &c in dst_cols {
        if !group_cols.contains(&c) {
            group_cols.push(c);
        }
    }
    if let Some(ci) = bound_col {
        if !group_cols.contains(&ci) {
            group_cols.push(ci);
        }
    }
    if let Some(exprs) = &e.group {
        for ge in exprs {
            collect_var_cols(ge, bindings, &mut group_cols);
        }
    }

    // Group rows: by (src, dst, identity-or-GROUP).
    let keys = KeyDecoder::new(bindings);
    let mut groups: BTreeMap<GroupKey, (NodeId, NodeId, Vec<usize>)> = BTreeMap::new();
    for ri in 0..bindings.len() {
        let (Some(src), Some(dst)) = (src_ids[ri], dst_ids[ri]) else {
            continue; // dangling prevention
        };
        let mut key: GroupKey = vec![OrdRv(Rv::Node(src)), OrdRv(Rv::Node(dst))];
        if let Some(ci) = bound_col {
            if bindings.is_missing_at(ri, ci) {
                continue;
            }
            key.push(keys.key(ri, ci));
        }
        if let Some(exprs) = &e.group {
            let mut env = Env::new(bindings, ri);
            env.parent = outer;
            for gexpr in exprs {
                key.push(OrdRv(eval_expr(ev.ctx, ev, &env, gexpr)?));
            }
        }
        let entry = groups.entry(key).or_insert_with(|| (src, dst, Vec::new()));
        entry.2.push(ri);
    }

    for (key, (src, dst, rows)) in &groups {
        let (id, mut attrs) = match bound_col {
            Some(ci) => {
                let b = bindings.bound(rows[0], ci);
                let Bound::Edge(eid) = b else {
                    return Err(SemanticError::SortMismatch {
                        var: e.var.as_deref().unwrap_or_default().to_owned(),
                        expected: "edge".into(),
                        found: format!("{b:?}"),
                    }
                    .into());
                };
                // Identity rule (§3): a bound edge keeps its endpoints.
                let col = &bindings.columns()[ci];
                let Some((osrc, odst)) = col.graph.endpoints(eid) else {
                    return Err(SemanticError::EdgeEndpointsUnbound(
                        e.var.as_deref().unwrap_or_default().to_owned(),
                    )
                    .into());
                };
                if (osrc, odst) != (*src, *dst) {
                    return Err(SemanticError::EdgeEndpointsChanged(
                        e.var.as_deref().unwrap_or_default().to_owned(),
                    )
                    .into());
                }
                let attrs = col
                    .graph
                    .attributes(ElementId::Edge(eid))
                    .cloned()
                    .unwrap_or_default();
                (eid, attrs)
            }
            None => (skolem.edge(token, key), Attributes::new()),
        };

        if let Some(cv) = &e.copy_of {
            union_copied_attrs(&mut attrs, cv, bindings, rows)?;
        }
        for cv in set_copies {
            union_copied_attrs(&mut attrs, cv, bindings, rows)?;
        }
        for l in &e.labels {
            attrs.labels.insert(Label::new(l));
        }
        for l in set_labels {
            attrs.labels.insert(Label::new(l));
        }
        for a in e.assigns.iter().chain(extra_assigns.iter().copied()) {
            let vs = eval_assign(ev, bindings, rows, &group_cols, &a.value, outer)?;
            let merged = attrs.prop(Key::new(&a.key)).union(&vs);
            attrs.set_prop(Key::new(&a.key), merged);
        }
        for l in removes_label {
            attrs.labels.remove(Label::new(l));
        }
        for k in removes_prop {
            attrs.set_prop(Key::new(k), PropertySet::empty());
        }

        // Endpoints are guaranteed staged by the node pass.
        staging.graph.add_edge(id, *src, *dst, attrs)?;
        let elem = ElementId::Edge(id);
        record_elem(staging, elem, rows);
        staging
            .deps
            .entry(elem)
            .or_default()
            .extend([ElementId::Node(*src), ElementId::Node(*dst)]);
        for &ri in rows {
            staging.row_env[ri].insert(token.to_owned(), Bound::Edge(id));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Path staging
// ---------------------------------------------------------------------

fn stage_path(
    ev: &Evaluator<'_>,
    p: &gcore_parser::ast::ConstructPath,
    extra_assigns: &[&PropAssign],
    bindings: &BindingTable,
    outer: Option<&Env<'_>>,
    skolem: &mut Skolem,
    staging: &mut Staging,
) -> Result<()> {
    let Some(ci) = bindings.column_index(&p.var) else {
        return Err(SemanticError::ConstructPathUnbound(p.var.text.clone()).into());
    };
    let col_graph = bindings.columns()[ci].graph.clone();
    let group_cols = vec![ci];

    // Group rows by path identity.
    let keys = KeyDecoder::new(bindings);
    let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
    for ri in 0..bindings.len() {
        if bindings.is_missing_at(ri, ci) {
            continue;
        }
        groups.entry(vec![keys.key(ri, ci)]).or_default().push(ri);
    }

    for (key, rows) in &groups {
        let b = bindings.bound(rows[0], ci);
        let group: PathGroup = match &b {
            Bound::Path(pid) => {
                let data = col_graph.path(*pid).ok_or_else(|| {
                    RuntimeError::Other(format!("stored path {pid} missing from its graph"))
                })?;
                PathGroup {
                    id: Some(*pid),
                    walk: Some(data.shape.clone()),
                    proj_nodes: Vec::new(),
                    proj_edges: Vec::new(),
                    graph: col_graph.clone(),
                }
            }
            Bound::FreshPath(idx) => match ev.ctx.fresh_path(*idx) {
                FreshPath::Walk { shape, graph, .. } => PathGroup {
                    id: if p.stored {
                        Some(skolem.path(&p.var, key))
                    } else {
                        None
                    },
                    walk: Some(shape),
                    proj_nodes: Vec::new(),
                    proj_edges: Vec::new(),
                    graph,
                },
                FreshPath::Projection {
                    nodes,
                    edges,
                    graph,
                    ..
                } => {
                    if p.stored {
                        return Err(SemanticError::AllPathsEscape(p.var.text.clone()).into());
                    }
                    PathGroup {
                        id: None,
                        walk: None,
                        proj_nodes: nodes,
                        proj_edges: edges,
                        graph,
                    }
                }
            },
            other => {
                return Err(SemanticError::SortMismatch {
                    var: p.var.text.clone(),
                    expected: "path".into(),
                    found: format!("{other:?}"),
                }
                .into())
            }
        };

        // Project the walk's nodes and edges (with their attributes).
        if let Some(walk) = &group.walk {
            for &n in walk.nodes() {
                let attrs = group
                    .graph
                    .attributes(ElementId::Node(n))
                    .cloned()
                    .unwrap_or_default();
                staging.graph.add_node(n, attrs);
                record_elem(staging, ElementId::Node(n), rows);
            }
            for &eid in walk.edges() {
                let Some(edata) = group.graph.edge(eid) else {
                    continue;
                };
                staging
                    .graph
                    .add_edge(eid, edata.src, edata.dst, edata.attrs.clone())?;
                record_elem(staging, ElementId::Edge(eid), rows);
            }
        }
        for &n in &group.proj_nodes {
            if group.graph.contains_node(n) {
                let attrs = group
                    .graph
                    .attributes(ElementId::Node(n))
                    .cloned()
                    .unwrap_or_default();
                staging.graph.add_node(n, attrs);
                record_elem(staging, ElementId::Node(n), rows);
            }
        }
        for &eid in &group.proj_edges {
            if let Some(edata) = group.graph.edge(eid) {
                staging.graph.add_node(
                    edata.src,
                    group
                        .graph
                        .attributes(ElementId::Node(edata.src))
                        .cloned()
                        .unwrap_or_default(),
                );
                staging.graph.add_node(
                    edata.dst,
                    group
                        .graph
                        .attributes(ElementId::Node(edata.dst))
                        .cloned()
                        .unwrap_or_default(),
                );
                staging
                    .graph
                    .add_edge(eid, edata.src, edata.dst, edata.attrs.clone())?;
                record_elem(staging, ElementId::Edge(eid), rows);
            }
        }

        // Stored path object (`@p`).
        if p.stored {
            let (Some(pid), Some(walk)) = (group.id, group.walk.as_ref()) else {
                continue;
            };
            let mut attrs = if let Bound::Path(orig) = &b {
                col_graph
                    .attributes(ElementId::Path(*orig))
                    .cloned()
                    .unwrap_or_default()
            } else {
                Attributes::new()
            };
            for l in &p.labels {
                attrs.labels.insert(Label::new(l));
            }
            for a in p.assigns.iter().chain(extra_assigns.iter().copied()) {
                let vs = eval_assign(ev, bindings, rows, &group_cols, &a.value, outer)?;
                let merged = attrs.prop(Key::new(&a.key)).union(&vs);
                attrs.set_prop(Key::new(&a.key), merged);
            }
            staging.graph.add_path(pid, walk.clone(), attrs)?;
            let elem = ElementId::Path(pid);
            record_elem(staging, elem, rows);
            let mut deps: Vec<ElementId> =
                walk.nodes().iter().map(|&n| ElementId::Node(n)).collect();
            deps.extend(walk.edges().iter().map(|&e| ElementId::Edge(e)));
            staging.deps.entry(elem).or_default().extend(deps);
            for &ri in rows {
                staging.row_env[ri].insert(p.var.text.clone(), Bound::Path(pid));
            }
        }
    }
    Ok(())
}
