//! Read-only query evaluation over a shared engine snapshot.
//!
//! A [`QueryExecutor`] is the concurrent counterpart of
//! [`Engine::run`](crate::Engine::run): it evaluates statements with
//! `&self` against one immutable [`EngineSnapshot`], so any number of
//! executors (or one executor on any number of threads) can evaluate
//! simultaneously with no locking on the evaluation path. All mutable
//! per-query state lives in a thread-local [`EvalCtx`]
//! created per statement; the snapshot itself only serves reads and the
//! (internally synchronized) per-snapshot search caches.
//!
//! Executors are *read-only* by construction: a `GRAPH VIEW name AS
//! (…)` statement evaluates to its materialized graph like any other
//! query, but nothing is registered anywhere — committing the view is
//! the engine's job ([`Engine::eval`](crate::Engine::eval) does it and
//! bumps the snapshot epoch). An executor therefore observes exactly
//! the catalog state of its snapshot's epoch, forever — the
//! snapshot-isolation property the differential tests pin down.

use crate::analyze::{parse_diagnostic, CatalogSummary};
use crate::cancel::CancelToken;
use crate::context::EvalCtx;
use crate::diag::Diagnostic;
use crate::error::{Result, SemanticError};
use crate::query::{Evaluator, QueryOutput};
use crate::snapshot::EngineSnapshot;
use gcore_parser::ast::Statement;
use gcore_parser::{parse_script, parse_statement};
use gcore_ppg::{PathPropertyGraph, Table};
use std::sync::Arc;
use std::time::Duration;

/// A `Send + Sync` evaluator of read-only queries over one frozen
/// snapshot. Cheap to clone (one `Arc` bump); see the module docs.
///
/// ```
/// use gcore::Engine;
/// use gcore_ppg::{Attributes, GraphBuilder};
///
/// let mut engine = Engine::new();
/// let mut b = GraphBuilder::new(engine.catalog().ids().clone());
/// let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
/// let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
/// b.edge(ann, bob, Attributes::labeled("knows"));
/// engine.register_graph("people", b.build());
/// engine.set_default_graph("people");
///
/// let exec = engine.executor();
/// // `&self` evaluation: share one executor across scoped threads.
/// std::thread::scope(|s| {
///     for _ in 0..2 {
///         s.spawn(|| {
///             let g = exec.query_graph("CONSTRUCT (m) MATCH (n)-[:knows]->(m)").unwrap();
///             assert_eq!(g.node_count(), 1);
///         });
///     }
/// });
/// // The executor still sees its snapshot after later engine writes.
/// assert_eq!(exec.epoch(), engine.snapshot_epoch());
/// ```
#[derive(Clone)]
pub struct QueryExecutor {
    snapshot: Arc<EngineSnapshot>,
    filter_pushdown: bool,
    planner: bool,
    parallelism: usize,
    cancel: CancelToken,
    statement_deadline: Option<Duration>,
    profiling: bool,
    metrics: crate::obs::CoreMetrics,
}

impl QueryExecutor {
    /// An executor over an existing snapshot.
    pub fn new(snapshot: Arc<EngineSnapshot>) -> Self {
        QueryExecutor {
            snapshot,
            filter_pushdown: true,
            planner: crate::context::planner_default(),
            parallelism: 1,
            cancel: CancelToken::new(),
            statement_deadline: None,
            profiling: false,
            metrics: crate::obs::CoreMetrics::standalone(),
        }
    }

    /// Enable or disable WHERE-conjunct pushdown (default: enabled;
    /// semantics-preserving, exists for ablation benchmarks only).
    pub fn set_filter_pushdown(&mut self, enabled: bool) {
        self.filter_pushdown = enabled;
    }

    /// Enable or disable the cost-based MATCH planner (default: on,
    /// unless the `GCORE_PLAN` environment variable is `off`/`0`).
    /// Semantics-preserving: plans only change evaluation order and
    /// operator strategy, never results.
    pub fn set_planner(&mut self, enabled: bool) {
        self.planner = enabled;
    }

    /// Set the worker-thread count for intra-query parallel operators
    /// (partitioned hash joins, multi-source path search). `0` and `1`
    /// both mean sequential; results are bit-identical at any setting.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// Install a cancellation token: every statement this executor
    /// evaluates polls it, and evaluation returns
    /// [`RuntimeError::Cancelled`](crate::error::RuntimeError)
    /// (code `E016`) at the next loop boundary after the token fires.
    /// Cancelling through any clone of the token is observed here.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// The executor's cancellation token; cancel through a clone of it
    /// to stop an in-flight statement from another thread.
    #[must_use]
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Set a per-statement evaluation budget: each statement gets
    /// `budget` from the moment [`eval`](QueryExecutor::eval) starts,
    /// and is cooperatively cancelled (code `E016`) once it runs over.
    /// `None` disables the deadline. Composes with
    /// [`set_cancel_token`](QueryExecutor::set_cancel_token): whichever
    /// fires first wins.
    pub fn set_statement_deadline(&mut self, budget: Option<Duration>) {
        self.statement_deadline = budget;
    }

    /// Enable or disable execution profiling (default: off). When on,
    /// [`eval`](QueryExecutor::eval) collects a
    /// [`QueryProfile`](crate::obs::QueryProfile) span tree for every
    /// statement and discards it; use
    /// [`run_profiled`](QueryExecutor::run_profiled) /
    /// [`eval_profiled`](QueryExecutor::eval_profiled) to get it back.
    /// Profiling never changes results — the differential suite pins
    /// profiling-on ≡ profiling-off over the whole corpus.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
    }

    /// Install the metric handles bumped on every statement this
    /// executor evaluates (statement/cancellation counts, planner
    /// reorders/pushdowns/misestimates). [`Engine::executor`] installs
    /// the engine's registry-backed set here.
    ///
    /// [`Engine::executor`]: crate::Engine::executor
    pub fn set_metrics(&mut self, metrics: crate::obs::CoreMetrics) {
        self.metrics = metrics;
    }

    /// Render the planner's decisions for a statement without running
    /// it: MATCH pattern order with cardinality estimates, pushed-down
    /// IN conjuncts, residual WHERE size and path strategies. The
    /// output is deterministic for a given statement and snapshot.
    pub fn explain(&self, text: &str) -> Result<String> {
        let stmt = parse_statement(text)?;
        let catalog = self.snapshot.catalog();
        let resolve = |on: Option<&gcore_parser::ast::Location>| match on {
            None => catalog.default_graph().ok(),
            Some(gcore_parser::ast::Location::Named(name)) => catalog.graph(name).ok(),
            Some(gcore_parser::ast::Location::Subquery(_)) => None,
        };
        Ok(crate::plan::explain_statement(&stmt, &resolve))
    }

    /// The snapshot this executor evaluates against.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snapshot
    }

    /// The epoch of the underlying snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Parse and evaluate one statement against the snapshot.
    pub fn run(&self, text: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(text)?;
        self.eval(&stmt)
    }

    /// Parse and evaluate a `;`-separated script, returning every
    /// statement's output in order. All statements see the same
    /// snapshot (no statement's view registration is visible to the
    /// next — use [`Engine::run_script`](crate::Engine::run_script) for
    /// that).
    pub fn run_script(&self, text: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_script(text)?;
        stmts.iter().map(|s| self.eval(s)).collect()
    }

    /// Statically analyze one statement against the snapshot's catalog
    /// without evaluating anything: every diagnostic (errors *and*
    /// warnings) is returned, ordered by source position. Parse
    /// failures come back as a single `E000` diagnostic.
    #[must_use]
    pub fn check(&self, text: &str) -> Vec<Diagnostic> {
        match parse_statement(text) {
            Err(e) => vec![parse_diagnostic(&e)],
            Ok(stmt) => {
                let summary = CatalogSummary::of(self.snapshot.catalog());
                crate::analyze::analyze_statement(&stmt, Some(&summary))
            }
        }
    }

    /// [`check`](QueryExecutor::check) for a `;`-separated script.
    /// `GRAPH VIEW` names defined by earlier statements count as known
    /// graphs for later ones.
    #[must_use]
    pub fn check_script(&self, text: &str) -> Vec<Diagnostic> {
        match parse_script(text) {
            Err(e) => vec![parse_diagnostic(&e)],
            Ok(stmts) => {
                let summary = CatalogSummary::of(self.snapshot.catalog());
                crate::analyze::analyze_script(&stmts, Some(&summary))
            }
        }
    }

    /// Run a query that must produce a graph.
    pub fn query_graph(&self, text: &str) -> Result<PathPropertyGraph> {
        match self.run(text)? {
            QueryOutput::Graph(g) => Ok(g),
            QueryOutput::Table(_) => Err(SemanticError::WrongOutputSort {
                expected: "graph",
                found: "table",
            }
            .into()),
        }
    }

    /// Run a query that must produce a table (§5 SELECT).
    pub fn query_table(&self, text: &str) -> Result<Table> {
        match self.run(text)? {
            QueryOutput::Table(t) => Ok(t),
            QueryOutput::Graph(_) => Err(SemanticError::WrongOutputSort {
                expected: "table",
                found: "graph",
            }
            .into()),
        }
    }

    /// Evaluate an already-parsed statement against the snapshot.
    ///
    /// `GRAPH VIEW` statements evaluate and return their materialized
    /// graph but register nothing (the executor is read-only).
    pub fn eval(&self, stmt: &Statement) -> Result<QueryOutput> {
        self.eval_inner(stmt, self.profiling).map(|(out, _)| out)
    }

    /// Parse and evaluate one statement with profiling forced on,
    /// returning the output together with its execution profile
    /// (`EXPLAIN ANALYZE` without the rendering).
    pub fn run_profiled(&self, text: &str) -> Result<(QueryOutput, crate::obs::QueryProfile)> {
        let stmt = parse_statement(text)?;
        self.eval_profiled(&stmt)
    }

    /// [`eval`](QueryExecutor::eval) with profiling forced on,
    /// returning the collected [`QueryProfile`](crate::obs::QueryProfile)
    /// alongside the output.
    pub fn eval_profiled(
        &self,
        stmt: &Statement,
    ) -> Result<(QueryOutput, crate::obs::QueryProfile)> {
        self.eval_inner(stmt, true)
            .map(|(out, profile)| (out, profile.expect("profiling was enabled")))
    }

    fn eval_inner(
        &self,
        stmt: &Statement,
        profiling: bool,
    ) -> Result<(QueryOutput, Option<crate::obs::QueryProfile>)> {
        // Static analysis first: sort mismatches are rejected before
        // any evaluation work (§3 "they must be of the right sort").
        crate::analyze::check_statement(stmt)?;
        let mut ctx = EvalCtx::new(self.snapshot.clone());
        ctx.filter_pushdown.set(self.filter_pushdown);
        ctx.planner.set(self.planner);
        ctx.parallelism.set(self.parallelism);
        // The per-statement budget starts now; an explicit token and a
        // deadline compose (whichever fires first cancels).
        ctx.cancel = match self.statement_deadline {
            Some(budget) => self.cancel.with_timeout(budget),
            None => self.cancel.clone(),
        };
        if profiling {
            ctx.profiler = crate::obs::Profiler::enabled();
        }
        ctx.metrics = self.metrics.clone();
        crate::obs::CoreMetrics::add(&self.metrics.statements, 1);
        let evaluator = Evaluator::new(&ctx);
        let result = evaluator.eval_statement(stmt);
        if result.as_ref().is_err_and(|e| e.is_cancelled()) {
            crate::obs::CoreMetrics::add(&self.metrics.cancellations, 1);
        }
        let output = result?;
        let profile = ctx.profiler.take();
        if let Some(p) = &profile {
            crate::obs::CoreMetrics::add(&self.metrics.planner_misestimates, p.misestimates);
        }
        Ok((output, profile))
    }
}

// The whole point of the executor: sharable across threads. A compile
// failure here means some snapshot-reachable type regained interior
// mutability that is not Sync.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryExecutor>()
};

#[cfg(test)]
mod tests {
    use crate::engine::Engine;
    use gcore_ppg::{Attributes, GraphBuilder};

    fn engine_with_people() -> Engine {
        let mut engine = Engine::new();
        let mut b = GraphBuilder::new(engine.catalog().ids().clone());
        let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
        let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
        b.edge(ann, bob, Attributes::labeled("knows"));
        engine.register_graph("people", b.build());
        engine.set_default_graph("people");
        engine
    }

    #[test]
    fn executor_matches_engine_results() {
        let mut engine = engine_with_people();
        let exec = engine.executor();
        let via_exec = exec.query_graph("CONSTRUCT (n) MATCH (n:Person)").unwrap();
        let via_engine = engine
            .query_graph("CONSTRUCT (n) MATCH (n:Person)")
            .unwrap();
        assert_eq!(via_exec, via_engine);
    }

    #[test]
    fn concurrent_queries_on_scoped_threads() {
        let mut engine = engine_with_people();
        let exec = engine.executor();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        exec.query_table("SELECT n.name AS name MATCH (n:Person)")
                            .unwrap()
                            .len()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 2);
            }
        });
    }

    #[test]
    fn graph_view_is_not_registered() {
        let mut engine = engine_with_people();
        let exec = engine.executor();
        let out = exec
            .run("GRAPH VIEW only_ann AS (CONSTRUCT (n) MATCH (n) WHERE n.name = 'Ann')")
            .unwrap();
        assert_eq!(out.into_graph().unwrap().node_count(), 1);
        // Read-only: neither this executor nor the engine saw a commit.
        assert!(exec
            .query_graph("CONSTRUCT (n) MATCH (n) ON only_ann")
            .is_err());
        assert!(!engine.catalog().has_graph("only_ann"));
    }
}
