//! Immutable engine snapshots — the read side of the engine's
//! catalog/evaluation split.
//!
//! An [`EngineSnapshot`] is a frozen copy of the catalog taken at a
//! *snapshot epoch*: every write to the [`Engine`](crate::Engine)
//! (graph/table registration, `GRAPH VIEW` commits, direct catalog
//! access) bumps the epoch and invalidates the engine's cached
//! snapshot, so each snapshot observes exactly one committed state and
//! never changes afterwards. Query evaluation — through
//! [`QueryExecutor`](crate::QueryExecutor) — only ever reads a
//! snapshot, which is what makes concurrent evaluation safe without
//! locking on the hot path: the snapshot is `Sync`, shared by `Arc`,
//! and all per-query mutable state lives in the per-thread
//! [`EvalCtx`](crate::EvalCtx).
//!
//! Freezing does two things beyond cloning the catalog:
//!
//! * **Index freeze.** Every graph's label-partitioned index is
//!   force-built ([`Catalog::freeze_indexes`]), so evaluation over a
//!   snapshot never hits the mutation-invalidated scan fallback — a
//!   snapshot is immutable, hence its indexes can never be invalidated
//!   again.
//! * **Search-result reuse.** The snapshot carries a cache of
//!   SCC-condensed reachability closures keyed by (graph identity, NFA
//!   structure): the per-source destination sets that
//!   [`PathSearcher::reachable_many`] computes by condensing the
//!   product digraph. Repeated path queries against one snapshot (the
//!   multi-user steady state) skip re-condensation entirely; the cache
//!   dies with the snapshot, so an epoch bump naturally starts fresh.

use crate::paths::PathSearcher;
use crate::regex::{Nfa, NfaKey};
use gcore_ppg::hash::FxHashMap;
use gcore_ppg::{Catalog, NodeId, PathPropertyGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A frozen catalog state at one snapshot epoch, shared read-only by
/// every executor and evaluation context derived from it.
#[derive(Debug)]
pub struct EngineSnapshot {
    catalog: Catalog,
    epoch: u64,
    scc_cache: SccCache,
}

impl EngineSnapshot {
    /// Freeze `catalog` at `epoch`: force-build every graph's label
    /// index and attach an empty condensation cache.
    pub fn freeze(mut catalog: Catalog, epoch: u64) -> Self {
        catalog.freeze_indexes();
        debug_assert!(catalog.all_indexed(), "snapshot froze an unindexed graph");
        EngineSnapshot {
            catalog,
            epoch,
            scc_cache: SccCache::default(),
        }
    }

    /// The frozen catalog. Immutable: the snapshot hands out only
    /// shared references, and graphs/tables inside are `Arc`-shared.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The epoch this snapshot was taken at. Strictly increases with
    /// every committed write to the owning engine.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(hits, misses)` of the condensation cache, counted per source
    /// node served. Snapshot-local by construction: a fresh snapshot
    /// (after any epoch bump) starts at `(0, 0)`.
    pub fn scc_cache_stats(&self) -> (u64, u64) {
        self.scc_cache.stats()
    }

    /// Reachability closure of `sources` under `nfa` on `graph`, served
    /// from the per-snapshot condensation cache where possible.
    ///
    /// Sources whose destination set was computed by an earlier query
    /// with a structurally identical NFA on the identical graph (`Arc`
    /// pointer equality, revalidated against the pinned graph handle)
    /// are cache hits; the rest run one shared
    /// [`PathSearcher::reachable_many`] condensation and are merged
    /// into the cache for the snapshot's remaining lifetime.
    ///
    /// Correctness does not depend on the cache: entries are immutable
    /// per-source answers of `reachable_many`, which equals
    /// [`PathSearcher::reachable`] per source. Callers must not use
    /// this for view-bearing NFAs (view segment relations are
    /// query-local); the matcher guards that.
    pub fn reachable_many_cached(
        &self,
        graph: &Arc<PathPropertyGraph>,
        nfa: &Nfa,
        searcher: &PathSearcher<'_>,
        sources: &[NodeId],
    ) -> FxHashMap<NodeId, Arc<Vec<NodeId>>> {
        self.scc_cache.lookup(graph, nfa, searcher, sources)
    }
}

/// Cache key: graph address paired with the NFA's structural identity.
/// The address alone could be reused after a graph is dropped (ABA);
/// every entry therefore pins its graph `Arc` and lookups revalidate
/// with pointer equality against the pinned handle.
type CacheKey = (usize, NfaKey);

struct CacheEntry {
    /// The graph the closures were computed on, pinned so its address
    /// can never be recycled while the entry lives.
    graph: Arc<PathPropertyGraph>,
    /// Per-source destination sets, exactly `reachable(src)` each,
    /// `Arc`-shared with the condensation that produced them.
    reach: FxHashMap<NodeId, Arc<Vec<NodeId>>>,
}

/// The per-snapshot cache of SCC-condensed reachability closures.
#[derive(Default)]
struct SccCache {
    entries: Mutex<FxHashMap<CacheKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for SccCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, m) = self.stats();
        f.debug_struct("SccCache")
            .field("hits", &h)
            .field("misses", &m)
            .finish_non_exhaustive()
    }
}

impl SccCache {
    fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn lookup(
        &self,
        graph: &Arc<PathPropertyGraph>,
        nfa: &Nfa,
        searcher: &PathSearcher<'_>,
        sources: &[NodeId],
    ) -> FxHashMap<NodeId, Arc<Vec<NodeId>>> {
        let key: CacheKey = (Arc::as_ptr(graph) as usize, nfa.identity_key());

        // Serve what the cache already knows and collect the rest.
        let mut out: FxHashMap<NodeId, Arc<Vec<NodeId>>> = FxHashMap::default();
        let mut missing: Vec<NodeId> = Vec::new();
        {
            let entries = self.entries.lock().unwrap();
            let entry = entries.get(&key).filter(|e| Arc::ptr_eq(&e.graph, graph));
            for &src in sources {
                match entry.and_then(|e| e.reach.get(&src)) {
                    Some(set) => {
                        out.insert(src, set.clone());
                    }
                    None => missing.push(src),
                }
            }
        }
        self.hits.fetch_add(out.len() as u64, Ordering::Relaxed);
        if missing.is_empty() {
            return out;
        }
        missing.sort_unstable();
        missing.dedup();
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);

        // One shared condensation for everything the cache lacked —
        // outside the lock, so concurrent queries never serialize on
        // the search itself (two threads may race to compute the same
        // source; both get identical answers and the merge is
        // idempotent).
        let fresh = searcher.reachable_many(&missing);
        {
            let mut entries = self.entries.lock().unwrap();
            let entry = entries.entry(key).or_insert_with(|| CacheEntry {
                graph: graph.clone(),
                reach: FxHashMap::default(),
            });
            // ABA guard: if the address was recycled by a *different*
            // graph, repoint the entry and drop the stale closures.
            if !Arc::ptr_eq(&entry.graph, graph) {
                entry.graph = graph.clone();
                entry.reach.clear();
            }
            for (src, set) in &fresh {
                entry.reach.insert(*src, set.clone());
            }
        }
        out.extend(fresh);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::ViewMap;
    use gcore_parser::ast::Regex;
    use gcore_ppg::Attributes;

    fn snapshot_with_chain() -> (EngineSnapshot, Arc<PathPropertyGraph>) {
        let mut g = PathPropertyGraph::new();
        for i in 1..=3 {
            g.add_node(NodeId(i), Attributes::labeled("Person"));
        }
        g.add_edge(
            gcore_ppg::EdgeId(10),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_edge(
            gcore_ppg::EdgeId(11),
            NodeId(2),
            NodeId(3),
            Attributes::labeled("knows"),
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register_graph("g", g);
        catalog.set_default_graph("g");
        let snap = EngineSnapshot::freeze(catalog, 1);
        let graph = snap.catalog().graph("g").unwrap();
        (snap, graph)
    }

    fn knows_star() -> Nfa {
        Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))))
    }

    #[test]
    fn freeze_indexes_every_graph() {
        let (snap, graph) = snapshot_with_chain();
        assert!(graph.has_label_index());
        assert!(snap.catalog().all_indexed());
        assert_eq!(snap.epoch(), 1);
    }

    #[test]
    fn cache_serves_repeat_sources_without_recondensation() {
        let (snap, graph) = snapshot_with_chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let searcher = PathSearcher::new(&graph, &nfa, &views);

        let first = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(1), NodeId(2)]);
        assert_eq!(*first[&NodeId(1)], vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(snap.scc_cache_stats(), (0, 2));

        // Same NFA structure (fresh compilation), same graph: all hits.
        let nfa2 = knows_star();
        let searcher2 = PathSearcher::new(&graph, &nfa2, &views);
        let second = snap.reachable_many_cached(&graph, &nfa2, &searcher2, &[NodeId(2), NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (2, 2));
        assert_eq!(*second[&NodeId(1)], *first[&NodeId(1)]);

        // A structurally different NFA misses.
        let plus = Nfa::compile(&Regex::Plus(Box::new(Regex::Label("knows".into()))));
        let searcher3 = PathSearcher::new(&graph, &plus, &views);
        let third = snap.reachable_many_cached(&graph, &plus, &searcher3, &[NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (2, 3));
        // knows+ does not accept the empty walk: 1 reaches only 2, 3.
        assert_eq!(*third[&NodeId(1)], vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn sources_absent_from_the_graph_are_cached_as_empty() {
        // `reachable_many` answers every requested source, including
        // ones that are not graph nodes (empty set) — so the cache
        // memoizes them too and a repeat query is a pure hit, not a
        // recurring miss.
        let (snap, graph) = snapshot_with_chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let searcher = PathSearcher::new(&graph, &nfa, &views);

        let first = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(99)]);
        assert!(first[&NodeId(99)].is_empty());
        assert_eq!(snap.scc_cache_stats(), (0, 1));
        let second = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(99)]);
        assert!(second[&NodeId(99)].is_empty());
        assert_eq!(snap.scc_cache_stats(), (1, 1), "absent source must hit");
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineSnapshot>();
    }
}
