//! Immutable engine snapshots — the read side of the engine's
//! catalog/evaluation split.
//!
//! An [`EngineSnapshot`] is a frozen copy of the catalog taken at a
//! *snapshot epoch*: every write to the [`Engine`](crate::Engine)
//! (graph/table registration, `GRAPH VIEW` commits, direct catalog
//! access) bumps the epoch and invalidates the engine's cached
//! snapshot, so each snapshot observes exactly one committed state and
//! never changes afterwards. Query evaluation — through
//! [`QueryExecutor`](crate::QueryExecutor) — only ever reads a
//! snapshot, which is what makes concurrent evaluation safe without
//! locking on the hot path: the snapshot is `Sync`, shared by `Arc`,
//! and all per-query mutable state lives in the per-thread
//! [`EvalCtx`](crate::EvalCtx).
//!
//! Freezing does two things beyond cloning the catalog:
//!
//! * **Index freeze.** Every graph's label-partitioned index is
//!   force-built ([`Catalog::freeze_indexes`]), so evaluation over a
//!   snapshot never hits the mutation-invalidated scan fallback — a
//!   snapshot is immutable, hence its indexes can never be invalidated
//!   again.
//! * **Search-result reuse.** The snapshot carries a cache of
//!   SCC-condensed reachability closures keyed by (graph identity, NFA
//!   structure): the per-source destination sets that
//!   [`PathSearcher::reachable_many`] computes by condensing the
//!   product digraph. Repeated path queries against one snapshot (the
//!   multi-user steady state) skip re-condensation entirely; the cache
//!   dies with the snapshot, so an epoch bump naturally starts fresh.
//!   The cache can be **LRU-bounded** (`Engine::set_scc_cache_capacity`):
//!   when more than `capacity` distinct (graph, NFA) condensations are
//!   live, the least-recently-used one is dropped — evictions show up
//!   in [`EngineSnapshot::scc_cache_stats`]. The default is unbounded,
//!   preserving the original behavior.

use crate::paths::PathSearcher;
use crate::regex::{Nfa, NfaKey};
use gcore_ppg::hash::FxHashMap;
use gcore_ppg::{Catalog, NodeId, PathPropertyGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A frozen catalog state at one snapshot epoch, shared read-only by
/// every executor and evaluation context derived from it.
#[derive(Debug)]
pub struct EngineSnapshot {
    catalog: Catalog,
    epoch: u64,
    scc_cache: SccCache,
}

impl EngineSnapshot {
    /// Freeze `catalog` at `epoch`: force-build every graph's label
    /// index and attach an empty, unbounded condensation cache.
    pub fn freeze(catalog: Catalog, epoch: u64) -> Self {
        Self::freeze_with_scc_capacity(catalog, epoch, None)
    }

    /// [`freeze`](Self::freeze) with an LRU bound on the condensation
    /// cache: at most `capacity` (graph, NFA) condensations stay live,
    /// `None` meaning unbounded. `Some(0)` disables caching entirely
    /// (every lookup condenses, nothing is retained).
    pub fn freeze_with_scc_capacity(
        mut catalog: Catalog,
        epoch: u64,
        capacity: Option<usize>,
    ) -> Self {
        catalog.freeze_indexes();
        debug_assert!(catalog.all_indexed(), "snapshot froze an unindexed graph");
        EngineSnapshot {
            catalog,
            epoch,
            scc_cache: SccCache::with_capacity(capacity),
        }
    }

    /// The frozen catalog. Immutable: the snapshot hands out only
    /// shared references, and graphs/tables inside are `Arc`-shared.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The epoch this snapshot was taken at. Strictly increases with
    /// every committed write to the owning engine.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(hits, misses, evictions)` of the condensation cache — hits and
    /// misses counted per source node served, evictions per (graph,
    /// NFA) entry dropped by the LRU bound. Snapshot-local by
    /// construction: a fresh snapshot (after any epoch bump) starts at
    /// `(0, 0, 0)`.
    pub fn scc_cache_stats(&self) -> (u64, u64, u64) {
        self.scc_cache.stats()
    }

    /// Reachability closure of `sources` under `nfa` on `graph`, served
    /// from the per-snapshot condensation cache where possible.
    ///
    /// Sources whose destination set was computed by an earlier query
    /// with a structurally identical NFA on the identical graph (`Arc`
    /// pointer equality, revalidated against the pinned graph handle)
    /// are cache hits; the rest run one shared
    /// [`PathSearcher::reachable_many`] condensation and are merged
    /// into the cache for the snapshot's remaining lifetime (or until
    /// the LRU bound evicts the entry).
    ///
    /// Correctness does not depend on the cache: entries are immutable
    /// per-source answers of `reachable_many`, which equals
    /// [`PathSearcher::reachable`] per source. Callers must not use
    /// this for view-bearing NFAs (view segment relations are
    /// query-local); the matcher guards that.
    pub fn reachable_many_cached(
        &self,
        graph: &Arc<PathPropertyGraph>,
        nfa: &Nfa,
        searcher: &PathSearcher<'_>,
        sources: &[NodeId],
    ) -> FxHashMap<NodeId, Arc<Vec<NodeId>>> {
        self.scc_cache.lookup(graph, nfa, searcher, sources)
    }
}

/// Cache key: graph address paired with the NFA's structural identity.
/// The address alone could be reused after a graph is dropped (ABA);
/// every entry therefore pins its graph `Arc` and lookups revalidate
/// with pointer equality against the pinned handle.
type CacheKey = (usize, NfaKey);

struct CacheEntry {
    /// The graph the closures were computed on, pinned so its address
    /// can never be recycled while the entry lives.
    graph: Arc<PathPropertyGraph>,
    /// Per-source destination sets, exactly `reachable(src)` each,
    /// `Arc`-shared with the condensation that produced them.
    reach: FxHashMap<NodeId, Arc<Vec<NodeId>>>,
    /// Recency stamp for the LRU bound: the cache tick of the last
    /// lookup or merge that touched this entry.
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    map: FxHashMap<CacheKey, CacheEntry>,
    /// Monotone lookup counter stamping `last_used`.
    tick: u64,
}

impl CacheInner {
    /// Drop least-recently-used entries until at most `capacity`
    /// remain. Linear scan per eviction: the entry count is the number
    /// of distinct (graph, regex) pairs a snapshot has served, which
    /// stays tiny next to the condensations themselves.
    fn enforce(&mut self, capacity: usize, evictions: &AtomicU64) {
        while self.map.len() > capacity {
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&lru);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The per-snapshot cache of SCC-condensed reachability closures,
/// optionally LRU-bounded by entry count.
struct SccCache {
    entries: Mutex<CacheInner>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SccCache {
    fn default() -> Self {
        Self::with_capacity(None)
    }
}

impl std::fmt::Debug for SccCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, m, e) = self.stats();
        f.debug_struct("SccCache")
            .field("hits", &h)
            .field("misses", &m)
            .field("evictions", &e)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SccCache {
    fn with_capacity(capacity: Option<usize>) -> Self {
        SccCache {
            entries: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    fn lookup(
        &self,
        graph: &Arc<PathPropertyGraph>,
        nfa: &Nfa,
        searcher: &PathSearcher<'_>,
        sources: &[NodeId],
    ) -> FxHashMap<NodeId, Arc<Vec<NodeId>>> {
        let key: CacheKey = (Arc::as_ptr(graph) as usize, nfa.identity_key());

        // Serve what the cache already knows and collect the rest.
        let mut out: FxHashMap<NodeId, Arc<Vec<NodeId>>> = FxHashMap::default();
        let mut missing: Vec<NodeId> = Vec::new();
        {
            let mut inner = self.entries.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner
                .map
                .get_mut(&key)
                .filter(|e| Arc::ptr_eq(&e.graph, graph));
            if let Some(entry) = entry {
                entry.last_used = tick;
                for &src in sources {
                    match entry.reach.get(&src) {
                        Some(set) => {
                            out.insert(src, set.clone());
                        }
                        None => missing.push(src),
                    }
                }
            } else {
                missing.extend_from_slice(sources);
            }
        }
        self.hits.fetch_add(out.len() as u64, Ordering::Relaxed);
        if missing.is_empty() {
            return out;
        }
        missing.sort_unstable();
        missing.dedup();
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);

        // One shared condensation for everything the cache lacked —
        // outside the lock, so concurrent queries never serialize on
        // the search itself (two threads may race to compute the same
        // source; both get identical answers and the merge is
        // idempotent).
        let fresh = searcher.reachable_many(&missing);
        // A cancelled search returns partial (empty) answers; caching
        // them would poison later statements on this snapshot. The
        // caller notices the fired token and raises the error.
        if searcher.cancelled() {
            out.extend(fresh);
            return out;
        }
        if self.capacity != Some(0) {
            let mut inner = self.entries.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.map.entry(key).or_insert_with(|| CacheEntry {
                graph: graph.clone(),
                reach: FxHashMap::default(),
                last_used: tick,
            });
            entry.last_used = tick;
            // ABA guard: if the address was recycled by a *different*
            // graph, repoint the entry and drop the stale closures.
            if !Arc::ptr_eq(&entry.graph, graph) {
                entry.graph = graph.clone();
                entry.reach.clear();
            }
            for (src, set) in &fresh {
                entry.reach.insert(*src, set.clone());
            }
            if let Some(capacity) = self.capacity {
                inner.enforce(capacity, &self.evictions);
            }
        }
        out.extend(fresh);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::ViewMap;
    use gcore_parser::ast::Regex;
    use gcore_ppg::Attributes;

    fn chain_catalog() -> (Catalog, Arc<PathPropertyGraph>) {
        let mut g = PathPropertyGraph::new();
        for i in 1..=3 {
            g.add_node(NodeId(i), Attributes::labeled("Person"));
        }
        g.add_edge(
            gcore_ppg::EdgeId(10),
            NodeId(1),
            NodeId(2),
            Attributes::labeled("knows"),
        )
        .unwrap();
        g.add_edge(
            gcore_ppg::EdgeId(11),
            NodeId(2),
            NodeId(3),
            Attributes::labeled("knows"),
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register_graph("g", g);
        catalog.set_default_graph("g");
        let graph = catalog.graph("g").unwrap();
        (catalog, graph)
    }

    fn snapshot_with_chain() -> (EngineSnapshot, Arc<PathPropertyGraph>) {
        let (catalog, graph) = chain_catalog();
        (EngineSnapshot::freeze(catalog, 1), graph)
    }

    fn knows_star() -> Nfa {
        Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))))
    }

    #[test]
    fn freeze_indexes_every_graph() {
        let (snap, graph) = snapshot_with_chain();
        assert!(graph.has_label_index());
        assert!(snap.catalog().all_indexed());
        assert_eq!(snap.epoch(), 1);
    }

    #[test]
    fn cache_serves_repeat_sources_without_recondensation() {
        let (snap, graph) = snapshot_with_chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let searcher = PathSearcher::new(&graph, &nfa, &views);

        let first = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(1), NodeId(2)]);
        assert_eq!(*first[&NodeId(1)], vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(snap.scc_cache_stats(), (0, 2, 0));

        // Same NFA structure (fresh compilation), same graph: all hits.
        let nfa2 = knows_star();
        let searcher2 = PathSearcher::new(&graph, &nfa2, &views);
        let second = snap.reachable_many_cached(&graph, &nfa2, &searcher2, &[NodeId(2), NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (2, 2, 0));
        assert_eq!(*second[&NodeId(1)], *first[&NodeId(1)]);

        // A structurally different NFA misses.
        let plus = Nfa::compile(&Regex::Plus(Box::new(Regex::Label("knows".into()))));
        let searcher3 = PathSearcher::new(&graph, &plus, &views);
        let third = snap.reachable_many_cached(&graph, &plus, &searcher3, &[NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (2, 3, 0));
        // knows+ does not accept the empty walk: 1 reaches only 2, 3.
        assert_eq!(*third[&NodeId(1)], vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn sources_absent_from_the_graph_are_cached_as_empty() {
        // `reachable_many` answers every requested source, including
        // ones that are not graph nodes (empty set) — so the cache
        // memoizes them too and a repeat query is a pure hit, not a
        // recurring miss.
        let (snap, graph) = snapshot_with_chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let searcher = PathSearcher::new(&graph, &nfa, &views);

        let first = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(99)]);
        assert!(first[&NodeId(99)].is_empty());
        assert_eq!(snap.scc_cache_stats(), (0, 1, 0));
        let second = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(99)]);
        assert!(second[&NodeId(99)].is_empty());
        assert_eq!(snap.scc_cache_stats(), (1, 1, 0), "absent source must hit");
    }

    #[test]
    fn lru_bound_evicts_least_recently_used_entry() {
        let (catalog, graph) = chain_catalog();
        let snap = EngineSnapshot::freeze_with_scc_capacity(catalog, 1, Some(1));
        let views = ViewMap::default();

        let star = knows_star();
        let plus = Nfa::compile(&Regex::Plus(Box::new(Regex::Label("knows".into()))));
        let star_search = PathSearcher::new(&graph, &star, &views);
        let plus_search = PathSearcher::new(&graph, &plus, &views);

        // Populate entry A, then entry B: capacity 1 evicts A.
        snap.reachable_many_cached(&graph, &star, &star_search, &[NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (0, 1, 0));
        snap.reachable_many_cached(&graph, &plus, &plus_search, &[NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (0, 2, 1), "star entry evicted");

        // B is resident (hit); A was evicted (miss again, evicting B).
        snap.reachable_many_cached(&graph, &plus, &plus_search, &[NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (1, 2, 1));
        snap.reachable_many_cached(&graph, &star, &star_search, &[NodeId(1)]);
        assert_eq!(snap.scc_cache_stats(), (1, 3, 2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (catalog, graph) = chain_catalog();
        let snap = EngineSnapshot::freeze_with_scc_capacity(catalog, 1, Some(0));
        let views = ViewMap::default();
        let nfa = knows_star();
        let searcher = PathSearcher::new(&graph, &nfa, &views);

        let a = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(1)]);
        let b = snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(1)]);
        assert_eq!(*a[&NodeId(1)], *b[&NodeId(1)]);
        let (h, m, e) = snap.scc_cache_stats();
        assert_eq!((h, m), (0, 2), "nothing is ever retained");
        assert_eq!(e, 0, "nothing retained, nothing evicted");
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let (snap, graph) = snapshot_with_chain();
        let views = ViewMap::default();
        for depth in 1..=8usize {
            // 8 structurally distinct NFAs → 8 live entries, 0 evictions.
            let mut r = Regex::Label("knows".into());
            for _ in 0..depth {
                r = Regex::Star(Box::new(r));
            }
            let nfa = Nfa::compile(&r);
            let searcher = PathSearcher::new(&graph, &nfa, &views);
            snap.reachable_many_cached(&graph, &nfa, &searcher, &[NodeId(1)]);
        }
        let (_, _, evictions) = snap.scc_cache_stats();
        assert_eq!(evictions, 0);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineSnapshot>();
    }
}
