//! The SELECT clause — the §5 "projecting tabular results" extension.
//!
//! `SELECT [DISTINCT] e₁ AS a₁, … MATCH … [GROUP BY …] [ORDER BY …]
//! [LIMIT n] [OFFSET m]` projects the MATCH binding table into a
//! [`Table`]. Grouping follows SQL: an explicit `GROUP BY` groups by
//! those expression values; otherwise, if any projection aggregates, the
//! whole table forms one group; otherwise each binding is its own row.

use crate::binding::BindingTable;
use crate::error::{Result, RuntimeError};
use crate::expr::{eval_expr, Env, Rv};
use crate::query::Evaluator;
use gcore_parser::ast::{Expr, SelectItem, SelectQuery};
use gcore_parser::pretty::print_expr;
use gcore_ppg::{Table, Value};
use std::cmp::Ordering;

/// Evaluate a SELECT query into a table.
pub fn eval_select(ev: &Evaluator<'_>, s: &SelectQuery, outer: Option<&Env<'_>>) -> Result<Table> {
    let bindings = ev.eval_match(&s.match_clause, outer)?;

    let aggregated = !s.group_by.is_empty() || s.items.iter().any(|i| i.expr.contains_aggregate());

    // Partition rows into groups.
    let groups: Vec<Vec<usize>> = if !s.group_by.is_empty() {
        group_by(ev, &bindings, &s.group_by, outer)?
    } else if aggregated {
        vec![(0..bindings.len()).collect()]
    } else {
        (0..bindings.len()).map(|i| vec![i]).collect()
    };

    // Which columns define the group (for COUNT(*) padding detection).
    let group_cols: Vec<usize> = {
        let mut cols = Vec::new();
        for e in &s.group_by {
            collect_cols(e, &bindings, &mut cols);
        }
        cols
    };

    let column_names: Vec<String> = s
        .items
        .iter()
        .map(|i| match &i.alias {
            Some(a) => a.text.clone(),
            None => print_expr(&i.expr),
        })
        .collect();

    // Evaluate projections (and ORDER BY keys) per group.
    let mut rows: Vec<(Vec<Rv>, Vec<Value>)> = Vec::with_capacity(groups.len());
    for group in &groups {
        if group.is_empty() && !aggregated {
            continue;
        }
        let mut cells = Vec::with_capacity(s.items.len());
        for item in &s.items {
            let rv = eval_item(ev, &bindings, group, &group_cols, &item.expr, outer)?;
            cells.push(rv_to_value(&rv));
        }
        let mut keys = Vec::with_capacity(s.order_by.len());
        for ord in &s.order_by {
            // Alias references resolve to the projected cell.
            let rv = match alias_index(&ord.expr, &s.items) {
                Some(i) => Rv::Value(cells[i].clone()),
                None => eval_item(ev, &bindings, group, &group_cols, &ord.expr, outer)?,
            };
            keys.push(rv);
        }
        rows.push((keys, cells));
    }

    if s.distinct {
        rows.sort_by(|a, b| cmp_values(&a.1, &b.1));
        rows.dedup_by(|a, b| cmp_values(&a.1, &b.1) == Ordering::Equal);
    }

    if !s.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for (i, ord) in s.order_by.iter().enumerate() {
                let c = a.0[i].total_cmp(&b.0[i]);
                let c = if ord.ascending { c } else { c.reverse() };
                if c != Ordering::Equal {
                    return c;
                }
            }
            cmp_values(&a.1, &b.1) // deterministic tie-break
        });
    } else {
        rows.sort_by(|a, b| cmp_values(&a.1, &b.1));
    }

    let offset = s.offset.unwrap_or(0) as usize;
    let limit = s.limit.map(|l| l as usize).unwrap_or(usize::MAX);

    let mut table = Table::new(column_names)
        .map_err(|e| RuntimeError::Other(format!("invalid SELECT projection: {e}")))?;
    for (_, cells) in rows.into_iter().skip(offset).take(limit) {
        table
            .push_row(cells)
            .map_err(|e| RuntimeError::Other(format!("projection row error: {e}")))?;
    }
    Ok(table)
}

fn cmp_values(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.cmp(y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

fn alias_index(e: &Expr, items: &[SelectItem]) -> Option<usize> {
    let Expr::Var(name) = e else { return None };
    items
        .iter()
        .position(|i| i.alias.as_deref() == Some(name.as_str()))
}

fn group_by(
    ev: &Evaluator<'_>,
    bindings: &BindingTable,
    exprs: &[Expr],
    outer: Option<&Env<'_>>,
) -> Result<Vec<Vec<usize>>> {
    // Deterministic grouping: BTreeMap over stringified keys would lose
    // type order, so sort (key, index) pairs with Rv's total order.
    let mut keyed: Vec<(Vec<Rv>, usize)> = Vec::with_capacity(bindings.len());
    for ri in 0..bindings.len() {
        let mut env = Env::new(bindings, ri);
        env.parent = outer;
        let mut key = Vec::with_capacity(exprs.len());
        for e in exprs {
            key.push(eval_expr(ev.ctx, ev, &env, e)?);
        }
        keyed.push((key, ri));
    }
    keyed.sort_by(|a, b| cmp_rv_list(&a.0, &b.0));
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut prev: Option<&[Rv]> = None;
    for (key, ri) in &keyed {
        let same = prev.is_some_and(|p| cmp_rv_list(p, key) == Ordering::Equal);
        if !same {
            groups.push(Vec::new());
        }
        groups.last_mut().expect("just pushed").push(*ri);
        prev = Some(key);
    }
    Ok(groups)
}

fn cmp_rv_list(a: &[Rv], b: &[Rv]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.total_cmp(y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

fn collect_cols(e: &Expr, bindings: &BindingTable, out: &mut Vec<usize>) {
    match e {
        Expr::Var(v) => {
            if let Some(i) = bindings.column_index(v) {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
        }
        Expr::Prop(b, _) | Expr::LabelTest(b, _) | Expr::Unary(_, b) => {
            collect_cols(b, bindings, out)
        }
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            collect_cols(a, bindings, out);
            collect_cols(b, bindings, out);
        }
        Expr::Func(_, args) => {
            for a in args {
                collect_cols(a, bindings, out);
            }
        }
        _ => {}
    }
}

/// Evaluate one projection item over a group: aggregates fold over the
/// group's rows, plain expressions use the representative row.
fn eval_item(
    ev: &Evaluator<'_>,
    bindings: &BindingTable,
    group: &[usize],
    group_cols: &[usize],
    expr: &Expr,
    outer: Option<&Env<'_>>,
) -> Result<Rv> {
    if expr.contains_aggregate() {
        return crate::construct::eval_group_aggregate(
            ev, bindings, group, group_cols, expr, outer,
        );
    }
    let Some(&repr) = group.first() else {
        return Ok(Rv::Null);
    };
    let mut env = Env::new(bindings, repr);
    env.parent = outer;
    eval_expr(ev.ctx, ev, &env, expr)
}

/// Convert a runtime value to a table cell.
///
/// Element identifiers render as opaque `#id` strings (the presentation
/// used by the paper's binding tables); value sets unwrap singletons and
/// render multi-valued sets with braces.
pub fn rv_to_value(rv: &Rv) -> Value {
    match rv {
        Rv::Null => Value::Null,
        Rv::Value(v) => v.clone(),
        Rv::Set(s) => match s.as_singleton() {
            Some(v) => v.clone(),
            None if s.is_empty() => Value::Null,
            None => Value::str(s.to_string()),
        },
        Rv::Node(n) => Value::str(n.to_string()),
        Rv::Edge(e) => Value::str(e.to_string()),
        Rv::Path(p) => Value::str(p.to_string()),
        Rv::FreshPath(i) => Value::str(format!("#fresh{i}")),
        Rv::List(items) => {
            let parts: Vec<String> = items.iter().map(render_rv).collect();
            Value::str(format!("[{}]", parts.join(", ")))
        }
    }
}

fn render_rv(rv: &Rv) -> String {
    match rv {
        Rv::Null => "null".to_owned(),
        Rv::Value(v) => v.to_string(),
        Rv::Set(s) => s.to_string(),
        Rv::Node(n) => n.to_string(),
        Rv::Edge(e) => e.to_string(),
        Rv::Path(p) => p.to_string(),
        Rv::FreshPath(i) => format!("#fresh{i}"),
        Rv::List(items) => {
            let parts: Vec<String> = items.iter().map(render_rv).collect();
            format!("[{}]", parts.join(", "))
        }
    }
}
