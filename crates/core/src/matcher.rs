//! Evaluation of basic graph patterns (§A.2) on one graph.
//!
//! A pattern chain `(n)-[e:knows]->(m)-/p<:r*>/->(k)` is evaluated left to
//! right: the start node pattern seeds a binding table, and each step
//! expands rows through adjacency (edge patterns) or product-automaton
//! search (path patterns). Homomorphism semantics: no implicit
//! disjointness between variables (§3 "Match and Filter").
//!
//! All candidate enumeration is in sorted identifier order, so the
//! resulting binding table is deterministic.

use crate::binding::{BindingTable, Bound, Column, TableBuilder};
use crate::context::FreshPath;
use crate::error::{Result, RuntimeError, SemanticError};
use crate::expr::{eval_expr, Env, Rv};
use crate::paths::{PathSearcher, ViewMap};
use crate::query::Evaluator;
use crate::regex::{walk_conforms, Nfa};
use gcore_parser::ast::{
    Connection, Direction, EdgePattern, LabelDisjunction, NodePattern, PathMode, PathPattern,
    Pattern, PropEntry, Regex,
};
use gcore_ppg::hash::{FxHashMap, FxHashSet};
use gcore_ppg::{ElementId, Key, Label, NodeId, PathPropertyGraph, PathShape, Value};
use std::cell::Cell;
use std::sync::Arc;

/// Description of a pattern chain's columns after evaluation, used by
/// PATH-view segment extraction.
pub struct ChainInfo {
    /// Column name of each node in the chain, in order.
    pub node_vars: Vec<String>,
    /// Column name of each connection (edge or path), in order.
    pub conn_vars: Vec<String>,
}

/// Matcher for one graph.
pub struct PatternMatcher<'e> {
    /// The evaluator (for subqueries and context access).
    pub ev: &'e Evaluator<'e>,
    /// The graph being matched.
    pub graph: Arc<PathPropertyGraph>,
    anon: Cell<usize>,
    /// Single-variable WHERE conjuncts pushed down by the evaluator:
    /// applied the moment the variable is bound, pruning the search
    /// space (most importantly the *source set* of path patterns).
    prefilters: FxHashMap<String, Vec<&'e gcore_parser::ast::Expr>>,
}

impl<'e> PatternMatcher<'e> {
    /// Create a matcher over `graph`.
    pub fn new(ev: &'e Evaluator<'e>, graph: Arc<PathPropertyGraph>) -> Self {
        PatternMatcher {
            ev,
            graph,
            anon: Cell::new(0),
            prefilters: FxHashMap::default(),
        }
    }

    /// Attach pushed-down WHERE conjuncts (keyed by the single variable
    /// each references). Filtering is idempotent, so the evaluator still
    /// applies the full WHERE afterwards; pushdown only prunes earlier.
    pub fn with_prefilters(
        mut self,
        prefilters: FxHashMap<String, Vec<&'e gcore_parser::ast::Expr>>,
    ) -> Self {
        self.prefilters = prefilters;
        self
    }

    /// Apply the pushed-down conjuncts for `var`, if any.
    fn apply_prefilters(
        &self,
        table: BindingTable,
        var: &str,
        outer: Option<&Env<'_>>,
    ) -> Result<BindingTable> {
        let Some(exprs) = self.prefilters.get(var) else {
            return Ok(table);
        };
        let mut first_err = None;
        let filtered = table.filter(|ri| {
            if first_err.is_some() {
                return false;
            }
            let mut env = Env::new(&table, ri);
            env.parent = outer;
            exprs
                .iter()
                .all(|e| match eval_expr(self.ev.ctx, self.ev, &env, e) {
                    Ok(v) => v.truthy(),
                    Err(err) => {
                        first_err = Some(err);
                        false
                    }
                })
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(filtered),
        }
    }

    fn fresh_anon(&self, kind: &str) -> String {
        let n = self.anon.get();
        self.anon.set(n + 1);
        // '#' cannot appear in user identifiers, so no collisions.
        format!("#{kind}{n}")
    }

    fn col(&self, var: &str) -> Column {
        Column {
            var: var.to_owned(),
            graph: self.graph.clone(),
        }
    }

    /// Evaluate a pattern; anonymous element columns are projected away.
    pub fn eval_pattern(&self, pattern: &Pattern, outer: Option<&Env<'_>>) -> Result<BindingTable> {
        let (table, _) = self.eval_chain(pattern, outer)?;
        let keep: Vec<&str> = table
            .columns()
            .iter()
            .map(|c| c.var.as_str())
            .filter(|v| !v.starts_with('#'))
            .collect::<Vec<_>>();
        Ok(table.project(&keep))
    }

    /// Evaluate a pattern keeping anonymous columns, returning chain
    /// column info (for PATH-view walk extraction).
    pub fn eval_chain(
        &self,
        pattern: &Pattern,
        outer: Option<&Env<'_>>,
    ) -> Result<(BindingTable, ChainInfo)> {
        // Structural variables of this pattern decide which `{k = v}`
        // entries bind fresh value variables vs. filter.
        let structural = structural_vars(pattern);

        let start_var = pattern
            .start
            .var
            .as_deref()
            .map(str::to_owned)
            .unwrap_or_else(|| self.fresh_anon("n"));
        let mut info = ChainInfo {
            node_vars: vec![start_var.clone()],
            conn_vars: Vec::new(),
        };

        let mut table = self.bind_start(&start_var, &pattern.start, outer, &structural)?;
        for step in &pattern.steps {
            // Chain steps are the matcher's outermost expansion loop:
            // one poll per step bounds the latency of noticing a
            // cancellation by one expansion.
            self.ev.ctx.check_cancelled()?;
            let dst_var = step
                .node
                .var
                .as_deref()
                .map(str::to_owned)
                .unwrap_or_else(|| self.fresh_anon("n"));
            let prev_var = info.node_vars.last().expect("chain nonempty").clone();
            table = match &step.connection {
                Connection::Edge(e) => {
                    let edge_var = e
                        .var
                        .as_deref()
                        .map(str::to_owned)
                        .unwrap_or_else(|| self.fresh_anon("e"));
                    info.conn_vars.push(edge_var.clone());
                    self.expand_edge(table, &prev_var, &edge_var, &dst_var, e, outer, &structural)?
                }
                Connection::Path(p) => {
                    let path_var = p
                        .var
                        .as_deref()
                        .map(str::to_owned)
                        .unwrap_or_else(|| self.fresh_anon("p"));
                    info.conn_vars.push(path_var.clone());
                    self.expand_path(table, &prev_var, &path_var, &dst_var, p, outer)?
                }
            };
            // Apply the destination node's own label/property constraints.
            table = self.constrain_node(table, &dst_var, &step.node, outer, &structural)?;
            info.node_vars.push(dst_var);
        }
        Ok((table, info))
    }

    /// Seed the table with candidates for the first node pattern.
    fn bind_start(
        &self,
        var: &str,
        node: &NodePattern,
        outer: Option<&Env<'_>>,
        structural: &FxHashSet<String>,
    ) -> Result<BindingTable> {
        // If the outer scope (correlated subquery) already binds this
        // variable, start from that binding.
        if let Some((Bound::Node(n), _)) = outer.and_then(|o| o.lookup(var)) {
            let mut b = TableBuilder::new(vec![self.col(var)]);
            b.push(&[Bound::Node(n)]);
            return self.constrain_node(b.finish(), var, node, outer, structural);
        }
        // When the first group is a single label, seed from the label
        // index — that group is then already satisfied, so only the
        // remaining groups are re-checked per candidate.
        let (candidates, rest_groups): (Vec<NodeId>, &[LabelDisjunction]) =
            match first_label(&node.labels) {
                Some(label) => (
                    match Label::lookup(&label) {
                        Some(l) => self.graph.nodes_with_label(l),
                        None => Vec::new(),
                    },
                    &node.labels[1..],
                ),
                None => (self.graph.node_ids_sorted(), &node.labels[..]),
            };
        let mut b = TableBuilder::new(vec![self.col(var)]);
        for n in candidates {
            b.push(&[Bound::Node(n)]);
        }
        self.constrain_node_groups(b.finish(), var, node, rest_groups, outer, structural)
    }

    /// Apply a node pattern's labels and property entries to an existing
    /// column (binding value variables / filtering).
    fn constrain_node(
        &self,
        table: BindingTable,
        var: &str,
        node: &NodePattern,
        outer: Option<&Env<'_>>,
        structural: &FxHashSet<String>,
    ) -> Result<BindingTable> {
        self.constrain_node_groups(table, var, node, &node.labels, outer, structural)
    }

    /// `constrain_node` with an explicit label-group slice, so callers
    /// that already satisfied a group via an index can skip it.
    fn constrain_node_groups(
        &self,
        table: BindingTable,
        var: &str,
        node: &NodePattern,
        groups: &[LabelDisjunction],
        outer: Option<&Env<'_>>,
        structural: &FxHashSet<String>,
    ) -> Result<BindingTable> {
        let mut table = self.filter_labels(table, var, groups)?;
        for entry in &node.props {
            table = self.apply_prop_entry(table, var, entry, outer, structural)?;
        }
        self.apply_prefilters(table, var, outer)
    }

    /// Every label-disjunction group must be satisfied.
    fn filter_labels(
        &self,
        table: BindingTable,
        var: &str,
        groups: &[LabelDisjunction],
    ) -> Result<BindingTable> {
        if groups.is_empty() {
            return Ok(table);
        }
        let resolved: Vec<Vec<Option<Label>>> = groups
            .iter()
            .map(|g| g.0.iter().map(|l| Label::lookup(l)).collect())
            .collect();
        let idx = table
            .column_index(var)
            .ok_or_else(|| SemanticError::UnboundVariable(var.to_owned()))?;
        Ok(table.filter(|ri| {
            let id: ElementId = match table.bound(ri, idx) {
                Bound::Node(n) => n.into(),
                Bound::Edge(e) => e.into(),
                Bound::Path(p) => p.into(),
                Bound::FreshPath(_) => return false, // computed paths carry no labels
                _ => return false,
            };
            resolved.iter().all(|group| {
                group
                    .iter()
                    .any(|l| l.is_some_and(|l| self.graph.has_label(id, l)))
            })
        }))
    }

    /// `{key = expr}`: bind (unrolling multi-valued properties) when the
    /// RHS is an unbound value variable, otherwise filter by membership.
    fn apply_prop_entry(
        &self,
        table: BindingTable,
        elem_var: &str,
        entry: &PropEntry,
        outer: Option<&Env<'_>>,
        structural: &FxHashSet<String>,
    ) -> Result<BindingTable> {
        let key = Key::lookup(&entry.key);
        let elem_idx = table
            .column_index(elem_var)
            .ok_or_else(|| SemanticError::UnboundVariable(elem_var.to_owned()))?;
        let prop_of = |table: &BindingTable, ri: usize| -> gcore_ppg::PropertySet {
            let Some(key) = key else {
                return Default::default();
            };
            let id: ElementId = match table.bound(ri, elem_idx) {
                Bound::Node(n) => n.into(),
                Bound::Edge(e) => e.into(),
                Bound::Path(p) => p.into(),
                _ => return Default::default(),
            };
            self.graph.prop(id, key)
        };

        // Binding form: RHS is a variable that is neither structural nor
        // already bound (here or in the outer scope).
        if let gcore_parser::ast::Expr::Var(v) = &entry.value {
            let is_bound = table.binds(v)
                || structural.contains(v.as_str())
                || outer.is_some_and(|o| o.binds(v));
            if !is_bound {
                return Ok(table.extend_column(self.col(v), |ri| {
                    prop_of(&table, ri)
                        .iter()
                        .map(|val| Bound::Value(val.clone()))
                        .collect()
                }));
            }
        }
        // Filter form: membership of the evaluated scalar (set equality
        // when the RHS itself evaluates to a set).
        let mut result = Ok(());
        let filtered = table.filter(|ri| {
            if result.is_err() {
                return false;
            }
            let mut env = Env::new(&table, ri);
            env.parent = outer;
            match eval_expr(self.ev.ctx, self.ev, &env, &entry.value) {
                Ok(rv) => {
                    let props = prop_of(&table, ri);
                    match &rv {
                        Rv::Set(s) => props.set_eq(s),
                        _ => match rv.as_scalar() {
                            Some(v) => props.contains(&v),
                            None => false,
                        },
                    }
                }
                Err(e) => {
                    result = Err(e);
                    false
                }
            }
        });
        result?;
        Ok(filtered)
    }

    /// Expand rows over one edge pattern.
    #[allow(clippy::too_many_arguments)]
    fn expand_edge(
        &self,
        table: BindingTable,
        prev_var: &str,
        edge_var: &str,
        dst_var: &str,
        edge: &EdgePattern,
        outer: Option<&Env<'_>>,
        structural: &FxHashSet<String>,
    ) -> Result<BindingTable> {
        let prev_idx = table
            .column_index(prev_var)
            .ok_or_else(|| SemanticError::UnboundVariable(prev_var.to_owned()))?;
        let edge_bound = table.column_index(edge_var);
        let dst_bound = table.column_index(dst_var);

        let mut columns = table.columns().to_vec();
        if edge_bound.is_none() {
            columns.push(self.col(edge_var));
        }
        if dst_bound.is_none() {
            columns.push(self.col(dst_var));
        }

        // When the first label group is a single label, enumerate
        // candidates from the label-partitioned adjacency instead of
        // filtering the full adjacency list per edge; that group is then
        // already satisfied and skipped below. An un-interned label means
        // no edge anywhere carries it, so candidates are empty.
        let (index_label, rest_groups): (Option<Option<Label>>, &[LabelDisjunction]) =
            match first_label(&edge.labels) {
                Some(name) => (Some(Label::lookup(&name)), &edge.labels[1..]),
                None => (None, &edge.labels[..]),
            };

        // Candidate enumeration stays zero-copy on the indexed path: the
        // per-(node, label) steps slice already carries the far endpoint,
        // so no per-edge payload lookup happens; the unconstrained path
        // walks the full adjacency list and fetches endpoints.
        let push_out_cands =
            |src: NodeId, cands: &mut Vec<(gcore_ppg::EdgeId, NodeId)>| match index_label {
                Some(Some(l)) => {
                    cands.extend(self.graph.out_steps_with_label(src, l).iter().copied())
                }
                Some(None) => {}
                None => {
                    for &e in self.graph.out_edges(src) {
                        cands.push((e, self.graph.edge(e).expect("adjacent").dst));
                    }
                }
            };
        let push_in_cands =
            |src: NodeId, cands: &mut Vec<(gcore_ppg::EdgeId, NodeId)>| match index_label {
                Some(Some(l)) => {
                    cands.extend(self.graph.in_steps_with_label(src, l).iter().copied())
                }
                Some(None) => {}
                None => {
                    for &e in self.graph.in_edges(src) {
                        cands.push((e, self.graph.edge(e).expect("adjacent").src));
                    }
                }
            };

        let mut bld = TableBuilder::with_pool(columns, table.pool().clone());
        let mut extra: Vec<Bound> = Vec::with_capacity(2);
        let mut tick = 0u32;
        for ri in 0..table.len() {
            self.ev.ctx.cancel.checkpoint(&mut tick)?;
            let Bound::Node(src) = table.bound(ri, prev_idx) else {
                continue;
            };
            // Candidate (edge, other endpoint) pairs, sorted for
            // determinism.
            let mut cands: Vec<(gcore_ppg::EdgeId, NodeId)> = Vec::new();
            match edge.direction {
                Direction::Out => push_out_cands(src, &mut cands),
                Direction::In => push_in_cands(src, &mut cands),
                Direction::Undirected => {
                    push_out_cands(src, &mut cands);
                    let before = cands.len();
                    push_in_cands(src, &mut cands);
                    // Self-loops already expanded forwards: an in-step
                    // whose far endpoint is `src` itself is a self-loop.
                    let mut i = before;
                    while i < cands.len() {
                        if cands[i].1 == src {
                            cands.swap_remove(i);
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            cands.sort_unstable();
            for (e, other) in cands {
                if let Some(i) = edge_bound {
                    if table.code(ri, i) != table.encode_for_probe(&Bound::Edge(e)) {
                        continue;
                    }
                }
                if let Some(i) = dst_bound {
                    if table.code(ri, i) != table.encode_for_probe(&Bound::Node(other)) {
                        continue;
                    }
                }
                extra.clear();
                if edge_bound.is_none() {
                    extra.push(Bound::Edge(e));
                }
                if dst_bound.is_none() {
                    extra.push(Bound::Node(other));
                }
                bld.push_extended(&table, ri, &extra);
            }
        }
        let mut out = bld.finish();
        out = self.filter_labels(out, edge_var, rest_groups)?;
        for entry in &edge.props {
            out = self.apply_prop_entry(out, edge_var, entry, outer, structural)?;
        }
        self.apply_prefilters(out, edge_var, outer)
    }

    /// Expand rows over one path pattern (computed or stored).
    fn expand_path(
        &self,
        table: BindingTable,
        prev_var: &str,
        path_var: &str,
        dst_var: &str,
        pat: &PathPattern,
        _outer: Option<&Env<'_>>,
    ) -> Result<BindingTable> {
        if pat.stored {
            return self.expand_stored_path(table, prev_var, path_var, dst_var, pat);
        }
        let Some(regex) = &pat.regex else {
            return Err(SemanticError::InvalidPathPattern(format!(
                "binding '{path_var}' needs a <regex> (only stored-path patterns may omit it)"
            ))
            .into());
        };
        // Direction handling: In-direction searches with the reversed
        // regex; Undirected unions both orientations.
        let effective = match pat.direction {
            Direction::Out => regex.clone(),
            Direction::In => reverse_regex(regex),
            Direction::Undirected => Regex::Alt(vec![regex.clone(), reverse_regex(regex)]),
        };
        let prof = &self.ev.ctx.profiler;
        let span = prof.start("path-search", || {
            let mode = match pat.mode {
                PathMode::All => "ALL".to_owned(),
                PathMode::Shortest(1) => "shortest".to_owned(),
                PathMode::Shortest(k) => format!("{k}-shortest"),
            };
            format!("{mode} {prev_var}→{dst_var}")
        });
        let nfa = Nfa::compile(&effective);
        let views = self.ev.resolve_views(&nfa, &self.graph)?;
        let searcher =
            PathSearcher::new(&self.graph, &nfa, &views).with_cancel(self.ev.ctx.cancel.clone());

        let prev_idx = table
            .column_index(prev_var)
            .ok_or_else(|| SemanticError::UnboundVariable(prev_var.to_owned()))?;
        let dst_bound = table.column_index(dst_var);
        let binds_path = pat.var.is_some();
        let binds_cost = pat.cost_var.is_some();

        let mut columns = table.columns().to_vec();
        if binds_path {
            columns.push(self.col(path_var));
        }
        if dst_bound.is_none() {
            columns.push(self.col(dst_var));
        }
        if let Some(cv) = &pat.cost_var {
            columns.push(self.col(cv));
        }

        // Pure reachability (`-/<r>/->` with neither path nor cost bound)
        // from several sources shares one product search: collect the
        // distinct sources of rows whose destination is unbound and run
        // the SCC-condensed multi-source reachability once. Rows whose
        // destination *is* bound become single-pair tests, answered by
        // the bidirectional search below.
        //
        // When the NFA is view-free and the graph lives in the engine
        // snapshot, the condensation goes through the snapshot's SCC
        // cache: a later query with the same regex on the same snapshot
        // reuses the per-source destination sets instead of
        // re-condensing. View-bearing NFAs stay uncached (PATH-view
        // segment relations are query-local), as do transient graphs
        // (subquery results, tables viewed as graphs).
        let pure_reach = matches!(pat.mode, PathMode::Shortest(_)) && !binds_path && !binds_cost;
        let shared: Option<FxHashMap<NodeId, Arc<Vec<NodeId>>>> = if pure_reach {
            let mut srcs: Vec<NodeId> = (0..table.len())
                .filter(|&ri| {
                    !dst_bound.is_some_and(|i| matches!(table.bound(ri, i), Bound::Node(_)))
                })
                .filter_map(|ri| match table.bound(ri, prev_idx) {
                    Bound::Node(s) => Some(s),
                    _ => None,
                })
                .collect();
            srcs.sort_unstable();
            srcs.dedup();
            let snapshot = &self.ev.ctx.snapshot;
            let cacheable =
                views.is_empty() && snapshot.catalog().contains_graph_handle(&self.graph);
            if srcs.is_empty() {
                None
            } else if cacheable {
                Some(snapshot.reachable_many_cached(&self.graph, &nfa, &searcher, &srcs))
            } else {
                let threads = self.ev.ctx.parallelism.get();
                (srcs.len() >= 2).then(|| {
                    if threads > 1 && srcs.len() >= PARALLEL_REACH_MIN_SOURCES {
                        reachable_many_parallel(
                            &self.graph,
                            &nfa,
                            &views,
                            &srcs,
                            threads,
                            &self.ev.ctx.cancel,
                        )
                    } else {
                        searcher.reachable_many(&srcs)
                    }
                })
            }
        } else {
            None
        };
        // A fired token makes the shared search bail with partial maps;
        // they must become an error, never an (empty) answer.
        self.ev.ctx.check_cancelled()?;

        // Fixed-endpoint rows: pick the single-pair checking strategy
        // once from the graph's degree statistics. Both strategies
        // answer the identical boolean (`tests/planner_equivalence.rs`
        // pins this), so statistics can never change results.
        let pair_strategy = if self.ev.ctx.planner.get() {
            crate::plan::bound_pair_strategy(self.graph.stats(), Some(&effective))
        } else {
            crate::plan::BoundPairStrategy::Bidirectional
        };
        if dst_bound.is_some() {
            prof.annotate(span, || format!("[{}]", pair_strategy.describe()));
        }

        let mut bld = TableBuilder::with_pool(columns, table.pool().clone());
        let mut extra: Vec<Bound> = Vec::with_capacity(3);
        for ri in 0..table.len() {
            // Every row may run a whole search; poll per row so a row
            // whose search bailed early errors instead of contributing
            // partial matches.
            self.ev.ctx.check_cancelled()?;
            let Bound::Node(src) = table.bound(ri, prev_idx) else {
                continue;
            };
            let targets: Option<FxHashSet<NodeId>> =
                dst_bound.and_then(|i| match table.bound(ri, i) {
                    Bound::Node(d) => {
                        let mut s = FxHashSet::default();
                        s.insert(d);
                        Some(s)
                    }
                    _ => None,
                });

            match pat.mode {
                PathMode::All => {
                    // Graph projection per destination.
                    let dsts: Vec<NodeId> = match &targets {
                        Some(t) => t.iter().copied().collect(),
                        None => searcher.reachable(src),
                    };
                    for dst in dsts {
                        let Some((nodes, edges)) = searcher.all_paths_projection(src, dst) else {
                            continue;
                        };
                        extra.clear();
                        if binds_path {
                            extra.push(self.ev.ctx.add_fresh_path(FreshPath::Projection {
                                src,
                                dst,
                                nodes,
                                edges,
                                graph: self.graph.clone(),
                            }));
                        }
                        if dst_bound.is_none() {
                            extra.push(Bound::Node(dst));
                        }
                        if binds_cost {
                            return Err(SemanticError::InvalidPathPattern(
                                "COST cannot be bound on ALL path patterns".into(),
                            )
                            .into());
                        }
                        bld.push_extended(&table, ri, &extra);
                    }
                }
                PathMode::Shortest(k) if !binds_path && !binds_cost => {
                    // Pure reachability test.
                    let _ = k;
                    let owned;
                    let dsts: &[NodeId] = match &targets {
                        Some(t) => {
                            // The destination is bound: a single-pair
                            // test per candidate, by the strategy the
                            // planner picked above.
                            owned = t
                                .iter()
                                .copied()
                                .filter(|&d| match pair_strategy {
                                    crate::plan::BoundPairStrategy::Bidirectional => {
                                        searcher.reachable_pair(src, d)
                                    }
                                    crate::plan::BoundPairStrategy::ReverseCone => {
                                        searcher.reachable_pair_reverse(src, d)
                                    }
                                })
                                .collect::<Vec<_>>();
                            &owned
                        }
                        None => match &shared {
                            Some(m) => m.get(&src).map(|v| v.as_slice()).unwrap_or(&[]),
                            None => {
                                owned = searcher.reachable(src);
                                &owned
                            }
                        },
                    };
                    for &dst in dsts {
                        extra.clear();
                        if dst_bound.is_none() {
                            extra.push(Bound::Node(dst));
                        }
                        bld.push_extended(&table, ri, &extra);
                    }
                }
                PathMode::Shortest(k) => {
                    let found = searcher.k_shortest(src, k as usize, targets.as_ref());
                    let mut dsts: Vec<NodeId> = found.keys().copied().collect();
                    dsts.sort_unstable();
                    for dst in dsts {
                        for fp in &found[&dst] {
                            extra.clear();
                            if binds_path {
                                extra.push(self.ev.ctx.add_fresh_path(FreshPath::Walk {
                                    shape: fp.walk.clone(),
                                    cost: fp.cost,
                                    weighted: searcher.weighted,
                                    graph: self.graph.clone(),
                                }));
                            }
                            if dst_bound.is_none() {
                                extra.push(Bound::Node(dst));
                            }
                            if binds_cost {
                                extra.push(Bound::Value(if searcher.weighted {
                                    Value::Float(fp.cost)
                                } else {
                                    Value::Int(fp.cost as i64)
                                }));
                            }
                            bld.push_extended(&table, ri, &extra);
                        }
                    }
                }
            }
        }
        // The last row's search may have been cut short after the final
        // loop-head poll.
        self.ev.ctx.check_cancelled()?;
        let out = bld.finish();
        prof.add_counter(span, "frontier_pops", searcher.pops());
        prof.finish_rows(span, out.len() as u64);
        Ok(out)
    }

    /// Match stored paths (`-/@p:Label/->`), optionally checking regex
    /// conformance.
    fn expand_stored_path(
        &self,
        table: BindingTable,
        prev_var: &str,
        path_var: &str,
        dst_var: &str,
        pat: &PathPattern,
    ) -> Result<BindingTable> {
        if pat.mode != PathMode::Shortest(1) {
            return Err(SemanticError::InvalidPathPattern(
                "ALL / k SHORTEST do not apply to stored-path patterns".into(),
            )
            .into());
        }
        let nfa = pat.regex.as_ref().map(Nfa::compile);
        let prev_idx = table
            .column_index(prev_var)
            .ok_or_else(|| SemanticError::UnboundVariable(prev_var.to_owned()))?;
        let path_bound = table.column_index(path_var);
        let dst_bound = table.column_index(dst_var);

        let mut columns = table.columns().to_vec();
        if path_bound.is_none() {
            columns.push(self.col(path_var));
        }
        if dst_bound.is_none() {
            columns.push(self.col(dst_var));
        }

        // Candidate stored paths, filtered by labels once.
        let mut candidates: Vec<gcore_ppg::PathId> = self.graph.path_ids_sorted();
        for group in &pat.labels {
            let resolved: Vec<Option<Label>> = group.0.iter().map(|l| Label::lookup(l)).collect();
            candidates.retain(|&p| {
                resolved
                    .iter()
                    .any(|l| l.is_some_and(|l| self.graph.has_label(p.into(), l)))
            });
        }
        if let Some(nfa) = &nfa {
            candidates.retain(|&p| self.stored_path_conforms(p, nfa));
        }

        let mut bld = TableBuilder::with_pool(columns, table.pool().clone());
        let mut extra: Vec<Bound> = Vec::with_capacity(2);
        let mut tick = 0u32;
        for ri in 0..table.len() {
            self.ev.ctx.cancel.checkpoint(&mut tick)?;
            let Bound::Node(src) = table.bound(ri, prev_idx) else {
                continue;
            };
            for &p in &candidates {
                let shape = &self.graph.path(p).expect("listed path").shape;
                let (a, b) = (shape.start(), shape.end());
                let endpoints_ok = match pat.direction {
                    Direction::Out => a == src,
                    Direction::In => b == src,
                    Direction::Undirected => a == src || b == src,
                };
                if !endpoints_ok {
                    continue;
                }
                let dst = if a == src { b } else { a };
                if let Some(i) = path_bound {
                    if table.code(ri, i) != table.encode_for_probe(&Bound::Path(p)) {
                        continue;
                    }
                }
                if let Some(i) = dst_bound {
                    if table.code(ri, i) != table.encode_for_probe(&Bound::Node(dst)) {
                        continue;
                    }
                }
                extra.clear();
                if path_bound.is_none() {
                    extra.push(Bound::Path(p));
                }
                if dst_bound.is_none() {
                    extra.push(Bound::Node(dst));
                }
                bld.push_extended(&table, ri, &extra);
            }
        }
        Ok(bld.finish())
    }

    /// Does a stored path's walk conform to the regex?
    fn stored_path_conforms(&self, p: gcore_ppg::PathId, nfa: &Nfa) -> bool {
        let shape = &self.graph.path(p).expect("candidate path").shape;
        conforms(&self.graph, shape, nfa)
    }
}

/// Check a concrete walk in `graph` against an NFA.
pub fn conforms(graph: &PathPropertyGraph, shape: &PathShape, nfa: &Nfa) -> bool {
    let node_labels: Vec<Vec<Label>> = shape
        .nodes()
        .iter()
        .map(|&n| graph.labels(n.into()).iter().collect())
        .collect();
    let steps: Vec<(Vec<Label>, bool)> = shape
        .edges()
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            let labels: Vec<Label> = graph.labels(e.into()).iter().collect();
            let (src, _) = graph.endpoints(e).expect("path edge");
            let forward = src == shape.nodes()[i];
            (labels, forward)
        })
        .collect();
    walk_conforms(nfa, &node_labels, &steps)
}

/// Reverse a regular expression: swaps concatenation order and inverts
/// edge directions (`ℓ` ↔ `ℓ⁻`); node tests and views stay in place
/// (views are segment relations whose reversal is handled by swapping
/// lookup direction — we conservatively keep them, which restricts
/// reversed view traversal to symmetric views; asymmetric reversed views
/// simply find fewer paths).
fn reverse_regex(r: &Regex) -> Regex {
    match r {
        Regex::Label(l) => Regex::LabelInv(l.clone()),
        Regex::LabelInv(l) => Regex::Label(l.clone()),
        Regex::NodeTest(_) | Regex::Wildcard | Regex::View(_) => r.clone(),
        Regex::Concat(parts) => Regex::Concat(parts.iter().rev().map(reverse_regex).collect()),
        Regex::Alt(parts) => Regex::Alt(parts.iter().map(reverse_regex).collect()),
        Regex::Star(inner) => Regex::Star(Box::new(reverse_regex(inner))),
        Regex::Plus(inner) => Regex::Plus(Box::new(reverse_regex(inner))),
        Regex::Opt(inner) => Regex::Opt(Box::new(reverse_regex(inner))),
    }
}

/// All node/edge/path/cost variables declared structurally by a pattern.
fn structural_vars(pattern: &Pattern) -> FxHashSet<String> {
    let mut vars = FxHashSet::default();
    fn add_node(vars: &mut FxHashSet<String>, n: &NodePattern) {
        if let Some(v) = &n.var {
            vars.insert(v.text.clone());
        }
    }
    add_node(&mut vars, &pattern.start);
    for step in &pattern.steps {
        add_node(&mut vars, &step.node);
        match &step.connection {
            Connection::Edge(e) => {
                if let Some(v) = &e.var {
                    vars.insert(v.text.clone());
                }
            }
            Connection::Path(p) => {
                if let Some(v) = &p.var {
                    vars.insert(v.text.clone());
                }
                if let Some(c) = &p.cost_var {
                    vars.insert(c.text.clone());
                }
            }
        }
    }
    vars
}

/// Below this many sources the per-thread setup (a fresh searcher and
/// SCC condensation per worker) outweighs the parallel win.
const PARALLEL_REACH_MIN_SOURCES: usize = 64;

/// Multi-source reachability with the source set chunked contiguously
/// across scoped worker threads.
///
/// Each worker builds its own [`PathSearcher`] (the searcher caches
/// its reversed NFA in a non-`Sync` cell) over the same shared graph,
/// NFA and view relations. A source's destination set is a pure
/// function of (graph, NFA, views, source) — independent of which
/// other sources share the call — so merging the workers' disjoint
/// maps reproduces the sequential [`PathSearcher::reachable_many`]
/// result exactly.
fn reachable_many_parallel(
    graph: &Arc<PathPropertyGraph>,
    nfa: &Nfa,
    views: &ViewMap,
    srcs: &[NodeId],
    threads: usize,
    cancel: &crate::cancel::CancelToken,
) -> FxHashMap<NodeId, Arc<Vec<NodeId>>> {
    let threads = threads.min(srcs.len()).max(1);
    let chunk = srcs.len().div_ceil(threads);
    let mut out = FxHashMap::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = srcs
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    PathSearcher::new(graph, nfa, views)
                        .with_cancel(cancel.clone())
                        .reachable_many(part)
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("reachability worker panicked"));
        }
    });
    out
}

fn first_label(groups: &[LabelDisjunction]) -> Option<String> {
    // Only usable as an index when the first group is a single label.
    match groups.first() {
        Some(LabelDisjunction(ls, _)) if ls.len() == 1 => Some(ls[0].clone()),
        _ => None,
    }
}

/// Unused import silencer for RuntimeError (referenced by siblings).
#[allow(unused)]
fn _keep(e: RuntimeError) {}
