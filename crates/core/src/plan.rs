//! Cost-based MATCH planning.
//!
//! The planner sits between parsing and evaluation: it takes one
//! [`MatchClause`] plus the per-graph statistics frozen into the
//! snapshot ([`GraphStats`]) and produces a *rewritten* clause —
//!
//! * **join ordering** — the comma-separated patterns of a MATCH are
//!   natural-joined; the planner picks a greedy least-cardinality order
//!   that prefers patterns sharing variables with the already-planned
//!   prefix, so selective patterns shrink the binding table before
//!   expensive ones touch it;
//! * **IN-conjunct pushdown** — a top-level WHERE conjunct of the shape
//!   `e IN b.key` (with `e` value-bound by some pattern and `b` a
//!   structural node/edge variable) is rewritten into a property entry
//!   `{key = e}` on `b`'s pattern, turning a post-join filter into a
//!   match-time constraint;
//! * **path strategy selection** — for fixed-endpoint path checks the
//!   planner chooses between the bidirectional meet and a reverse-only
//!   cone from the destination, based on the relation's degree
//!   statistics ([`bound_pair_strategy`]).
//!
//! Every rewrite is **semantics-preserving by construction**, never by
//! statistics: stats influence only the *order* and *strategy*, so a
//! plan computed from arbitrary (even adversarial) statistics returns
//! the same bindings as the unplanned evaluation. The differential
//! suite in `tests/planner_equivalence.rs` pins this down.
//!
//! The planned order is observable without running the query through
//! [`Engine::explain`](crate::Engine::explain), which renders the
//! [`MatchPlan`] of every MATCH clause in a statement.

use gcore_parser::ast::{
    Connection, Direction, Expr, FullGraphQuery, LabelDisjunction, Location, MatchClause,
    NodePattern, PathMode, Pattern, PropEntry, Query, QueryBody, QuerySource, Regex, Statement,
};
use gcore_parser::print_located;
use gcore_ppg::hash::FxHashSet;
use gcore_ppg::{GraphStats, Key, Label, PathPropertyGraph};
use std::fmt::Write as _;
use std::sync::Arc;

/// Resolves a pattern's `ON` location to its graph at *plan* time.
///
/// Plan-time resolution must be side-effect free, so implementations
/// return `None` for anything that would require evaluation (ON
/// subqueries, tables viewed as graphs) — the planner then simply has
/// no statistics for that pattern.
pub type PlanResolver<'a> = dyn Fn(Option<&Location>) -> Option<Arc<PathPropertyGraph>> + 'a;

/// Fallback cardinalities used when a graph has no statistics. All
/// constants are deterministic, so plans are stable for a given input.
const DEFAULT_NODES: f64 = 1000.0;
const DEFAULT_EDGE_FAN: f64 = 3.0;
const DEFAULT_PATH_FAN: f64 = 8.0;
const DEFAULT_LABEL_FRACTION: f64 = 0.1;
const DEFAULT_PROP_SELECTIVITY: f64 = 0.1;

/// Degree thresholds for [`bound_pair_strategy`]: prefer the reverse
/// cone only when every backward step has (near-)unique fan-in while
/// the forward expansion branches substantially.
const REVERSE_MAX_BACK_FAN: f64 = 1.5;
const REVERSE_MIN_FWD_FAN: f64 = 3.0;

/// How the matcher resolves a path check between two already-bound
/// endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundPairStrategy {
    /// Bidirectional search meeting in the middle (the default).
    Bidirectional,
    /// Expand a reverse-only cone from the destination and test the
    /// source against it; wins when fan-in is tiny and fan-out large.
    ReverseCone,
}

impl BoundPairStrategy {
    /// Stable human-readable name, shared by the `EXPLAIN` rendering
    /// and `path-search` profile spans.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            BoundPairStrategy::Bidirectional => "bidirectional meet",
            BoundPairStrategy::ReverseCone => "reverse cone",
        }
    }
}

/// One pattern's slot in the planned evaluation order.
#[derive(Clone, Debug)]
pub struct PlannedPattern {
    /// Index of this pattern in the syntactic (source) order.
    pub original_index: usize,
    /// Estimated binding cardinality of the pattern evaluated alone.
    pub estimate: f64,
    /// Variables shared with the already-planned prefix (sorted); the
    /// natural join runs over these columns.
    pub join_vars: Vec<String>,
}

/// The planner's output for one MATCH clause: a rewritten clause plus
/// everything needed to render a stable EXPLAIN.
#[derive(Clone, Debug)]
pub struct MatchPlan {
    /// The clause to evaluate: patterns permuted into planned order,
    /// pushed conjuncts injected as property entries and removed from
    /// the (residual) WHERE. Optionals are never touched.
    pub clause: MatchClause,
    /// Planned order, aligned with `clause.patterns`.
    pub order: Vec<PlannedPattern>,
    /// Whether the planned order differs from the syntactic order.
    pub reordered: bool,
    /// Rendered `e IN b.key` conjuncts that were pushed into patterns.
    pub pushed: Vec<String>,
    /// Number of conjuncts left in the residual WHERE.
    pub residual_conjuncts: usize,
    /// Human-readable notes (why reordering was skipped, etc.).
    pub notes: Vec<String>,
}

impl MatchPlan {
    /// Position in the planned order of the pattern that was
    /// syntactically last. After evaluating in planned order the
    /// ambient graph must be re-pinned to this pattern's graph so WHERE
    /// pattern predicates observe the same graph as the unplanned
    /// evaluation.
    pub fn syntactic_last_position(&self) -> Option<usize> {
        let last = self.clause.patterns.len().checked_sub(1)?;
        self.order.iter().position(|p| p.original_index == last)
    }
}

/// Plan one MATCH clause. Pure: no evaluation, no catalog mutation —
/// `resolve` is only asked for already-materialized graphs.
pub fn plan_match(m: &MatchClause, resolve: &PlanResolver<'_>) -> MatchPlan {
    let mut clause = m.clone();
    let mut notes = Vec::new();

    // --- IN-conjunct pushdown (unconditional: never gated on stats) ---
    let mut pushed = Vec::new();
    let mut residual_conjuncts = 0;
    if let Some(w) = clause.where_clause.take() {
        let mut conjuncts = Vec::new();
        split_and(w, &mut conjuncts);
        let mut residual = Vec::new();
        for c in conjuncts {
            if try_push_in(&c, &mut clause.patterns) {
                pushed.push(gcore_parser::print_expr(&c));
            } else {
                residual.push(c);
            }
        }
        residual_conjuncts = residual.len();
        clause.where_clause = rebuild_and(residual);
    }

    // --- join ordering ---
    let n = clause.patterns.len();
    let graphs: Vec<Option<Arc<PathPropertyGraph>>> = clause
        .patterns
        .iter()
        .map(|lp| resolve(lp.on.as_ref()))
        .collect();
    let estimates: Vec<f64> = clause
        .patterns
        .iter()
        .zip(&graphs)
        .map(|(lp, g)| pattern_estimate(&lp.pattern, g.as_deref().and_then(|g| g.stats())))
        .collect();

    let order: Vec<usize> = if n > 1 && reorder_safe(&clause, &graphs, &mut notes) {
        greedy_order(&clause, &estimates)
    } else {
        (0..n).collect()
    };
    let reordered = order.iter().enumerate().any(|(i, &o)| i != o);

    // Permute the patterns into planned order and record join vars.
    let mut slots: Vec<Option<gcore_parser::ast::LocatedPattern>> =
        clause.patterns.drain(..).map(Some).collect();
    let mut bound: FxHashSet<String> = FxHashSet::default();
    let mut planned = Vec::with_capacity(n);
    let mut order_info = Vec::with_capacity(n);
    for &idx in &order {
        let lp = slots[idx].take().expect("each pattern planned once");
        let vars = pattern_vars(&lp.pattern);
        let mut join_vars: Vec<String> = vars.intersection(&bound).cloned().collect();
        join_vars.sort_unstable();
        bound.extend(vars);
        order_info.push(PlannedPattern {
            original_index: idx,
            estimate: estimates[idx],
            join_vars,
        });
        planned.push(lp);
    }
    clause.patterns = planned;

    MatchPlan {
        clause,
        order: order_info,
        reordered,
        pushed,
        residual_conjuncts,
        notes,
    }
}

/// Split an expression into its top-level AND conjuncts (owned).
fn split_and(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(gcore_parser::ast::BinaryOp::And, a, b) => {
            split_and(*a, out);
            split_and(*b, out);
        }
        other => out.push(other),
    }
}

/// Re-join conjuncts left-associatively, mirroring the parser.
fn rebuild_and(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts
        .into_iter()
        .reduce(|acc, c| Expr::Binary(gcore_parser::ast::BinaryOp::And, Box::new(acc), Box::new(c)))
}

/// Try to rewrite one conjunct `e IN b.key` into a `{key = e}` property
/// entry on `b`'s pattern. Sound iff:
///
/// * `e` is a plain variable that is **value-bound** (appears as a
///   plain-variable property entry on some main pattern) and is not a
///   structural variable anywhere — so the column `e` exists with the
///   same unrolled values in both the original and rewritten clause;
/// * `b` is a structural **node or edge** variable of a main pattern
///   (paths carry no matchable properties).
///
/// The injected entry evaluates in filter form when `e` is already
/// bound in its pattern (exactly the IN membership test) and in binding
/// form otherwise, where the natural join on column `e` restores the
/// same membership semantics. Binding tables are sets, so the unroll
/// introduces no multiplicity.
fn try_push_in(c: &Expr, patterns: &mut [gcore_parser::ast::LocatedPattern]) -> bool {
    let Expr::Binary(gcore_parser::ast::BinaryOp::In, lhs, rhs) = c else {
        return false;
    };
    let Expr::Var(e) = lhs.as_ref() else {
        return false;
    };
    let Expr::Prop(base, key) = rhs.as_ref() else {
        return false;
    };
    let Expr::Var(b) = base.as_ref() else {
        return false;
    };

    let mut value_bound = false;
    for lp in patterns.iter() {
        if structural_vars(&lp.pattern).contains(e.as_str()) {
            return false; // `e` names an element, not a value
        }
        if prop_value_vars(&lp.pattern).contains(e.as_str()) {
            value_bound = true;
        }
    }
    if !value_bound {
        return false;
    }

    for lp in patterns.iter_mut() {
        let entry = PropEntry {
            key: gcore_parser::ast::Ident::new(key.clone(), gcore_parser::token::Span::new(0, 0)),
            value: Expr::Var(e.clone()),
        };
        let pat = &mut lp.pattern;
        if pat.start.var.as_ref().is_some_and(|v| v.text == b.text) {
            pat.start.props.push(entry);
            return true;
        }
        for step in &mut pat.steps {
            if step.node.var.as_ref().is_some_and(|v| v.text == b.text) {
                step.node.props.push(entry);
                return true;
            }
            if let Connection::Edge(edge) = &mut step.connection {
                if edge.var.as_ref().is_some_and(|v| v.text == b.text) {
                    edge.props.push(entry);
                    return true;
                }
            }
        }
    }
    false
}

/// Is it safe to evaluate this clause's patterns in a different order?
///
/// Pattern evaluation is standalone-then-join, so most clauses commute;
/// the exceptions all involve query-global state mutated per pattern:
///
/// * fresh-path arena allocations (`Bound::FreshPath` carries an arena
///   *index*, so allocation order is observable) — path connections
///   must be stored, or pure reachability checks that bind neither the
///   path nor its cost;
/// * the ambient graph read by EXISTS / pattern predicates inside
///   property entries (the residual WHERE is safe: evaluation re-pins
///   the ambient graph of the syntactically last pattern);
/// * `ON` locations the plan-time resolver cannot see (subqueries,
///   tables viewed as graphs — the latter draw node identities in
///   evaluation order).
fn reorder_safe(
    clause: &MatchClause,
    graphs: &[Option<Arc<PathPropertyGraph>>],
    notes: &mut Vec<String>,
) -> bool {
    for (lp, g) in clause.patterns.iter().zip(graphs) {
        if g.is_none() {
            notes.push("order kept: a pattern's ON location is not a named graph".into());
            return false;
        }
        for step in &lp.pattern.steps {
            if let Connection::Path(pp) = &step.connection {
                let pure_reach = pp.var.is_none()
                    && pp.cost_var.is_none()
                    && matches!(pp.mode, PathMode::Shortest(_));
                if !pp.stored && !pure_reach {
                    notes.push("order kept: a path pattern materializes fresh paths".into());
                    return false;
                }
            }
        }
        if pattern_prop_exprs(&lp.pattern).any(contains_subquery) {
            notes.push("order kept: a property entry contains a subquery".into());
            return false;
        }
    }
    true
}

fn contains_subquery(e: &Expr) -> bool {
    match e {
        Expr::Exists(_) | Expr::PatternPredicate(_) => true,
        Expr::Prop(a, _) | Expr::LabelTest(a, _) | Expr::Unary(_, a) => contains_subquery(a),
        Expr::Index(a, b) | Expr::Binary(_, a, b) => contains_subquery(a) || contains_subquery(b),
        Expr::Func(_, args) => args.iter().any(contains_subquery),
        Expr::Aggregate { arg, .. } => arg.as_deref().is_some_and(contains_subquery),
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            operand.as_deref().is_some_and(contains_subquery)
                || whens
                    .iter()
                    .any(|(c, r)| contains_subquery(c) || contains_subquery(r))
                || else_.as_deref().is_some_and(contains_subquery)
        }
        _ => false,
    }
}

/// Greedy least-cardinality ordering: seed with the cheapest pattern,
/// then repeatedly take the cheapest pattern *connected* to the already
/// chosen prefix (sharing at least one variable), falling back to the
/// cheapest disconnected one (a cross product either way). Ties break
/// on the syntactic index, so plans are deterministic.
fn greedy_order(clause: &MatchClause, estimates: &[f64]) -> Vec<usize> {
    let vars: Vec<FxHashSet<String>> = clause
        .patterns
        .iter()
        .map(|lp| pattern_vars(&lp.pattern))
        .collect();
    let n = clause.patterns.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound: FxHashSet<String> = FxHashSet::default();
    while !remaining.is_empty() {
        let connected = |&i: &usize| !bound.is_disjoint(&vars[i]);
        let candidates: Vec<usize> = if order.is_empty() {
            remaining.clone()
        } else {
            let c: Vec<usize> = remaining.iter().copied().filter(|i| connected(i)).collect();
            if c.is_empty() {
                remaining.clone()
            } else {
                c
            }
        };
        let pick = candidates
            .into_iter()
            .min_by(|&a, &b| estimates[a].total_cmp(&estimates[b]).then(a.cmp(&b)))
            .expect("non-empty candidates");
        remaining.retain(|&i| i != pick);
        bound.extend(vars[pick].iter().cloned());
        order.push(pick);
    }
    order
}

/// All node/edge/path/cost variables declared structurally.
fn structural_vars(pattern: &Pattern) -> FxHashSet<String> {
    let mut vars = FxHashSet::default();
    for n in pattern.nodes() {
        if let Some(v) = &n.var {
            vars.insert(v.text.clone());
        }
    }
    for step in &pattern.steps {
        match &step.connection {
            Connection::Edge(e) => {
                if let Some(v) = &e.var {
                    vars.insert(v.text.clone());
                }
            }
            Connection::Path(p) => {
                if let Some(v) = &p.var {
                    vars.insert(v.text.clone());
                }
                if let Some(c) = &p.cost_var {
                    vars.insert(c.text.clone());
                }
            }
        }
    }
    vars
}

/// Variables appearing as plain-variable property-entry values
/// (`{key = e}`): these become value columns of the pattern's table.
fn prop_value_vars(pattern: &Pattern) -> FxHashSet<String> {
    let mut vars = FxHashSet::default();
    for e in pattern_prop_exprs(pattern) {
        if let Expr::Var(v) = e {
            vars.insert(v.text.clone());
        }
    }
    vars
}

/// Every property-entry value expression of a pattern.
fn pattern_prop_exprs(pattern: &Pattern) -> impl Iterator<Item = &Expr> {
    let node_props = pattern.nodes().flat_map(|n| n.props.iter());
    let edge_props = pattern.steps.iter().flat_map(|s| match &s.connection {
        Connection::Edge(e) => e.props.iter(),
        Connection::Path(_) => [].iter(),
    });
    node_props.chain(edge_props).map(|p| &p.value)
}

/// All join-relevant variables of a pattern: structural variables plus
/// plain-variable property values (both become columns).
fn pattern_vars(pattern: &Pattern) -> FxHashSet<String> {
    let mut vars = structural_vars(pattern);
    vars.extend(prop_value_vars(pattern));
    vars
}

// ---------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------

/// Estimated number of bindings for one pattern evaluated standalone:
/// start-node cardinality times the fan-out of each step, each scaled
/// by the selectivity of labels and constant property filters.
fn pattern_estimate(pattern: &Pattern, stats: Option<&GraphStats>) -> f64 {
    let mut est = node_cardinality(&pattern.start, stats);
    for step in &pattern.steps {
        let fan = match &step.connection {
            Connection::Edge(e) => edge_fan(e, stats),
            Connection::Path(_) => path_fan(stats),
        };
        est *= fan * node_selectivity(&step.node, stats);
    }
    est
}

/// Expected nodes matching a node pattern.
fn node_cardinality(np: &NodePattern, stats: Option<&GraphStats>) -> f64 {
    let base = match stats {
        Some(s) => label_cardinality(&np.labels, s),
        None => {
            if np.labels.is_empty() {
                DEFAULT_NODES
            } else {
                DEFAULT_NODES * DEFAULT_LABEL_FRACTION
            }
        }
    };
    base * prop_filter_selectivity(&np.props, stats, true)
}

/// Fraction of candidate nodes surviving a node pattern's label and
/// property constraints (for non-start nodes, whose candidates come
/// from a traversal rather than a scan).
fn node_selectivity(np: &NodePattern, stats: Option<&GraphStats>) -> f64 {
    let label_frac = match stats {
        Some(s) if s.node_count > 0 => {
            (label_cardinality(&np.labels, s) / s.node_count as f64).min(1.0)
        }
        Some(_) => 1.0,
        None => {
            if np.labels.is_empty() {
                1.0
            } else {
                DEFAULT_LABEL_FRACTION
            }
        }
    };
    label_frac * prop_filter_selectivity(&np.props, stats, true)
}

/// Nodes carrying every label group (min over groups; alternatives in a
/// group sum).
fn label_cardinality(groups: &[LabelDisjunction], stats: &GraphStats) -> f64 {
    let total = stats.node_count as f64;
    groups
        .iter()
        .map(|LabelDisjunction(names, _)| {
            names
                .iter()
                .map(|name| match Label::lookup(name) {
                    Some(l) => stats.nodes_with_label(l) as f64,
                    None => 0.0,
                })
                .sum::<f64>()
        })
        .fold(total, f64::min)
}

/// Combined equality selectivity of the *filter-form* property entries
/// (constant values). Plain-variable entries bind rather than filter,
/// so they contribute nothing.
fn prop_filter_selectivity(props: &[PropEntry], stats: Option<&GraphStats>, on_nodes: bool) -> f64 {
    let mut sel = 1.0;
    for p in props {
        if matches!(p.value, Expr::Var(_)) {
            continue;
        }
        sel *= match stats {
            Some(s) => {
                let ps = Key::lookup(p.key.as_str()).and_then(|k| {
                    if on_nodes {
                        s.node_prop(k)
                    } else {
                        s.edge_prop(k)
                    }
                });
                match ps {
                    Some(ps) => ps.eq_selectivity(),
                    None => DEFAULT_PROP_SELECTIVITY,
                }
            }
            None => DEFAULT_PROP_SELECTIVITY,
        };
    }
    sel
}

/// Expected successors per node through one edge step.
fn edge_fan(e: &gcore_parser::ast::EdgePattern, stats: Option<&GraphStats>) -> f64 {
    let fan = match stats {
        Some(s) => match single_label(&e.labels) {
            Some(name) => match Label::lookup(&name).and_then(|l| s.edge_relation(l)) {
                Some(rel) => match e.direction {
                    Direction::Out => rel.avg_out_degree(),
                    Direction::In => rel.avg_in_degree(),
                    Direction::Undirected => rel.avg_out_degree() + rel.avg_in_degree(),
                },
                None => 0.0,
            },
            None => {
                let per_node = if s.node_count > 0 {
                    s.edge_count as f64 / s.node_count as f64
                } else {
                    0.0
                };
                match e.direction {
                    Direction::Undirected => 2.0 * per_node,
                    _ => per_node,
                }
            }
        },
        None => DEFAULT_EDGE_FAN,
    };
    fan * prop_filter_selectivity(&e.props, stats, false)
}

/// Crude fan-out of a path step: reachability typically spans a large
/// multiple of a single edge step; without better information, a flat
/// constant keeps plans stable.
fn path_fan(_stats: Option<&GraphStats>) -> f64 {
    DEFAULT_PATH_FAN
}

fn single_label(groups: &[LabelDisjunction]) -> Option<String> {
    match groups {
        [LabelDisjunction(names, _)] if names.len() == 1 => Some(names[0].clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Bound-pair path strategy
// ---------------------------------------------------------------------

/// Choose how to verify conformance between two already-bound path
/// endpoints. Statistics only ever flip the *strategy* — both
/// strategies answer the identical boolean — so this is safe to apply
/// with arbitrary stats.
pub fn bound_pair_strategy(stats: Option<&GraphStats>, regex: Option<&Regex>) -> BoundPairStrategy {
    let (Some(stats), Some(regex)) = (stats, regex) else {
        return BoundPairStrategy::Bidirectional;
    };
    let mut fans = Vec::new();
    if !collect_fans(regex, stats, &mut fans) || fans.is_empty() {
        return BoundPairStrategy::Bidirectional;
    }
    let max_back = fans.iter().map(|f| f.1).fold(0.0_f64, f64::max);
    let max_fwd = fans.iter().map(|f| f.0).fold(0.0_f64, f64::max);
    if max_back <= REVERSE_MAX_BACK_FAN && max_fwd >= REVERSE_MIN_FWD_FAN {
        BoundPairStrategy::ReverseCone
    } else {
        BoundPairStrategy::Bidirectional
    }
}

/// Collect `(forward, backward)` fan per regex base symbol; `false`
/// means the regex contains a piece (a PATH view) whose degrees the
/// stats cannot describe.
fn collect_fans(r: &Regex, stats: &GraphStats, out: &mut Vec<(f64, f64)>) -> bool {
    let rel_fans = |name: &str| match Label::lookup(name).and_then(|l| stats.edge_relation(l)) {
        Some(rel) => (rel.avg_out_degree(), rel.avg_in_degree()),
        None => (0.0, 0.0),
    };
    match r {
        Regex::Label(l) => {
            out.push(rel_fans(l));
            true
        }
        Regex::LabelInv(l) => {
            let (fwd, back) = rel_fans(l);
            out.push((back, fwd));
            true
        }
        Regex::NodeTest(_) => true,
        Regex::Wildcard => {
            let per_node = if stats.node_count > 0 {
                stats.edge_count as f64 / stats.node_count as f64
            } else {
                0.0
            };
            out.push((per_node, per_node));
            true
        }
        Regex::View(_) => false,
        Regex::Concat(parts) | Regex::Alt(parts) => {
            parts.iter().all(|p| collect_fans(p, stats, out))
        }
        Regex::Star(inner) | Regex::Plus(inner) | Regex::Opt(inner) => {
            collect_fans(inner, stats, out)
        }
    }
}

// ---------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------

/// Render the plan of every MATCH clause in a statement, in evaluation
/// order. Subqueries (inside EXISTS, ON, or query heads) evaluate
/// unplanned and are not shown. The output is deterministic for a given
/// statement and catalog — golden tests pin it.
pub fn explain_statement(stmt: &Statement, resolve: &PlanResolver<'_>) -> String {
    let mut out = String::new();
    match stmt {
        Statement::Query(q) => explain_query(q, resolve, &mut out),
        Statement::GraphView { name, query } => {
            let _ = writeln!(out, "GRAPH VIEW {name}:");
            explain_query(query, resolve, &mut out);
        }
    }
    if out.is_empty() {
        out.push_str("no MATCH clause to plan\n");
    }
    out
}

fn explain_query(q: &Query, resolve: &PlanResolver<'_>, out: &mut String) {
    match &q.body {
        QueryBody::Graph(g) => explain_full_graph(g, resolve, out),
        QueryBody::Select(s) => render_match(&s.match_clause, resolve, out),
    }
}

fn explain_full_graph(q: &FullGraphQuery, resolve: &PlanResolver<'_>, out: &mut String) {
    match q {
        FullGraphQuery::Basic(b) => {
            if let QuerySource::Match(m) = &b.source {
                render_match(m, resolve, out);
            }
        }
        FullGraphQuery::SetOp { left, right, .. } => {
            explain_full_graph(left, resolve, out);
            explain_full_graph(right, resolve, out);
        }
    }
}

fn render_match(m: &MatchClause, resolve: &PlanResolver<'_>, out: &mut String) {
    if m.patterns.is_empty() && m.where_clause.is_none() && m.optionals.is_empty() {
        return;
    }
    let plan = plan_match(m, resolve);
    let order_desc = if plan.reordered {
        let idxs: Vec<String> = plan
            .order
            .iter()
            .map(|p| p.original_index.to_string())
            .collect();
        format!("reordered: {}", idxs.join(", "))
    } else {
        "syntactic order".to_string()
    };
    let _ = writeln!(
        out,
        "MATCH: {} pattern{} ({order_desc})",
        plan.order.len(),
        if plan.order.len() == 1 { "" } else { "s" },
    );
    for (i, (slot, lp)) in plan.order.iter().zip(&plan.clause.patterns).enumerate() {
        let join = if slot.join_vars.is_empty() {
            String::new()
        } else {
            format!("  join on {{{}}}", slot.join_vars.join(", "))
        };
        let _ = writeln!(
            out,
            "  {}. {}  ~{} rows{join}",
            i + 1,
            print_located(lp),
            format_estimate(slot.estimate),
        );
        for step in &lp.pattern.steps {
            if let Connection::Path(pp) = &step.connection {
                if pp.stored {
                    continue;
                }
                let graph = resolve(lp.on.as_ref());
                let strategy = bound_pair_strategy(
                    graph.as_deref().and_then(|g| g.stats()),
                    pp.regex.as_ref(),
                );
                let _ = writeln!(
                    out,
                    "     path step: bound-pair strategy = {}",
                    strategy.describe()
                );
            }
        }
    }
    for p in &plan.pushed {
        let _ = writeln!(out, "  pushed into pattern: {p}");
    }
    if plan.residual_conjuncts > 0 {
        let _ = writeln!(
            out,
            "  residual WHERE: {} conjunct{}",
            plan.residual_conjuncts,
            if plan.residual_conjuncts == 1 {
                ""
            } else {
                "s"
            },
        );
    }
    for note in &plan.notes {
        let _ = writeln!(out, "  note: {note}");
    }
    for opt in &m.optionals {
        let _ = writeln!(
            out,
            "  OPTIONAL: {} pattern{} (unplanned)",
            opt.patterns.len(),
            if opt.patterns.len() == 1 { "" } else { "s" },
        );
    }
}

/// Round an estimate for display; huge or non-finite estimates clamp.
fn format_estimate(x: f64) -> String {
    if !x.is_finite() || x >= 1e15 {
        "1e15+".to_string()
    } else {
        format!("{}", x.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_parser::parse_query;
    use gcore_ppg::{Attributes, GraphBuilder};

    fn clause_of(src: &str) -> MatchClause {
        let q = parse_query(src).unwrap();
        match q.body {
            QueryBody::Graph(FullGraphQuery::Basic(b)) => match b.source {
                QuerySource::Match(m) => m,
                _ => panic!("expected MATCH"),
            },
            _ => panic!("expected basic graph query"),
        }
    }

    fn people_graph() -> Arc<PathPropertyGraph> {
        let mut b = GraphBuilder::standalone();
        let mut person = Vec::new();
        for i in 0..20 {
            person.push(b.node(Attributes::labeled("Person").with_prop("personId", i64::from(i))));
        }
        let hub = b.node(Attributes::labeled("City"));
        for &p in &person {
            b.edge(p, hub, Attributes::labeled("isLocatedIn"));
        }
        let mut g = b.build();
        g.build_stats();
        Arc::new(g)
    }

    fn resolver(
        g: Arc<PathPropertyGraph>,
    ) -> impl Fn(Option<&Location>) -> Option<Arc<PathPropertyGraph>> {
        move |on| match on {
            None | Some(Location::Named(_)) => Some(g.clone()),
            Some(Location::Subquery(_)) => None,
        }
    }

    #[test]
    fn selective_pattern_is_planned_first() {
        let g = people_graph();
        let m = clause_of("CONSTRUCT (c) MATCH (n:Person), (c:City)");
        let plan = plan_match(&m, &resolver(g));
        // City (1 node) beats Person (20 nodes).
        assert!(plan.reordered);
        assert_eq!(plan.order[0].original_index, 1);
        assert_eq!(plan.order[1].original_index, 0);
    }

    #[test]
    fn connected_patterns_beat_cheaper_cross_products() {
        let g = people_graph();
        let m = clause_of(
            "CONSTRUCT (c) MATCH (n:Person {employer = e}), (c:City), (m:Person {employer = e})",
        );
        let plan = plan_match(&m, &resolver(g));
        // The seed is the cheapest pattern (City); after that both
        // Person patterns join each other on `e` but not City, so the
        // planner still prefers a connected expansion once one Person
        // pattern enters the prefix.
        let pos = |orig: usize| {
            plan.order
                .iter()
                .position(|p| p.original_index == orig)
                .unwrap()
        };
        assert_eq!(plan.order[0].original_index, 1);
        // The two Person patterns must be adjacent (joined on `e`).
        assert_eq!((pos(0) as i64 - pos(2) as i64).abs(), 1);
    }

    #[test]
    fn in_conjunct_is_pushed() {
        let g = people_graph();
        let m = clause_of(
            "CONSTRUCT (b) MATCH (a:Person {employer = e}), (b:Person) \
             WHERE e IN b.employer AND a.personId < 3",
        );
        let plan = plan_match(&m, &resolver(g));
        assert_eq!(plan.pushed.len(), 1);
        assert_eq!(plan.residual_conjuncts, 1);
        // The entry landed on b's pattern.
        let b_pat = plan
            .clause
            .patterns
            .iter()
            .find(|lp| lp.pattern.start.var.as_ref().is_some_and(|v| v.text == "b"))
            .unwrap();
        assert!(b_pat
            .pattern
            .start
            .props
            .iter()
            .any(|p| p.key.as_str() == "employer"
                && matches!(&p.value, Expr::Var(v) if v.text == "e")));
    }

    #[test]
    fn structural_in_lhs_is_not_pushed() {
        let g = people_graph();
        // `n` is structural: `n IN b.member` must stay in WHERE.
        let m = clause_of("CONSTRUCT (b) MATCH (n:Person), (b:Team) WHERE n IN b.member");
        let plan = plan_match(&m, &resolver(g));
        assert!(plan.pushed.is_empty());
        assert_eq!(plan.residual_conjuncts, 1);
    }

    #[test]
    fn subquery_location_disables_reordering() {
        let g = people_graph();
        let m =
            clause_of("CONSTRUCT (c) MATCH (n:Person), (c:City) ON (CONSTRUCT (x) MATCH (x:City))");
        let plan = plan_match(&m, &resolver(g));
        assert!(!plan.reordered);
        assert!(!plan.notes.is_empty());
    }

    #[test]
    fn fresh_path_patterns_disable_reordering() {
        let g = people_graph();
        let m = clause_of("CONSTRUCT (c) MATCH (n:Person)-/p<:knows*>/->(m), (c:City)");
        let plan = plan_match(&m, &resolver(g.clone()));
        assert!(!plan.reordered);
        // A pure reachability check reorders fine.
        let m2 = clause_of("CONSTRUCT (c) MATCH (n:Person)-/<:knows*>/->(m), (c:City)");
        let plan2 = plan_match(&m2, &resolver(g));
        assert!(plan2.reordered);
    }

    #[test]
    fn reverse_cone_prefers_tiny_fan_in() {
        // 20 persons all located in one city: isLocatedIn has fan-out
        // 1 per person but fan-in 20 at the city. Going backwards over
        // the *inverse* label is the cheap direction.
        let g = people_graph();
        let stats = g.stats();
        let fwd = Regex::Label("isLocatedIn".into());
        // forward fan 1.0, backward fan 20.0 → bidirectional.
        assert_eq!(
            bound_pair_strategy(stats, Some(&fwd)),
            BoundPairStrategy::Bidirectional
        );
        let inv = Regex::LabelInv("isLocatedIn".into());
        // forward fan 20.0, backward fan 1.0 → reverse cone.
        assert_eq!(
            bound_pair_strategy(stats, Some(&inv)),
            BoundPairStrategy::ReverseCone
        );
        // No stats → always bidirectional.
        assert_eq!(
            bound_pair_strategy(None, Some(&inv)),
            BoundPairStrategy::Bidirectional
        );
    }

    #[test]
    fn explain_renders_deterministically() {
        let g = people_graph();
        let stmt = gcore_parser::parse_statement(
            "CONSTRUCT (c) MATCH (n:Person), (c:City) WHERE n.personId < 3",
        )
        .unwrap();
        let r = resolver(g);
        let a = explain_statement(&stmt, &r);
        let b = explain_statement(&stmt, &r);
        assert_eq!(a, b);
        assert!(a.contains("reordered: 1, 0"), "got:\n{a}");
        assert!(a.contains("residual WHERE: 1 conjunct"), "got:\n{a}");
    }
}
