//! Bindings and binding tables — §A.1 of the paper.
//!
//! A binding µ is a partial function from variables to node, edge and path
//! identifiers (extended with literal values for the `{k = e}` unrolling
//! and `COST c`). A [`BindingTable`] is a *set* Ω of bindings with the four
//! operations the appendix defines:
//!
//! * Ω₁ ∪ Ω₂ — union,
//! * Ω₁ ⋈ Ω₂ — natural join of compatible bindings,
//! * Ω₁ ⋉ Ω₂ — semijoin,
//! * Ω₁ ∖ Ω₂ — antijoin,
//! * Ω₁ ⟕ Ω₂ = (Ω₁ ⋈ Ω₂) ∪ (Ω₁ ∖ Ω₂) — left outer join (OPTIONAL).
//!
//! Tables are kept sorted and deduplicated (set semantics), which also
//! makes every downstream result deterministic.

use gcore_ppg::{EdgeId, NodeId, PathId, PathPropertyGraph, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A value bound to a variable.
#[derive(Clone, PartialEq, Debug)]
pub enum Bound {
    /// Left-outer-join padding: the variable is unbound in this row.
    Missing,
    /// A node identifier binding.
    Node(NodeId),
    /// An edge identifier binding.
    Edge(EdgeId),
    /// A stored path of the graph (an element of `P`).
    Path(PathId),
    /// A path computed by a path pattern; index into the evaluation
    /// context's fresh-path arena.
    FreshPath(usize),
    /// A literal value (property unrolling, COST variables, FROM columns).
    Value(Value),
}

impl Bound {
    /// Is this a padding entry?
    pub fn is_missing(&self) -> bool {
        matches!(self, Bound::Missing)
    }

    fn rank(&self) -> u8 {
        match self {
            Bound::Missing => 0,
            Bound::Node(_) => 1,
            Bound::Edge(_) => 2,
            Bound::Path(_) => 3,
            Bound::FreshPath(_) => 4,
            Bound::Value(_) => 5,
        }
    }
}

impl Eq for Bound {}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> Ordering {
        use Bound::*;
        match (self, other) {
            (Node(a), Node(b)) => a.cmp(b),
            (Edge(a), Edge(b)) => a.cmp(b),
            (Path(a), Path(b)) => a.cmp(b),
            (FreshPath(a), FreshPath(b)) => a.cmp(b),
            (Value(a), Value(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A column of a binding table: the variable name and the graph its
/// element attributes resolve against (λ and σ are per-graph, and views
/// may give the *same identity* different properties — e.g.
/// `nr_messages` exists on `social_graph1`'s knows edges but not on
/// `social_graph`'s).
#[derive(Clone, Debug)]
pub struct Column {
    /// The variable name.
    pub var: String,
    /// The graph whose λ/σ this column's elements resolve against.
    pub graph: Arc<PathPropertyGraph>,
}

/// A set of bindings Ω over a common schema.
///
/// Invariants: rows are sorted, deduplicated, and every row has exactly
/// `columns.len()` entries.
#[derive(Clone, Debug)]
pub struct BindingTable {
    columns: Vec<Column>,
    rows: Vec<Vec<Bound>>,
}

impl BindingTable {
    /// The *unit* table: one binding µ∅ with empty domain. This is the
    /// identity of ⋈ and the seed for CONSTRUCT-without-MATCH.
    pub fn unit() -> Self {
        BindingTable {
            columns: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// The empty table (no bindings at all) over an empty schema.
    pub fn empty() -> Self {
        BindingTable {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// A table with the given columns and rows. Rows are normalized
    /// (sorted + deduplicated).
    pub fn new(columns: Vec<Column>, mut rows: Vec<Vec<Bound>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == columns.len()));
        rows.sort();
        rows.dedup();
        BindingTable { columns, rows }
    }

    /// A table that keeps the given row order (no sorting, no dedup).
    /// Used when row indexes must stay aligned with another table —
    /// e.g. the CONSTRUCT staging extension of the match bindings.
    pub fn raw(columns: Vec<Column>, rows: Vec<Vec<Bound>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == columns.len()));
        BindingTable { columns, rows }
    }

    /// Column metadata.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Variable names, in column order.
    pub fn var_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.var.as_str()).collect()
    }

    /// The rows (sorted, deduplicated).
    pub fn rows(&self) -> &[Vec<Bound>] {
        &self.rows
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when Ω = ∅.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a variable's column.
    pub fn column_index(&self, var: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.var == var)
    }

    /// The binding of `var` in `row` (`None` if the column is absent;
    /// `Some(Missing)` if padded).
    pub fn get<'a>(&self, row: &'a [Bound], var: &str) -> Option<&'a Bound> {
        self.column_index(var).map(|i| &row[i])
    }

    /// Does any row bind `var` to a non-missing value?
    pub fn binds(&self, var: &str) -> bool {
        self.column_index(var).is_some()
    }

    /// Keep only rows satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(&[Bound]) -> bool) -> BindingTable {
        BindingTable {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Project to a subset of variables (dropping others, deduplicating).
    pub fn project(&self, vars: &[&str]) -> BindingTable {
        let idxs: Vec<usize> = vars.iter().filter_map(|v| self.column_index(v)).collect();
        let columns = idxs.iter().map(|&i| self.columns[i].clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
            .collect();
        BindingTable::new(columns, rows)
    }

    /// Add a column computed from each existing row. The new column may
    /// fan out (0..n values per row).
    pub fn extend_column(
        &self,
        column: Column,
        mut f: impl FnMut(&[Bound]) -> Vec<Bound>,
    ) -> BindingTable {
        let mut columns = self.columns.clone();
        columns.push(column);
        let mut rows = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            for v in f(row) {
                let mut new_row = row.clone();
                new_row.push(v);
                rows.push(new_row);
            }
        }
        BindingTable::new(columns, rows)
    }

    /// Ω₁ ∪ Ω₂. Schemas are aligned by union of variables; rows missing a
    /// column are padded with `Missing`.
    pub fn union(&self, other: &BindingTable) -> BindingTable {
        let (columns, map_a, map_b) = merged_schema(self, other);
        let width = columns.len();
        let mut rows = Vec::with_capacity(self.rows.len() + other.rows.len());
        for r in &self.rows {
            rows.push(remap(r, &map_a, width));
        }
        for r in &other.rows {
            rows.push(remap(r, &map_b, width));
        }
        BindingTable::new(columns, rows)
    }

    /// Ω₁ ⋈ Ω₂ — all unions µ₁ ∪ µ₂ of compatible bindings.
    ///
    /// `Missing` is treated as "unbound": compatible with anything, and
    /// the non-missing side wins in the merged row. This matches the
    /// partial-function reading of §A.1.
    pub fn join(&self, other: &BindingTable) -> BindingTable {
        self.join_inner(other, JoinKind::Inner)
    }

    /// Ω₁ ⋉ Ω₂ — bindings of Ω₁ compatible with at least one of Ω₂.
    pub fn semijoin(&self, other: &BindingTable) -> BindingTable {
        self.join_inner(other, JoinKind::Semi)
    }

    /// Ω₁ ∖ Ω₂ — bindings of Ω₁ compatible with none of Ω₂.
    pub fn antijoin(&self, other: &BindingTable) -> BindingTable {
        self.join_inner(other, JoinKind::Anti)
    }

    /// Ω₁ ⟕ Ω₂ = (Ω₁ ⋈ Ω₂) ∪ (Ω₁ ∖ Ω₂) — the OPTIONAL operator.
    pub fn left_outer_join(&self, other: &BindingTable) -> BindingTable {
        let joined = self.join(other);
        let anti = self.antijoin(other);
        joined.union(&anti)
    }

    fn join_inner(&self, other: &BindingTable, kind: JoinKind) -> BindingTable {
        // Shared variables drive a hash join; rows with Missing in a
        // shared column fall back to a scan bucket (they are compatible
        // with every key).
        let shared: Vec<(usize, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| other.column_index(&c.var).map(|j| (i, j)))
            .collect();

        let (columns, map_a, map_b) = merged_schema(self, other);
        let width = columns.len();

        // Partition `other` rows: fully-keyed rows go into the hash map;
        // rows with a Missing shared column are checked by scan.
        let mut keyed: BTreeMap<Vec<Bound>, Vec<usize>> = BTreeMap::new();
        let mut wild: Vec<usize> = Vec::new();
        for (idx, row) in other.rows.iter().enumerate() {
            let key: Vec<Bound> = shared.iter().map(|&(_, j)| row[j].clone()).collect();
            if key.iter().any(Bound::is_missing) {
                wild.push(idx);
            } else {
                keyed.entry(key).or_default().push(idx);
            }
        }

        let mut rows = Vec::new();
        for a_row in &self.rows {
            let key: Vec<Bound> = shared.iter().map(|&(i, _)| a_row[i].clone()).collect();
            let mut matched = false;
            let emit = |b_idx: usize, rows: &mut Vec<Vec<Bound>>| {
                let b_row = &other.rows[b_idx];
                if !compatible(a_row, b_row, &shared) {
                    return false;
                }
                if kind == JoinKind::Inner {
                    let mut merged = remap(a_row, &map_a, width);
                    for (bi, &mi) in map_b.iter().enumerate() {
                        if merged[mi].is_missing() {
                            merged[mi] = b_row[bi].clone();
                        }
                    }
                    rows.push(merged);
                }
                true
            };
            if key.iter().any(Bound::is_missing) {
                // This row is compatible with any key value in the
                // missing positions — scan everything.
                for b_idx in 0..other.rows.len() {
                    matched |= emit(b_idx, &mut rows);
                }
            } else {
                if let Some(idxs) = keyed.get(&key) {
                    for &b_idx in idxs {
                        matched |= emit(b_idx, &mut rows);
                    }
                }
                for &b_idx in &wild {
                    matched |= emit(b_idx, &mut rows);
                }
            }
            match kind {
                JoinKind::Semi if matched => rows.push(remap(a_row, &map_a, width)),
                JoinKind::Anti if !matched => rows.push(remap(a_row, &map_a, width)),
                _ => {}
            }
        }
        let columns = match kind {
            JoinKind::Inner => columns,
            // Semi/anti joins keep the left schema.
            JoinKind::Semi | JoinKind::Anti => self.columns.clone(),
        };
        let rows = match kind {
            JoinKind::Inner => rows,
            JoinKind::Semi | JoinKind::Anti => rows
                .into_iter()
                .map(|r| {
                    // remap back to left schema widths
                    self.columns
                        .iter()
                        .enumerate()
                        .map(|(i, _)| r[map_a[i]].clone())
                        .collect()
                })
                .collect(),
        };
        BindingTable::new(columns, rows)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    Semi,
    Anti,
}

/// Merged schema of two tables; returns (columns, map_a, map_b) where
/// map_x[i] is the merged index of x's column i.
fn merged_schema(
    a: &BindingTable,
    b: &BindingTable,
) -> (Vec<Column>, Vec<usize>, Vec<usize>) {
    let mut columns: Vec<Column> = a.columns.clone();
    let map_a: Vec<usize> = (0..a.columns.len()).collect();
    let mut map_b = Vec::with_capacity(b.columns.len());
    for c in &b.columns {
        match columns.iter().position(|x| x.var == c.var) {
            Some(i) => map_b.push(i),
            None => {
                columns.push(c.clone());
                map_b.push(columns.len() - 1);
            }
        }
    }
    (columns, map_a, map_b)
}

fn remap(row: &[Bound], map: &[usize], width: usize) -> Vec<Bound> {
    let mut out = vec![Bound::Missing; width];
    for (i, &mi) in map.iter().enumerate() {
        out[mi] = row[i].clone();
    }
    out
}

/// µ₁ ~ µ₂: compatible iff they agree on all shared, *bound* variables.
fn compatible(a: &[Bound], b: &[Bound], shared: &[(usize, usize)]) -> bool {
    shared.iter().all(|&(i, j)| {
        a[i].is_missing() || b[j].is_missing() || a[i] == b[j]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Arc<PathPropertyGraph> {
        Arc::new(PathPropertyGraph::new())
    }

    fn col(v: &str) -> Column {
        Column {
            var: v.into(),
            graph: g(),
        }
    }

    fn n(i: u64) -> Bound {
        Bound::Node(NodeId(i))
    }

    fn table(vars: &[&str], rows: Vec<Vec<Bound>>) -> BindingTable {
        BindingTable::new(vars.iter().map(|v| col(v)).collect(), rows)
    }

    #[test]
    fn unit_is_join_identity() {
        let t = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let j = t.join(&BindingTable::unit());
        assert_eq!(j.len(), 2);
        let j2 = BindingTable::unit().join(&t);
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.var_names(), vec!["x"]);
    }

    #[test]
    fn rows_are_set_semantics() {
        let t = table(&["x"], vec![vec![n(1)], vec![n(1)], vec![n(2)]]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn join_on_shared_variable() {
        // The appendix's worked example shape: x→{105,102} joined with
        // (x,y) pairs.
        let a = table(&["x"], vec![vec![n(105)], vec![n(102)]]);
        let b = table(
            &["x", "y"],
            vec![vec![n(105), n(102)], vec![n(7), n(8)]],
        );
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows()[0], vec![n(105), n(102)]);
    }

    #[test]
    fn join_disjoint_schemas_is_cartesian_product() {
        let a = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let b = table(&["y"], vec![vec![n(10)], vec![n(20)], vec![n(30)]]);
        assert_eq!(a.join(&b).len(), 6);
    }

    #[test]
    fn semijoin_and_antijoin() {
        let a = table(&["x"], vec![vec![n(1)], vec![n(2)], vec![n(3)]]);
        let b = table(&["x", "y"], vec![vec![n(1), n(9)], vec![n(3), n(9)]]);
        let s = a.semijoin(&b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.var_names(), vec!["x"]);
        let d = a.antijoin(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.rows()[0], vec![n(2)]);
    }

    #[test]
    fn left_outer_join_pads_with_missing() {
        let a = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let b = table(&["x", "y"], vec![vec![n(1), n(9)]]);
        let l = a.left_outer_join(&b);
        assert_eq!(l.len(), 2);
        // Row for x=2 has y missing.
        let row2 = l
            .rows()
            .iter()
            .find(|r| r[l.column_index("x").unwrap()] == n(2))
            .unwrap();
        assert!(row2[l.column_index("y").unwrap()].is_missing());
    }

    #[test]
    fn missing_is_compatible_with_anything() {
        let mut a = table(&["x", "y"], vec![]);
        a = BindingTable::new(
            a.columns().to_vec(),
            vec![vec![Bound::Missing, n(5)], vec![n(1), n(6)]],
        );
        let b = table(&["x"], vec![vec![n(1)]]);
        let j = a.join(&b);
        // Missing x row joins (x filled in), bound x=1 row joins too.
        assert_eq!(j.len(), 2);
        for row in j.rows() {
            assert_eq!(row[j.column_index("x").unwrap()], n(1));
        }
    }

    #[test]
    fn union_aligns_schemas() {
        let a = table(&["x"], vec![vec![n(1)]]);
        let b = table(&["y"], vec![vec![n(2)]]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.columns().len(), 2);
    }

    #[test]
    fn project_dedups() {
        let t = table(
            &["x", "y"],
            vec![vec![n(1), n(10)], vec![n(1), n(20)]],
        );
        let p = t.project(&["x"]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn extend_column_fans_out() {
        let t = table(&["x"], vec![vec![n(1)]]);
        let e = t.extend_column(col("v"), |_| {
            vec![Bound::Value(Value::Int(1)), Bound::Value(Value::Int(2))]
        });
        assert_eq!(e.len(), 2);
        let f = t.extend_column(col("v"), |_| vec![]);
        assert!(f.is_empty());
    }

    #[test]
    fn filter_keeps_schema() {
        let t = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let f = t.filter(|r| r[0] == n(2));
        assert_eq!(f.len(), 1);
        assert_eq!(f.var_names(), vec!["x"]);
    }
}
