//! Bindings and binding tables — §A.1 of the paper.
//!
//! A binding µ is a partial function from variables to node, edge and path
//! identifiers (extended with literal values for the `{k = e}` unrolling
//! and `COST c`). A [`BindingTable`] is a *set* Ω of bindings with the four
//! operations the appendix defines:
//!
//! * Ω₁ ∪ Ω₂ — union,
//! * Ω₁ ⋈ Ω₂ — natural join of compatible bindings,
//! * Ω₁ ⋉ Ω₂ — semijoin,
//! * Ω₁ ∖ Ω₂ — antijoin,
//! * Ω₁ ⟕ Ω₂ = (Ω₁ ⋈ Ω₂) ∪ (Ω₁ ∖ Ω₂) — left outer join (OPTIONAL).
//!
//! Tables are kept sorted and deduplicated (set semantics), which also
//! makes every downstream result deterministic.
//!
//! # Physical layout
//!
//! The table is **columnar**: one `Vec<u64>` per column, each cell a
//! tagged code — the element sort in the top bits, the identifier (or a
//! [`ValueInterner`] code for literals) in the low bits. Joins hash and
//! compare raw codes, sort/dedup runs over a permutation index, and
//! derived tables share the interner `Arc` so copying a cell is copying
//! one `u64`. [`Bound`] remains the decoded per-cell view; rows as a
//! whole are never materialized. New tables are assembled through
//! [`TableBuilder`].
//!
//! Two encoding consequences worth knowing:
//!
//! * **Identifier space.** Element identifiers must fit 61 bits; a
//!   larger (externally derived) id fails a hard assert at encode time.
//!   Every internally generated id is a sequential counter and can
//!   never get near the limit.
//! * **Numeric canonicalization.** `Value`'s structural equality makes
//!   `Int(1) == Float(1.0)`, so the interner gives both one code and a
//!   decoded cell comes back as the first-interned representative. This
//!   matches the table's set semantics — the row-major layout already
//!   merged such rows at dedup time — but means the concrete numeric
//!   variant of a decoded literal is canonical, not verbatim.

use gcore_ppg::hash::FxHashMap;
use gcore_ppg::{EdgeId, NodeId, PathId, PathPropertyGraph, Value, ValueInterner};
use std::cmp::Ordering;
use std::sync::Arc;

/// A value bound to a variable — the decoded view of one table cell.
#[derive(Clone, PartialEq, Debug)]
pub enum Bound {
    /// Left-outer-join padding: the variable is unbound in this row.
    Missing,
    /// A node identifier binding.
    Node(NodeId),
    /// An edge identifier binding.
    Edge(EdgeId),
    /// A stored path of the graph (an element of `P`).
    Path(PathId),
    /// A path computed by a path pattern; index into the evaluation
    /// context's fresh-path arena.
    FreshPath(usize),
    /// A literal value (property unrolling, COST variables, FROM columns).
    Value(Value),
}

impl Bound {
    /// Is this a padding entry?
    pub fn is_missing(&self) -> bool {
        matches!(self, Bound::Missing)
    }

    fn rank(&self) -> u8 {
        match self {
            Bound::Missing => 0,
            Bound::Node(_) => 1,
            Bound::Edge(_) => 2,
            Bound::Path(_) => 3,
            Bound::FreshPath(_) => 4,
            Bound::Value(_) => 5,
        }
    }
}

impl Eq for Bound {}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> Ordering {
        use Bound::*;
        match (self, other) {
            (Node(a), Node(b)) => a.cmp(b),
            (Edge(a), Edge(b)) => a.cmp(b),
            (Path(a), Path(b)) => a.cmp(b),
            (FreshPath(a), FreshPath(b)) => a.cmp(b),
            (Value(a), Value(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------
// Cell encoding
// ---------------------------------------------------------------------

/// One encoded cell: sort tag in the top 3 bits, payload below. The tag
/// order mirrors `Bound::rank`, so comparing raw codes orders cells of
/// different sorts (and of the same element sort) exactly like `Bound`'s
/// `Ord`; only `Value` payloads need the interner's rank indirection.
type Code = u64;

const TAG_SHIFT: u32 = 61;
const PAYLOAD_MASK: Code = (1 << TAG_SHIFT) - 1;
const TAG_NODE: u64 = 1;
const TAG_EDGE: u64 = 2;
const TAG_PATH: u64 = 3;
const TAG_FRESH: u64 = 4;
const TAG_VALUE: u64 = 5;
/// `Missing` is all-zeros, so freshly padded cells need no tagging.
const MISSING: Code = 0;

#[inline]
fn pack(tag: u64, payload: u64) -> Code {
    // Hard assert: a user-supplied identifier ≥ 2^61 would silently
    // alias another element's code (or another sort's tag) — fail loudly
    // instead of corrupting join results. Internally generated ids are
    // sequential and can never trip this.
    assert!(payload <= PAYLOAD_MASK, "identifier overflows 61 bits");
    (tag << TAG_SHIFT) | payload
}

#[inline]
fn tag_of(c: Code) -> u64 {
    c >> TAG_SHIFT
}

#[inline]
fn payload_of(c: Code) -> u64 {
    c & PAYLOAD_MASK
}

/// Encode a bound that carries no literal (everything except `Value`).
#[inline]
fn encode_pure(b: &Bound) -> Option<Code> {
    Some(match b {
        Bound::Missing => MISSING,
        Bound::Node(n) => pack(TAG_NODE, n.raw()),
        Bound::Edge(e) => pack(TAG_EDGE, e.raw()),
        Bound::Path(p) => pack(TAG_PATH, p.raw()),
        Bound::FreshPath(i) => pack(TAG_FRESH, *i as u64),
        Bound::Value(_) => return None,
    })
}

fn encode(pool: &ValueInterner, b: &Bound) -> Code {
    match b {
        Bound::Value(v) => pack(TAG_VALUE, pool.intern(v) as u64),
        other => encode_pure(other).expect("non-value bound"),
    }
}

fn decode(pool: &ValueInterner, c: Code) -> Bound {
    let p = payload_of(c);
    match tag_of(c) {
        0 => Bound::Missing,
        TAG_NODE => Bound::Node(NodeId(p)),
        TAG_EDGE => Bound::Edge(EdgeId(p)),
        TAG_PATH => Bound::Path(PathId(p)),
        TAG_FRESH => Bound::FreshPath(p as usize),
        TAG_VALUE => Bound::Value(pool.resolve(p as u32)),
        _ => unreachable!("invalid cell tag"),
    }
}

/// Compare two cells in the `Bound` total order. `rank` is a
/// [`ValueInterner::rank_snapshot`]; equal codes are equal values, and
/// distinct `Value` codes order by the snapshot's value order.
#[inline]
fn cmp_codes(a: Code, b: Code, rank: &[u32]) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    if tag_of(a) == TAG_VALUE && tag_of(b) == TAG_VALUE {
        rank[payload_of(a) as usize].cmp(&rank[payload_of(b) as usize])
    } else {
        a.cmp(&b)
    }
}

/// Lexicographic row comparison over two equal-width cell slices.
#[inline]
fn cmp_rows(a: &[Code], b: &[Code], rank: &[u32]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = cmp_codes(*x, *y, rank);
        if c != Ordering::Equal {
            return c;
        }
    }
    Ordering::Equal
}

/// A column of a binding table: the variable name and the graph its
/// element attributes resolve against (λ and σ are per-graph, and views
/// may give the *same identity* different properties — e.g.
/// `nr_messages` exists on `social_graph1`'s knows edges but not on
/// `social_graph`'s).
#[derive(Clone, Debug)]
pub struct Column {
    /// The variable name.
    pub var: String,
    /// The graph whose λ/σ this column's elements resolve against.
    pub graph: Arc<PathPropertyGraph>,
}

/// A set of bindings Ω over a common schema, stored column-major.
///
/// Invariants: rows are sorted and deduplicated in the `Bound` total
/// order, and every column holds exactly `len()` cells.
#[derive(Clone, Debug)]
pub struct BindingTable {
    columns: Vec<Column>,
    /// Column-major cells: `cols[c][r]` is row `r`'s cell in column `c`.
    cols: Vec<Vec<Code>>,
    /// Row count (needed because a zero-column table still has rows).
    nrows: usize,
    /// Literal pool shared by every table derived from this one.
    pool: Arc<ValueInterner>,
    /// Whether any cell may carry a `Value` tag (conservative). Gates
    /// the pool rank snapshot during normalization so literal-free
    /// tables never pay for a shared pool another table has grown.
    has_values: bool,
}

impl BindingTable {
    /// The *unit* table: one binding µ∅ with empty domain. This is the
    /// identity of ⋈ and the seed for CONSTRUCT-without-MATCH.
    pub fn unit() -> Self {
        BindingTable {
            columns: Vec::new(),
            cols: Vec::new(),
            nrows: 1,
            pool: Arc::new(ValueInterner::new()),
            has_values: false,
        }
    }

    /// The empty table (no bindings at all) over an empty schema.
    pub fn empty() -> Self {
        BindingTable {
            columns: Vec::new(),
            cols: Vec::new(),
            nrows: 0,
            pool: Arc::new(ValueInterner::new()),
            has_values: false,
        }
    }

    /// Build from a flat row-major scratch buffer (`nrows` rows of
    /// `columns.len()` cells each) — the join/union kernels emit into one
    /// contiguous allocation, and normalization sorts a permutation over
    /// it with row-local comparisons before the single columnar scatter.
    fn from_flat_rows(
        columns: Vec<Column>,
        pool: Arc<ValueInterner>,
        data: Vec<Code>,
        nrows: usize,
        has_values: bool,
    ) -> Self {
        let width = columns.len();
        debug_assert_eq!(data.len(), nrows * width);
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        if nrows > 1 {
            let rank = if has_values {
                pool.rank_snapshot()
            } else {
                Arc::new(Vec::new())
            };
            let rank: &[u32] = &rank;
            perm.sort_unstable_by(|&a, &b| {
                let ra = &data[a as usize * width..][..width];
                let rb = &data[b as usize * width..][..width];
                cmp_rows(ra, rb, rank)
            });
            perm.dedup_by(|a, b| {
                data[*a as usize * width..][..width] == data[*b as usize * width..][..width]
            });
        }
        let cols = (0..width)
            .map(|c| perm.iter().map(|&r| data[r as usize * width + c]).collect())
            .collect();
        BindingTable {
            columns,
            cols,
            nrows: perm.len(),
            pool,
            has_values,
        }
    }

    /// Restore the sorted/deduplicated invariant via a permutation
    /// index: rows are compared in place and materialized exactly once.
    fn normalize(&mut self) {
        if self.nrows <= 1 {
            return;
        }
        let rank = if self.has_values {
            self.pool.rank_snapshot()
        } else {
            Arc::new(Vec::new())
        };
        let rank: &[u32] = &rank;
        let mut perm: Vec<u32> = (0..self.nrows as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for col in &self.cols {
                let c = cmp_codes(col[a as usize], col[b as usize], rank);
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        });
        // Equal rows have identical codes (the interner is canonical),
        // so dedup is plain code equality on adjacent permuted rows.
        perm.dedup_by(|a, b| {
            self.cols
                .iter()
                .all(|col| col[*a as usize] == col[*b as usize])
        });
        if self.cols.is_empty() {
            // Zero-column table: all rows are µ∅.
            self.nrows = self.nrows.min(1);
            return;
        }
        self.nrows = perm.len();
        for col in &mut self.cols {
            let new: Vec<Code> = perm.iter().map(|&r| col[r as usize]).collect();
            *col = new;
        }
    }

    /// Column metadata.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Variable names, in column order.
    pub fn var_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.var.as_str()).collect()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// True when Ω = ∅.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// The literal pool this table encodes `Value` cells against.
    pub fn pool(&self) -> &Arc<ValueInterner> {
        &self.pool
    }

    /// Index of a variable's column.
    pub fn column_index(&self, var: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.var == var)
    }

    /// Does the schema contain `var`?
    pub fn binds(&self, var: &str) -> bool {
        self.column_index(var).is_some()
    }

    /// Decode the cell at (`row`, `col`).
    ///
    /// ```
    /// use gcore::binding::{Bound, Column, TableBuilder};
    /// use gcore_ppg::{NodeId, PathPropertyGraph};
    /// use std::sync::Arc;
    ///
    /// let g = Arc::new(PathPropertyGraph::new());
    /// let mut b = TableBuilder::new(vec![Column { var: "x".into(), graph: g }]);
    /// b.push(&[Bound::Node(NodeId(7))]);
    /// let table = b.finish();
    /// assert_eq!(table.bound(0, 0), Bound::Node(NodeId(7)));
    /// ```
    pub fn bound(&self, row: usize, col: usize) -> Bound {
        decode(&self.pool, self.cols[col][row])
    }

    /// The binding of `var` in `row` (`None` if the column is absent;
    /// `Some(Missing)` if padded).
    ///
    /// ```
    /// use gcore::binding::{Bound, Column, TableBuilder};
    /// use gcore_ppg::{NodeId, PathPropertyGraph};
    /// use std::sync::Arc;
    ///
    /// let g = Arc::new(PathPropertyGraph::new());
    /// let mut b = TableBuilder::new(vec![Column { var: "x".into(), graph: g }]);
    /// b.push(&[Bound::Node(NodeId(7))]);
    /// let table = b.finish();
    /// assert_eq!(table.get(0, "x"), Some(Bound::Node(NodeId(7))));
    /// assert_eq!(table.get(0, "y"), None); // no such column
    /// ```
    pub fn get(&self, row: usize, var: &str) -> Option<Bound> {
        self.column_index(var).map(|c| self.bound(row, c))
    }

    /// The interner code of the cell at (`row`, `col`) when it holds a
    /// literal, `None` for every other sort. Crate-private fast path:
    /// literal-heavy loops resolve the code against a pool snapshot or
    /// through [`ValueInterner::with_resolved`], skipping the per-cell
    /// pool lock + clone that [`bound`](Self::bound) would pay.
    pub(crate) fn value_code(&self, row: usize, col: usize) -> Option<u32> {
        let c = self.cols[col][row];
        (tag_of(c) == TAG_VALUE).then(|| payload_of(c) as u32)
    }

    /// Is the cell at (`row`, `col`) padding?
    pub fn is_missing_at(&self, row: usize, col: usize) -> bool {
        self.cols[col][row] == MISSING
    }

    /// Raw encoded cell — equal codes mean equal bindings. Crate-private
    /// fast path for the matcher's already-bound checks.
    pub(crate) fn code(&self, row: usize, col: usize) -> u64 {
        self.cols[col][row]
    }

    /// Encode `b` against this table's pool without storing it, for raw
    /// comparisons against [`code`](Self::code).
    pub(crate) fn encode_for_probe(&self, b: &Bound) -> u64 {
        encode(&self.pool, b)
    }

    /// Keep only rows satisfying the predicate (row order preserved — a
    /// subset of a sorted, deduplicated table needs no re-normalizing).
    pub fn filter(&self, mut pred: impl FnMut(usize) -> bool) -> BindingTable {
        let keep: Vec<u32> = (0..self.nrows as u32)
            .filter(|&r| pred(r as usize))
            .collect();
        let cols = self
            .cols
            .iter()
            .map(|col| keep.iter().map(|&r| col[r as usize]).collect())
            .collect();
        BindingTable {
            columns: self.columns.clone(),
            cols,
            nrows: keep.len(),
            pool: self.pool.clone(),
            has_values: self.has_values,
        }
    }

    /// Project to a subset of variables (dropping others, deduplicating).
    pub fn project(&self, vars: &[&str]) -> BindingTable {
        let idxs: Vec<usize> = vars.iter().filter_map(|v| self.column_index(v)).collect();
        let mut t = BindingTable {
            columns: idxs.iter().map(|&i| self.columns[i].clone()).collect(),
            cols: idxs.iter().map(|&i| self.cols[i].clone()).collect(),
            nrows: self.nrows,
            pool: self.pool.clone(),
            has_values: self.has_values,
        };
        t.normalize();
        t
    }

    /// Add a column computed from each existing row. The new column may
    /// fan out (0..n values per row).
    pub fn extend_column(
        &self,
        column: Column,
        mut f: impl FnMut(usize) -> Vec<Bound>,
    ) -> BindingTable {
        let mut columns = self.columns.clone();
        columns.push(column);
        let mut b = TableBuilder::with_pool(columns, self.pool.clone());
        for row in 0..self.nrows {
            for v in f(row) {
                b.push_extended(self, row, &[v]);
            }
        }
        b.finish()
    }

    /// Ω₁ ∪ Ω₂. Schemas are aligned by union of variables; rows missing a
    /// column are padded with `Missing`.
    pub fn union(&self, other: &BindingTable) -> BindingTable {
        let (columns, map_a, map_b) = merged_schema(self, other);
        let width = columns.len();
        let (pool, other_map) = unify_pools(self, other);
        let mut data = Vec::with_capacity((self.nrows + other.nrows) * width);
        for r in 0..self.nrows {
            let base = data.len();
            data.resize(base + width, MISSING);
            for (i, &mi) in map_a.iter().enumerate() {
                data[base + mi] = self.cols[i][r];
            }
        }
        for r in 0..other.nrows {
            let base = data.len();
            data.resize(base + width, MISSING);
            for (i, &mi) in map_b.iter().enumerate() {
                data[base + mi] = translate_code(other.cols[i][r], other_map.as_deref());
            }
        }
        BindingTable::from_flat_rows(
            columns,
            pool,
            data,
            self.nrows + other.nrows,
            self.has_values || other.has_values,
        )
    }

    /// Ω₁ ⋈ Ω₂ — all unions µ₁ ∪ µ₂ of compatible bindings.
    ///
    /// `Missing` is treated as "unbound": compatible with anything, and
    /// the non-missing side wins in the merged row. This matches the
    /// partial-function reading of §A.1.
    pub fn join(&self, other: &BindingTable) -> BindingTable {
        self.join_inner(other, JoinKind::Inner)
    }

    /// Ω₁ ⋉ Ω₂ — bindings of Ω₁ compatible with at least one of Ω₂.
    pub fn semijoin(&self, other: &BindingTable) -> BindingTable {
        self.join_inner(other, JoinKind::Semi)
    }

    /// Ω₁ ∖ Ω₂ — bindings of Ω₁ compatible with none of Ω₂.
    pub fn antijoin(&self, other: &BindingTable) -> BindingTable {
        self.join_inner(other, JoinKind::Anti)
    }

    /// Ω₁ ⟕ Ω₂ = (Ω₁ ⋈ Ω₂) ∪ (Ω₁ ∖ Ω₂) — the OPTIONAL operator.
    pub fn left_outer_join(&self, other: &BindingTable) -> BindingTable {
        let joined = self.join(other);
        let anti = self.antijoin(other);
        joined.union(&anti)
    }

    /// Ω₁ ⋈ Ω₂ with the probe side partitioned across `threads` scoped
    /// worker threads — **bit-identical** to [`join`](Self::join) at
    /// any thread count.
    ///
    /// The build side (hash map over `other`'s shared-column keys) and
    /// the pool unification happen once, up front, on the calling
    /// thread; workers then probe disjoint contiguous ranges of Ω₁'s
    /// rows into private scratch buffers, touching only shared
    /// immutable state. Concatenating the buffers in chunk order
    /// reproduces the sequential emission order exactly, and the final
    /// sort/dedup normalization is order-insensitive anyway — hence the
    /// bit-identical guarantee (pinned by the differential suite in
    /// `tests/planner_equivalence.rs`).
    ///
    /// Small probe sides fall back to the sequential join: partitioning
    /// costs more than it saves below a few thousand rows.
    ///
    /// A `cancel` token (when given) is polled once per
    /// [`CHECK_STRIDE`](crate::cancel::CHECK_STRIDE) probe rows; a
    /// fired token makes every worker abandon its remaining range, so
    /// the returned table is *partial* — the caller must check the
    /// token afterwards and discard it (the evaluator raises `E016`).
    /// A token that never fires leaves the result bit-identical.
    pub fn join_parallel(
        &self,
        other: &BindingTable,
        threads: usize,
        cancel: Option<&crate::cancel::CancelToken>,
    ) -> BindingTable {
        const PAR_MIN_ROWS: usize = 4096;
        if threads <= 1 || self.nrows < PAR_MIN_ROWS {
            return self.join(other);
        }

        let shared: Vec<(usize, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| other.column_index(&c.var).map(|j| (i, j)))
            .collect();
        let (columns, map_a, map_b) = merged_schema(self, other);
        let width = columns.len();
        let (pool, other_map) = unify_pools(self, other);
        let translate = other_map.as_deref();

        let mut keyed: FxHashMap<Vec<Code>, Vec<u32>> = FxHashMap::default();
        let mut wild: Vec<u32> = Vec::new();
        for r in 0..other.nrows {
            let key: Vec<Code> = shared
                .iter()
                .map(|&(_, j)| translate_code(other.cols[j][r], translate))
                .collect();
            if key.contains(&MISSING) {
                wild.push(r as u32);
            } else {
                keyed.entry(key).or_default().push(r as u32);
            }
        }

        // Probe one contiguous range of Ω₁ rows into a private buffer;
        // reads only shared immutable state, so any number of workers
        // can run it concurrently.
        let emit_range = |range: std::ops::Range<usize>| -> (Vec<Code>, usize) {
            let mut data: Vec<Code> = Vec::new();
            let mut emitted = 0usize;
            let mut key = Vec::with_capacity(shared.len());
            let emit = |a_row: usize, b_row: u32, data: &mut Vec<Code>, emitted: &mut usize| {
                let b_row = b_row as usize;
                let ok = shared.iter().all(|&(i, j)| {
                    let a = self.cols[i][a_row];
                    let b = translate_code(other.cols[j][b_row], translate);
                    a == MISSING || b == MISSING || a == b
                });
                if !ok {
                    return;
                }
                let base = data.len();
                data.resize(base + width, MISSING);
                for (i, &mi) in map_a.iter().enumerate() {
                    data[base + mi] = self.cols[i][a_row];
                }
                for (bi, &mi) in map_b.iter().enumerate() {
                    if data[base + mi] == MISSING {
                        data[base + mi] = translate_code(other.cols[bi][b_row], translate);
                    }
                }
                *emitted += 1;
            };
            let mut tick = 0u32;
            for a_row in range {
                if let Some(token) = cancel {
                    tick = tick.wrapping_add(1);
                    if tick.is_multiple_of(crate::cancel::CHECK_STRIDE) && token.is_cancelled() {
                        break;
                    }
                }
                key.clear();
                key.extend(shared.iter().map(|&(i, _)| self.cols[i][a_row]));
                if key.contains(&MISSING) {
                    for b_row in 0..other.nrows as u32 {
                        emit(a_row, b_row, &mut data, &mut emitted);
                    }
                } else {
                    if let Some(idxs) = keyed.get(&key) {
                        for &b_row in idxs {
                            emit(a_row, b_row, &mut data, &mut emitted);
                        }
                    }
                    for &b_row in &wild {
                        emit(a_row, b_row, &mut data, &mut emitted);
                    }
                }
            }
            (data, emitted)
        };

        let threads = threads.min(self.nrows);
        let chunk = self.nrows.div_ceil(threads);
        let mut parts: Vec<(Vec<Code>, usize)> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let emit_range = &emit_range;
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(self.nrows);
                    s.spawn(move || emit_range(lo..hi))
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel join worker panicked"));
            }
        });
        let mut data: Vec<Code> = Vec::with_capacity(parts.iter().map(|p| p.0.len()).sum());
        let mut emitted = 0usize;
        for (d, e) in parts {
            data.extend_from_slice(&d);
            emitted += e;
        }
        BindingTable::from_flat_rows(
            columns,
            pool,
            data,
            emitted,
            self.has_values || other.has_values,
        )
    }

    fn join_inner(&self, other: &BindingTable, kind: JoinKind) -> BindingTable {
        // Shared variables drive a hash join on encoded keys; rows with
        // Missing in a shared column fall back to a scan bucket (they
        // are compatible with every key).
        let shared: Vec<(usize, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| other.column_index(&c.var).map(|j| (i, j)))
            .collect();

        let (columns, map_a, map_b) = merged_schema(self, other);
        let width = columns.len();
        let (pool, other_map) = unify_pools(self, other);
        let translate = other_map.as_deref();

        // Partition `other` rows: fully-keyed rows go into the hash map;
        // rows with a Missing shared column are checked by scan.
        let mut keyed: FxHashMap<Vec<Code>, Vec<u32>> = FxHashMap::default();
        let mut wild: Vec<u32> = Vec::new();
        for r in 0..other.nrows {
            let key: Vec<Code> = shared
                .iter()
                .map(|&(_, j)| translate_code(other.cols[j][r], translate))
                .collect();
            if key.contains(&MISSING) {
                wild.push(r as u32);
            } else {
                keyed.entry(key).or_default().push(r as u32);
            }
        }

        let compatible = |a_row: usize, b_row: usize| {
            shared.iter().all(|&(i, j)| {
                let a = self.cols[i][a_row];
                let b = translate_code(other.cols[j][b_row], translate);
                a == MISSING || b == MISSING || a == b
            })
        };

        // One flat row-major scratch buffer for the emitted rows — no
        // per-row allocation on the join's hot path.
        let mut data: Vec<Code> = Vec::new();
        let mut emitted = 0usize;
        let out_width = match kind {
            JoinKind::Inner => width,
            JoinKind::Semi | JoinKind::Anti => self.columns.len(),
        };
        let mut key = Vec::with_capacity(shared.len());
        for a_row in 0..self.nrows {
            key.clear();
            key.extend(shared.iter().map(|&(i, _)| self.cols[i][a_row]));
            let mut matched = false;
            let emit = |b_row: u32, data: &mut Vec<Code>, emitted: &mut usize| {
                let b_row = b_row as usize;
                if !compatible(a_row, b_row) {
                    return false;
                }
                if kind == JoinKind::Inner {
                    let base = data.len();
                    data.resize(base + width, MISSING);
                    for (i, &mi) in map_a.iter().enumerate() {
                        data[base + mi] = self.cols[i][a_row];
                    }
                    for (bi, &mi) in map_b.iter().enumerate() {
                        if data[base + mi] == MISSING {
                            data[base + mi] = translate_code(other.cols[bi][b_row], translate);
                        }
                    }
                    *emitted += 1;
                }
                true
            };
            // Semi/anti joins only need existence — stop probing at the
            // first compatible row instead of scanning out the bucket.
            let exists_only = kind != JoinKind::Inner;
            if key.contains(&MISSING) {
                // This row is compatible with any key value in the
                // missing positions — scan everything.
                for b_row in 0..other.nrows as u32 {
                    matched |= emit(b_row, &mut data, &mut emitted);
                    if matched && exists_only {
                        break;
                    }
                }
            } else {
                if let Some(idxs) = keyed.get(&key) {
                    for &b_row in idxs {
                        matched |= emit(b_row, &mut data, &mut emitted);
                        if matched && exists_only {
                            break;
                        }
                    }
                }
                if !(matched && exists_only) {
                    for &b_row in &wild {
                        matched |= emit(b_row, &mut data, &mut emitted);
                        if matched && exists_only {
                            break;
                        }
                    }
                }
            }
            // Semi/anti joins keep the left schema and row verbatim.
            let keep_left = match kind {
                JoinKind::Semi => matched,
                JoinKind::Anti => !matched,
                JoinKind::Inner => false,
            };
            if keep_left {
                data.extend(self.cols.iter().map(|c| c[a_row]));
                emitted += 1;
            }
        }
        match kind {
            JoinKind::Inner => BindingTable::from_flat_rows(
                columns,
                pool,
                data,
                emitted,
                self.has_values || other.has_values,
            ),
            JoinKind::Semi | JoinKind::Anti => {
                debug_assert_eq!(data.len(), emitted * out_width);
                BindingTable::from_flat_rows(
                    self.columns.clone(),
                    self.pool.clone(),
                    data,
                    emitted,
                    self.has_values,
                )
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    Semi,
    Anti,
}

#[inline]
fn translate_code(c: Code, translate: Option<&[Code]>) -> Code {
    match translate {
        Some(map) if tag_of(c) == TAG_VALUE => map[payload_of(c) as usize],
        _ => c,
    }
}

/// Pick the pool a binary operation's result lives in: the shared pool
/// when both sides already use one `Arc`, the non-empty side when the
/// other has no literals, otherwise the left pool plus a translation
/// table for the right side's codes.
///
/// Only codes that actually occur in `b`'s cells are interned into the
/// left pool — translating the whole right pool would permanently grow
/// the shared pool with values the operation never touches. Unreferenced
/// map slots keep a sentinel that `translate_code` can never look up.
fn unify_pools(a: &BindingTable, b: &BindingTable) -> (Arc<ValueInterner>, Option<Vec<Code>>) {
    if Arc::ptr_eq(&a.pool, &b.pool) || b.pool.is_empty() {
        return (a.pool.clone(), None);
    }
    if a.pool.is_empty() {
        // `a` holds no Value cells, so its codes are valid under any pool.
        return (b.pool.clone(), None);
    }
    let mut map: Vec<Code> = vec![MISSING; b.pool.len()];
    let mut seen = vec![false; b.pool.len()];
    for col in &b.cols {
        for &c in col {
            if tag_of(c) == TAG_VALUE {
                let p = payload_of(c) as usize;
                if !seen[p] {
                    seen[p] = true;
                    map[p] = pack(TAG_VALUE, a.pool.intern(&b.pool.resolve(p as u32)) as u64);
                }
            }
        }
    }
    (a.pool.clone(), Some(map))
}

/// Merged schema of two tables; returns (columns, map_a, map_b) where
/// map_x[i] is the merged index of x's column i.
fn merged_schema(a: &BindingTable, b: &BindingTable) -> (Vec<Column>, Vec<usize>, Vec<usize>) {
    let mut columns: Vec<Column> = a.columns.clone();
    let map_a: Vec<usize> = (0..a.columns.len()).collect();
    let mut map_b = Vec::with_capacity(b.columns.len());
    for c in &b.columns {
        match columns.iter().position(|x| x.var == c.var) {
            Some(i) => map_b.push(i),
            None => {
                columns.push(c.clone());
                map_b.push(columns.len() - 1);
            }
        }
    }
    (columns, map_a, map_b)
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Assembles a [`BindingTable`] row by row. The only way to create a
/// table with content — producers either push decoded [`Bound`]s or
/// extend existing rows (a raw `u64` copy when the source shares the
/// builder's pool).
pub struct TableBuilder {
    columns: Vec<Column>,
    cols: Vec<Vec<Code>>,
    nrows: usize,
    pool: Arc<ValueInterner>,
    has_values: bool,
}

impl TableBuilder {
    /// A builder over a fresh literal pool.
    pub fn new(columns: Vec<Column>) -> Self {
        Self::with_pool(columns, Arc::new(ValueInterner::new()))
    }

    /// A builder sharing an existing pool — use this when deriving from
    /// another table so cell copies stay `u64` copies.
    pub fn with_pool(columns: Vec<Column>, pool: Arc<ValueInterner>) -> Self {
        let cols = vec![Vec::new(); columns.len()];
        TableBuilder {
            columns,
            cols,
            nrows: 0,
            pool,
            has_values: false,
        }
    }

    /// Append one row of decoded bounds (must match the schema width).
    pub fn push(&mut self, row: &[Bound]) {
        debug_assert_eq!(row.len(), self.columns.len());
        for (c, b) in row.iter().enumerate() {
            let code = encode(&self.pool, b);
            self.has_values |= tag_of(code) == TAG_VALUE;
            self.cols[c].push(code);
        }
        self.nrows += 1;
    }

    /// Append `src`'s row followed by `extra` cells; the source columns
    /// must form the builder schema's prefix.
    pub fn push_extended(&mut self, src: &BindingTable, row: usize, extra: &[Bound]) {
        let scols = src.cols.len();
        debug_assert_eq!(scols + extra.len(), self.columns.len());
        let same_pool = Arc::ptr_eq(&self.pool, &src.pool);
        for (c, col) in src.cols.iter().enumerate() {
            let code = col[row];
            let code = if same_pool || tag_of(code) != TAG_VALUE {
                code
            } else {
                pack(
                    TAG_VALUE,
                    self.pool.intern(&src.pool.resolve(payload_of(code) as u32)) as u64,
                )
            };
            self.has_values |= tag_of(code) == TAG_VALUE;
            self.cols[c].push(code);
        }
        for (i, b) in extra.iter().enumerate() {
            let code = encode(&self.pool, b);
            self.has_values |= tag_of(code) == TAG_VALUE;
            self.cols[scols + i].push(code);
        }
        self.nrows += 1;
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// Finish into a normalized (sorted, deduplicated) table.
    pub fn finish(self) -> BindingTable {
        let mut t = self.finish_raw();
        t.normalize();
        t
    }

    /// Finish keeping the push order (no sorting, no dedup). Used when
    /// row indexes must stay aligned with another table — e.g. the
    /// CONSTRUCT staging extension of the match bindings.
    pub fn finish_raw(self) -> BindingTable {
        BindingTable {
            columns: self.columns,
            cols: self.cols,
            nrows: self.nrows,
            pool: self.pool,
            has_values: self.has_values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Arc<PathPropertyGraph> {
        Arc::new(PathPropertyGraph::new())
    }

    fn col(v: &str) -> Column {
        Column {
            var: v.into(),
            graph: g(),
        }
    }

    fn n(i: u64) -> Bound {
        Bound::Node(NodeId(i))
    }

    fn table(vars: &[&str], rows: Vec<Vec<Bound>>) -> BindingTable {
        let mut b = TableBuilder::new(vars.iter().map(|v| col(v)).collect());
        for r in &rows {
            b.push(r);
        }
        b.finish()
    }

    /// Decode a whole row for assertions.
    fn row(t: &BindingTable, r: usize) -> Vec<Bound> {
        (0..t.columns().len()).map(|c| t.bound(r, c)).collect()
    }

    #[test]
    fn unit_is_join_identity() {
        let t = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let j = t.join(&BindingTable::unit());
        assert_eq!(j.len(), 2);
        let j2 = BindingTable::unit().join(&t);
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.var_names(), vec!["x"]);
    }

    #[test]
    fn rows_are_set_semantics() {
        let t = table(&["x"], vec![vec![n(1)], vec![n(1)], vec![n(2)]]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rows_sort_in_bound_order() {
        let t = table(
            &["x"],
            vec![
                vec![Bound::Value(Value::str("b"))],
                vec![n(5)],
                vec![Bound::Value(Value::str("a"))],
                vec![Bound::Missing],
            ],
        );
        assert_eq!(row(&t, 0), vec![Bound::Missing]);
        assert_eq!(row(&t, 1), vec![n(5)]);
        assert_eq!(row(&t, 2), vec![Bound::Value(Value::str("a"))]);
        assert_eq!(row(&t, 3), vec![Bound::Value(Value::str("b"))]);
    }

    #[test]
    fn join_on_shared_variable() {
        // The appendix's worked example shape: x→{105,102} joined with
        // (x,y) pairs.
        let a = table(&["x"], vec![vec![n(105)], vec![n(102)]]);
        let b = table(&["x", "y"], vec![vec![n(105), n(102)], vec![n(7), n(8)]]);
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(row(&j, 0), vec![n(105), n(102)]);
    }

    #[test]
    fn join_disjoint_schemas_is_cartesian_product() {
        let a = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let b = table(&["y"], vec![vec![n(10)], vec![n(20)], vec![n(30)]]);
        assert_eq!(a.join(&b).len(), 6);
    }

    #[test]
    fn join_on_literal_values_across_pools() {
        // Each table has its own interner; the join must unify codes.
        let a = table(
            &["x", "v"],
            vec![
                vec![n(1), Bound::Value(Value::str("cwi"))],
                vec![n(2), Bound::Value(Value::str("mit"))],
            ],
        );
        let b = table(&["v"], vec![vec![Bound::Value(Value::str("mit"))]]);
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(row(&j, 0), vec![n(2), Bound::Value(Value::str("mit"))]);
    }

    #[test]
    fn semijoin_and_antijoin() {
        let a = table(&["x"], vec![vec![n(1)], vec![n(2)], vec![n(3)]]);
        let b = table(&["x", "y"], vec![vec![n(1), n(9)], vec![n(3), n(9)]]);
        let s = a.semijoin(&b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.var_names(), vec!["x"]);
        let d = a.antijoin(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(row(&d, 0), vec![n(2)]);
    }

    #[test]
    fn left_outer_join_pads_with_missing() {
        let a = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let b = table(&["x", "y"], vec![vec![n(1), n(9)]]);
        let l = a.left_outer_join(&b);
        assert_eq!(l.len(), 2);
        // Row for x=2 has y missing.
        let xi = l.column_index("x").unwrap();
        let yi = l.column_index("y").unwrap();
        let r2 = (0..l.len()).find(|&r| l.bound(r, xi) == n(2)).unwrap();
        assert!(l.bound(r2, yi).is_missing());
    }

    #[test]
    fn missing_is_compatible_with_anything() {
        let a = table(
            &["x", "y"],
            vec![vec![Bound::Missing, n(5)], vec![n(1), n(6)]],
        );
        let b = table(&["x"], vec![vec![n(1)]]);
        let j = a.join(&b);
        // Missing x row joins (x filled in), bound x=1 row joins too.
        assert_eq!(j.len(), 2);
        let xi = j.column_index("x").unwrap();
        for r in 0..j.len() {
            assert_eq!(j.bound(r, xi), n(1));
        }
    }

    #[test]
    fn union_aligns_schemas() {
        let a = table(&["x"], vec![vec![n(1)]]);
        let b = table(&["y"], vec![vec![n(2)]]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.columns().len(), 2);
    }

    #[test]
    fn project_dedups() {
        let t = table(&["x", "y"], vec![vec![n(1), n(10)], vec![n(1), n(20)]]);
        let p = t.project(&["x"]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn extend_column_fans_out() {
        let t = table(&["x"], vec![vec![n(1)]]);
        let e = t.extend_column(col("v"), |_| {
            vec![Bound::Value(Value::Int(1)), Bound::Value(Value::Int(2))]
        });
        assert_eq!(e.len(), 2);
        let f = t.extend_column(col("v"), |_| vec![]);
        assert!(f.is_empty());
    }

    #[test]
    fn filter_keeps_schema() {
        let t = table(&["x"], vec![vec![n(1)], vec![n(2)]]);
        let f = t.filter(|r| t.bound(r, 0) == n(2));
        assert_eq!(f.len(), 1);
        assert_eq!(f.var_names(), vec!["x"]);
    }

    #[test]
    fn derived_tables_share_the_pool() {
        let t = table(&["x"], vec![vec![Bound::Value(Value::Int(3))]]);
        let f = t.filter(|_| true);
        assert!(Arc::ptr_eq(t.pool(), f.pool()));
        let p = t.project(&["x"]);
        assert!(Arc::ptr_eq(t.pool(), p.pool()));
    }
}
