//! Observability: execution profiles, a unified metrics registry, and
//! the `EXPLAIN ANALYZE` rendering.
//!
//! Three pieces, all std-only and all designed around the same
//! constraint as cooperative cancellation ([`crate::cancel`]): **zero
//! result impact, near-zero cost when disabled**.
//!
//! * **[`Profiler`] / [`QueryProfile`]** — a per-statement tree of
//!   operator spans (planning, pattern expansion, joins, path search,
//!   WHERE, CONSTRUCT, SELECT), collected at the same loop boundaries
//!   the [`CancelToken`](crate::cancel::CancelToken) already polls.
//!   The profiler lives on the [`EvalCtx`](crate::EvalCtx); when
//!   disabled (the default) every call site is one `Option` branch and
//!   no clock is ever read. Profiling can never change results — the
//!   differential suite (`tests/profile_equivalence.rs`) pins
//!   profiling-on ≡ profiling-off over the whole corpus.
//! * **[`MetricsRegistry`]** — named counters, gauges and log₂
//!   histograms behind `Arc`-shared relaxed atomics. The engine
//!   registers its core metrics here ([`CoreMetrics`]) and the serving
//!   layer's `ServerStats` is built over the same types; the registry
//!   renders itself as Prometheus-style exposition text.
//! * **`EXPLAIN ANALYZE`** — [`QueryProfile::render`] prints the
//!   profile tree in a stable, golden-pinnable format: per-operator
//!   actual row counts, planner estimates with misestimate markers,
//!   and timings (redactable, so the structure can be pinned while the
//!   timings vary run to run).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Number of log₂ histogram buckets: bucket `i` counts observations in
/// `[2^i, 2^{i+1})` (microseconds for latency histograms), the last
/// bucket absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A lock-free log₂-bucketed histogram. Recording is one relaxed
/// `fetch_add` per observation (plus one for the running sum);
/// concurrent recorders never contend beyond the cache line.
#[derive(Default, Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of raw observed values (µs for latency histograms), for the
    /// Prometheus `_sum` series.
    sum: AtomicU64,
}

impl Histogram {
    /// Count one observed duration (bucketed by microseconds).
    pub fn record(&self, elapsed: Duration) {
        self.observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Count one raw observation.
    pub fn observe(&self, value: u64) {
        let clamped = value.max(1);
        let bucket = (clamped.ilog2() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// An instantaneous copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramBuckets {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        HistogramBuckets(out)
    }

    /// Sum of every raw value observed so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of one histogram's buckets; index `i` counts
/// observations in `[2^i, 2^{i+1})`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistogramBuckets(pub [u64; HISTOGRAM_BUCKETS]);

impl HistogramBuckets {
    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.iter().sum()
    }

    /// An upper bound on the value of the `q`-quantile observation:
    /// the top of the first bucket whose cumulative count reaches `q`
    /// of the total. `None` when nothing was recorded.
    #[must_use]
    pub fn quantile_upper_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let needed = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.0.iter().enumerate() {
            seen += c;
            if seen >= needed {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// One registered metric: the handle the registry renders from.
#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics with stable names: monotone counters,
/// settable gauges, and log₂ [`Histogram`]s.
///
/// Handles are `Arc`-shared atomics — registration takes the (mutex)
/// registry lock once, after which recording is lock-free. The same
/// name always returns the same handle, so independent subsystems can
/// share a series by name. Renders itself as Prometheus-style
/// exposition text ([`render_prometheus`](Self::render_prometheus)).
///
/// ```
/// use gcore::obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let hits = reg.counter("cache_hits");
/// hits.fetch_add(3, std::sync::atomic::Ordering::Relaxed);
/// reg.set_gauge("live_entries", 2);
/// let text = reg.render_prometheus("demo");
/// assert!(text.contains("demo_cache_hits 3"));
/// assert!(text.contains("demo_live_entries 2"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<std::collections::BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &inner.len())
            .finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, registering a zeroed one on
    /// first use. Panics if `name` is already registered as a different
    /// metric kind — names are stable identities, not free-form.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' is registered with a different kind"),
        }
    }

    /// The gauge registered under `name`, registering a zeroed one on
    /// first use.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' is registered with a different kind"),
        }
    }

    /// Store `value` into the gauge `name` (registering it on first
    /// use).
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauge(name).store(value, Ordering::Relaxed);
    }

    /// The histogram registered under `name`, registering an empty one
    /// on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' is registered with a different kind"),
        }
    }

    /// Every scalar metric as sorted `(name, value)` pairs; histograms
    /// contribute one `name_b<idx>` pair per non-empty bucket (the same
    /// wire convention the serve stats route uses).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(inner.len());
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(v) | Metric::Gauge(v) => {
                    out.push((name.clone(), v.load(Ordering::Relaxed)));
                }
                Metric::Histogram(h) => {
                    for (i, &count) in h.snapshot().0.iter().enumerate() {
                        if count != 0 {
                            out.push((format!("{name}_b{i:02}"), count));
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Render every metric as Prometheus-style exposition text, each
    /// series name prefixed with `prefix_`. Counters and gauges emit a
    /// `# TYPE` line plus the value; histograms emit cumulative
    /// `_bucket{le="…"}` series with `_sum` and `_count`.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {prefix}_{name} counter");
                    let _ = writeln!(out, "{prefix}_{name} {}", v.load(Ordering::Relaxed));
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {prefix}_{name} gauge");
                    let _ = writeln!(out, "{prefix}_{name} {}", v.load(Ordering::Relaxed));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &count) in snap.0.iter().enumerate() {
                        cumulative += count;
                        if count != 0 {
                            let _ = writeln!(
                                out,
                                "{prefix}_{name}_bucket{{le=\"{}\"}} {cumulative}",
                                1u64 << (i + 1).min(63),
                            );
                        }
                    }
                    let _ = writeln!(
                        out,
                        "{prefix}_{name}_bucket{{le=\"+Inf\"}} {}",
                        snap.count()
                    );
                    let _ = writeln!(out, "{prefix}_{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{prefix}_{name}_count {}", snap.count());
                }
            }
        }
        out
    }
}

/// The engine's core metric handles, cloned onto every executor and
/// evaluation context so the hot path records through pre-resolved
/// atomics (no registry lookups during evaluation).
///
/// Standalone sets ([`CoreMetrics::standalone`]) count privately;
/// engine-derived executors share the engine's registry-backed set, so
/// totals aggregate across every statement the engine ever ran.
#[derive(Clone, Debug)]
pub struct CoreMetrics {
    /// Statements evaluated (all outcomes).
    pub statements: Arc<AtomicU64>,
    /// Statements that ended in cooperative cancellation (`E016`).
    pub cancellations: Arc<AtomicU64>,
    /// MATCH clauses whose planned join order differs from the
    /// syntactic order.
    pub planner_reorders: Arc<AtomicU64>,
    /// WHERE conjuncts the planner pushed into patterns.
    pub planner_pushdowns: Arc<AtomicU64>,
    /// Profiled operator spans whose actual cardinality diverged from
    /// the planner's estimate (see [`is_misestimate`]). Only profiled
    /// statements contribute — unprofiled evaluation never compares.
    pub planner_misestimates: Arc<AtomicU64>,
}

impl CoreMetrics {
    /// A private, unregistered metric set (used by standalone
    /// executors and fresh evaluation contexts).
    #[must_use]
    pub fn standalone() -> Self {
        CoreMetrics {
            statements: Arc::new(AtomicU64::new(0)),
            cancellations: Arc::new(AtomicU64::new(0)),
            planner_reorders: Arc::new(AtomicU64::new(0)),
            planner_pushdowns: Arc::new(AtomicU64::new(0)),
            planner_misestimates: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The metric set backed by `registry`, under the stable names
    /// `statements`, `cancellations`, `planner_reorders`,
    /// `planner_pushdowns`, `planner_misestimates`.
    #[must_use]
    pub fn registered(registry: &MetricsRegistry) -> Self {
        CoreMetrics {
            statements: registry.counter("statements"),
            cancellations: registry.counter("cancellations"),
            planner_reorders: registry.counter("planner_reorders"),
            planner_pushdowns: registry.counter("planner_pushdowns"),
            planner_misestimates: registry.counter("planner_misestimates"),
        }
    }

    /// Bump a counter by `n` (relaxed; the counters are observability,
    /// not synchronization).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Does `actual` diverge from the planner's `estimate` badly enough to
/// count as a misestimate? A 4× ratio either way, ignoring divergences
/// of at most 16 rows in absolute terms (tiny tables are noise, not
/// planning failures).
#[must_use]
pub fn is_misestimate(estimate: f64, actual: u64) -> bool {
    let est = estimate.max(1.0);
    let act = (actual as f64).max(1.0);
    let ratio = if est > act { est / act } else { act / est };
    ratio >= 4.0 && (est - actual as f64).abs() > 16.0
}

// ---------------------------------------------------------------------
// Execution profiles
// ---------------------------------------------------------------------

/// Hard cap on spans per statement: correlated subqueries evaluate once
/// per candidate row, and an EXISTS over a large table must not turn
/// the profile into an unbounded allocation. Past the cap new spans are
/// dropped and the profile is marked [`QueryProfile::truncated`].
pub const MAX_SPANS: usize = 4096;

/// Handle to one started span; `SpanId::NONE` (what a disabled profiler
/// hands out) makes every subsequent operation a no-op.
#[derive(Clone, Copy, Debug)]
pub struct SpanId(Option<usize>);

impl SpanId {
    /// The inert span handle.
    pub const NONE: SpanId = SpanId(None);
}

struct SpanNode {
    op: &'static str,
    detail: String,
    started: Instant,
    elapsed: Option<Duration>,
    rows: Option<u64>,
    estimate: Option<f64>,
    counters: Vec<(&'static str, u64)>,
    children: Vec<usize>,
}

struct ProfilerState {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    truncated: bool,
}

/// The per-statement span collector, owned by the
/// [`EvalCtx`](crate::EvalCtx).
///
/// Query-local interior mutability, exactly like the context's other
/// `RefCell` state: evaluation is single-threaded per statement (the
/// parallel join/search workers never touch the context), so a
/// `RefCell` suffices. Disabled (the default) it holds no state at
/// all; every recording call is one `Option` check, no clock reads, no
/// allocation — the ≤ 2 % disabled-overhead budget of the matching
/// bench is the pinned consequence.
#[derive(Default)]
pub struct Profiler {
    inner: Option<RefCell<ProfilerState>>,
}

impl Profiler {
    /// A profiler that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// A profiler that collects a span tree for one statement.
    #[must_use]
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(RefCell::new(ProfilerState {
                nodes: Vec::new(),
                roots: Vec::new(),
                stack: Vec::new(),
                truncated: false,
            })),
        }
    }

    /// Is this profiler collecting spans?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span under the innermost open span. `detail` is only
    /// rendered when the profiler is enabled, so call sites can format
    /// freely without a disabled-path cost.
    pub fn start(&self, op: &'static str, detail: impl FnOnce() -> String) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut st = inner.borrow_mut();
        if st.nodes.len() >= MAX_SPANS {
            st.truncated = true;
            return SpanId::NONE;
        }
        let idx = st.nodes.len();
        st.nodes.push(SpanNode {
            op,
            detail: detail(),
            started: Instant::now(),
            elapsed: None,
            rows: None,
            estimate: None,
            counters: Vec::new(),
            children: Vec::new(),
        });
        match st.stack.last().copied() {
            Some(parent) => st.nodes[parent].children.push(idx),
            None => st.roots.push(idx),
        }
        st.stack.push(idx);
        SpanId(Some(idx))
    }

    fn with_node(&self, id: SpanId, f: impl FnOnce(&mut SpanNode)) {
        if let (Some(inner), SpanId(Some(idx))) = (&self.inner, id) {
            f(&mut inner.borrow_mut().nodes[idx]);
        }
    }

    /// Append to a span's detail text (planning facts only known after
    /// the span opened).
    pub fn annotate(&self, id: SpanId, extra: impl FnOnce() -> String) {
        self.with_node(id, |n| {
            let extra = extra();
            if !extra.is_empty() {
                if !n.detail.is_empty() {
                    n.detail.push(' ');
                }
                n.detail.push_str(&extra);
            }
        });
    }

    /// Attach the planner's cardinality estimate to a span.
    pub fn set_estimate(&self, id: SpanId, estimate: f64) {
        self.with_node(id, |n| n.estimate = Some(estimate));
    }

    /// Attach a named counter (frontier pops, input rows, …) to a span.
    pub fn add_counter(&self, id: SpanId, name: &'static str, value: u64) {
        self.with_node(id, |n| n.counters.push((name, value)));
    }

    /// Close a span, recording its wall-clock duration.
    pub fn finish(&self, id: SpanId) {
        if let (Some(inner), SpanId(Some(idx))) = (&self.inner, id) {
            let mut st = inner.borrow_mut();
            st.nodes[idx].elapsed = Some(st.nodes[idx].started.elapsed());
            // Pop this span (and, defensively, anything opened under it
            // that an error path failed to close).
            while let Some(top) = st.stack.pop() {
                if top == idx {
                    break;
                }
            }
        }
    }

    /// [`finish`](Self::finish) plus the span's actual output rows.
    pub fn finish_rows(&self, id: SpanId, rows: u64) {
        self.with_node(id, |n| n.rows = Some(rows));
        self.finish(id);
    }

    /// Consume the collected spans into a [`QueryProfile`]. `None` when
    /// the profiler is disabled. Spans left open (error unwinds) are
    /// closed at their current elapsed time.
    #[must_use]
    pub fn take(&self) -> Option<QueryProfile> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.borrow_mut();
        for node in &mut st.nodes {
            if node.elapsed.is_none() {
                node.elapsed = Some(node.started.elapsed());
            }
        }
        let mut misestimates = 0u64;
        for node in &st.nodes {
            if let (Some(est), Some(rows)) = (node.estimate, node.rows) {
                if is_misestimate(est, rows) {
                    misestimates += 1;
                }
            }
        }
        fn convert(nodes: &[SpanNode], idx: usize) -> ProfileSpan {
            let n = &nodes[idx];
            ProfileSpan {
                op: n.op.to_owned(),
                detail: n.detail.clone(),
                rows: n.rows,
                estimate: n.estimate,
                elapsed: n.elapsed.unwrap_or_default(),
                counters: n.counters.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
                children: n.children.iter().map(|&c| convert(nodes, c)).collect(),
            }
        }
        let spans = st.roots.iter().map(|&r| convert(&st.nodes, r)).collect();
        Some(QueryProfile {
            spans,
            misestimates,
            truncated: st.truncated,
        })
    }
}

/// One operator span of an execution profile.
#[derive(Clone, Debug)]
pub struct ProfileSpan {
    /// Operator kind: `match`, `plan`, `pattern`, `join`,
    /// `path-search`, `where`, `optional`, `construct`, `select`,
    /// `set-op`.
    pub op: String,
    /// Human-readable operator detail (pattern text, join variables,
    /// chosen strategy, …).
    pub detail: String,
    /// Actual output cardinality, when the operator produces rows.
    pub rows: Option<u64>,
    /// The planner's cardinality estimate, when it made one.
    pub estimate: Option<f64>,
    /// Wall-clock time spent in the operator, children included.
    pub elapsed: Duration,
    /// Auxiliary counters: `frontier_pops`, `input_rows`, `edges`, ….
    pub counters: Vec<(String, u64)>,
    /// Nested operator spans, in execution order.
    pub children: Vec<ProfileSpan>,
}

/// The execution profile of one statement: the operator span tree plus
/// statement-level aggregates. Produced by
/// [`QueryExecutor::run_profiled`](crate::QueryExecutor::run_profiled)
/// and [`Engine::profile`](crate::Engine::profile).
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Top-level operator spans in execution order.
    pub spans: Vec<ProfileSpan>,
    /// Spans whose actual cardinality diverged from the planner's
    /// estimate (the per-statement planner feedback counter).
    pub misestimates: u64,
    /// Span collection hit [`MAX_SPANS`] and dropped later spans.
    pub truncated: bool,
}

impl QueryProfile {
    /// Total spans in the tree.
    #[must_use]
    pub fn span_count(&self) -> usize {
        fn count(s: &ProfileSpan) -> usize {
            1 + s.children.iter().map(count).sum::<usize>()
        }
        self.spans.iter().map(count).sum()
    }

    /// Render the profile as `EXPLAIN ANALYZE` text. With
    /// `redact_timings` every `time=` field prints as `time=…`, making
    /// the output deterministic for a given statement and snapshot —
    /// that is the form the golden tests pin.
    #[must_use]
    pub fn render(&self, redact_timings: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE (misestimates: {})", self.misestimates);
        if self.truncated {
            let _ = writeln!(out, "  [profile truncated at {MAX_SPANS} spans]");
        }
        for span in &self.spans {
            render_span(span, 0, redact_timings, &mut out);
        }
        out
    }

    /// One-line summary for slow-query logs: top-level operators with
    /// their cardinalities and the misestimate count.
    #[must_use]
    pub fn summary(&self) -> String {
        let ops: Vec<String> = self
            .spans
            .iter()
            .map(|s| match s.rows {
                Some(rows) => format!("{}={} rows", s.op, rows),
                None => s.op.clone(),
            })
            .collect();
        format!(
            "{} ({} spans, misestimates: {})",
            ops.join(", "),
            self.span_count(),
            self.misestimates
        )
    }

    /// Structural well-formedness, for the CI profile tour
    /// (`examples/profile.rs`): every span must carry an operator tag,
    /// row-producing operators must report actual rows, and children
    /// may not take longer than their parent (wall-clock nesting).
    pub fn validate(&self) -> std::result::Result<(), String> {
        fn check(s: &ProfileSpan) -> std::result::Result<(), String> {
            if s.op.is_empty() {
                return Err("span with empty operator tag".into());
            }
            if matches!(
                s.op.as_str(),
                "pattern" | "join" | "where" | "match" | "select"
            ) && s.rows.is_none()
            {
                return Err(format!("'{}' span without an actual row count", s.op));
            }
            let child_sum: Duration = s.children.iter().map(|c| c.elapsed).sum();
            // Tolerance: clock reads themselves take time.
            if child_sum > s.elapsed + Duration::from_millis(5) {
                return Err(format!(
                    "'{}' span children ({child_sum:?}) exceed parent ({:?})",
                    s.op, s.elapsed
                ));
            }
            s.children.iter().try_for_each(check)
        }
        if self.spans.is_empty() {
            return Err("profile has no spans".into());
        }
        self.spans.iter().try_for_each(check)
    }
}

fn render_span(span: &ProfileSpan, depth: usize, redact: bool, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&span.op.to_string());
    if !span.detail.is_empty() {
        let _ = write!(out, " {}", span.detail);
    }
    if let Some(est) = span.estimate {
        let _ = write!(out, "  est ~{}", format_estimate(est));
    }
    if let Some(rows) = span.rows {
        let _ = write!(out, "  rows={rows}");
    }
    if let (Some(est), Some(rows)) = (span.estimate, span.rows) {
        if is_misestimate(est, rows) {
            out.push_str("  [misestimate]");
        }
    }
    for (name, value) in &span.counters {
        let _ = write!(out, "  {name}={value}");
    }
    if redact {
        out.push_str("  time=…");
    } else {
        let _ = write!(out, "  time={:?}", span.elapsed);
    }
    out.push('\n');
    for child in &span.children {
        render_span(child, depth + 1, redact, out);
    }
}

/// Estimate formatting shared with the EXPLAIN rendering: round, clamp
/// huge and non-finite values.
fn format_estimate(x: f64) -> String {
    if !x.is_finite() || x >= 1e15 {
        "1e15+".to_string()
    } else {
        format!("{}", x.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        let id = p.start("match", || unreachable!("detail must not be formatted"));
        p.finish_rows(id, 3);
        assert!(!p.is_enabled());
        assert!(p.take().is_none());
    }

    #[test]
    fn spans_nest_under_the_innermost_open_span() {
        let p = Profiler::enabled();
        let outer = p.start("match", || "outer".into());
        let inner = p.start("pattern", || "inner".into());
        p.finish_rows(inner, 2);
        p.finish_rows(outer, 1);
        let profile = p.take().unwrap();
        assert_eq!(profile.spans.len(), 1);
        assert_eq!(profile.spans[0].op, "match");
        assert_eq!(profile.spans[0].children.len(), 1);
        assert_eq!(profile.spans[0].children[0].op, "pattern");
        assert_eq!(profile.span_count(), 2);
        profile.validate().unwrap();
    }

    #[test]
    fn unfinished_spans_are_closed_by_take() {
        let p = Profiler::enabled();
        let _open = p.start("match", String::new);
        let profile = p.take().unwrap();
        assert_eq!(profile.spans.len(), 1);
    }

    #[test]
    fn span_cap_truncates_instead_of_growing() {
        let p = Profiler::enabled();
        for _ in 0..(MAX_SPANS + 10) {
            let id = p.start("where", String::new);
            p.finish_rows(id, 0);
        }
        let profile = p.take().unwrap();
        assert!(profile.truncated);
        assert_eq!(profile.span_count(), MAX_SPANS);
    }

    #[test]
    fn misestimate_needs_ratio_and_absolute_divergence() {
        assert!(is_misestimate(1000.0, 10));
        assert!(is_misestimate(10.0, 1000));
        assert!(!is_misestimate(4.0, 1), "absolute divergence too small");
        assert!(!is_misestimate(100.0, 60), "ratio too small");
    }

    #[test]
    fn misestimates_are_counted_and_rendered() {
        let p = Profiler::enabled();
        let id = p.start("pattern", || "(n:Person)".into());
        p.set_estimate(id, 5000.0);
        p.finish_rows(id, 3);
        let profile = p.take().unwrap();
        assert_eq!(profile.misestimates, 1);
        let text = profile.render(true);
        assert!(text.contains("est ~5000"));
        assert!(text.contains("rows=3"));
        assert!(text.contains("[misestimate]"));
        assert!(text.contains("time=…"), "golden mode redacts timings");
        assert!(!profile.render(false).contains("time=…"));
    }

    #[test]
    fn registry_round_trips_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("c").fetch_add(7, Ordering::Relaxed);
        assert_eq!(
            reg.counter("c").load(Ordering::Relaxed),
            7,
            "same name, same handle"
        );
        reg.set_gauge("g", 42);
        reg.histogram("h").record(Duration::from_micros(10));
        let snap = reg.snapshot();
        assert!(snap.contains(&("c".into(), 7)));
        assert!(snap.contains(&("g".into(), 42)));
        assert!(snap.contains(&("h_b03".into(), 1)));

        let text = reg.render_prometheus("gcore");
        assert!(text.contains("# TYPE gcore_c counter"));
        assert!(text.contains("gcore_c 7"));
        assert!(text.contains("# TYPE gcore_g gauge"));
        assert!(text.contains("gcore_h_bucket{le=\"16\"} 1"));
        assert!(text.contains("gcore_h_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("gcore_h_sum 10"));
        assert!(text.contains("gcore_h_count 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_changes() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.record(Duration::ZERO); // sub-µs → bucket 0
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(2));
        h.record(Duration::from_millis(1)); // 2^9 ≤ 1000 < 2^10
        let snap = h.snapshot();
        assert_eq!(snap.0[0], 2);
        assert_eq!(snap.0[1], 1);
        assert_eq!(snap.0[9], 1);
        assert_eq!(snap.count(), 4);
        assert_eq!(h.sum(), 1003);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile_upper_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_us(0.5), Some(16));
        assert_eq!(snap.quantile_upper_us(0.99), Some(16));
        assert_eq!(snap.quantile_upper_us(1.0), Some(1 << 17));
    }

    #[test]
    fn core_metrics_share_registry_handles() {
        let reg = MetricsRegistry::new();
        let a = CoreMetrics::registered(&reg);
        let b = CoreMetrics::registered(&reg);
        CoreMetrics::add(&a.statements, 2);
        assert_eq!(b.statements.load(Ordering::Relaxed), 2);
        assert!(reg.snapshot().contains(&("statements".into(), 2)));
    }
}
