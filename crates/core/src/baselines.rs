//! Path-semantics baselines — the comparison of §6 ("Evaluation
//! semantics"), made executable.
//!
//! G-CORE evaluates path expressions under **arbitrary-walk,
//! shortest-path semantics**, which stays polynomial (§4). The two
//! incumbent alternatives it is contrasted with are:
//!
//! * **no-repeated-edge** (trail) semantics — Cypher 9: every edge at
//!   most once per path;
//! * **simple-path** semantics — every *node* at most once; deciding
//!   existence under a regular expression is NP-complete
//!   (Mendelzon & Wood \[23\]).
//!
//! This module implements all three over a label-restricted reachability
//! problem so the benchmark suite can demonstrate the blow-up the paper
//! cites: enumeration counts explode combinatorially for trails and
//! simple paths while the shortest-walk evaluation stays linear.

use gcore_ppg::{EdgeId, Label, NodeId, PathPropertyGraph};
use std::collections::VecDeque;

/// Outcome of a baseline run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BaselineResult {
    /// Number of paths found (capped by the caller's budget).
    pub paths: u64,
    /// Search states expanded — the cost measure the complexity
    /// contrast is about.
    pub expansions: u64,
    /// True when the run stopped because it hit the budget.
    pub truncated: bool,
}

/// G-CORE semantics: the shortest walk from `src` to each reachable
/// node over edges carrying `label`, via BFS. Returns one path per
/// reachable target, with the number of expansions performed.
pub fn shortest_walks(g: &PathPropertyGraph, src: NodeId, label: Label) -> BaselineResult {
    let mut dist: gcore_ppg::hash::FxHashMap<NodeId, u32> = Default::default();
    let mut queue = VecDeque::new();
    dist.insert(src, 0);
    queue.push_back(src);
    let mut expansions = 0;
    while let Some(n) = queue.pop_front() {
        let d = dist[&n];
        for &e in g.out_edges(n) {
            if !g.has_label(e.into(), label) {
                continue;
            }
            expansions += 1;
            let t = g.edge(e).expect("adjacent").dst;
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(t) {
                e.insert(d + 1);
                queue.push_back(t);
            }
        }
    }
    BaselineResult {
        paths: dist.len() as u64 - 1,
        expansions,
        truncated: false,
    }
}

/// Cypher-9 semantics: enumerate all *trails* (no repeated edge) from
/// `src` to `dst` over `label` edges, stopping after `budget`
/// expansions.
pub fn trails(
    g: &PathPropertyGraph,
    src: NodeId,
    dst: NodeId,
    label: Label,
    budget: u64,
) -> BaselineResult {
    let mut used: Vec<EdgeId> = Vec::new();
    let mut result = BaselineResult {
        paths: 0,
        expansions: 0,
        truncated: false,
    };
    fn rec(
        g: &PathPropertyGraph,
        cur: NodeId,
        dst: NodeId,
        label: Label,
        used: &mut Vec<EdgeId>,
        result: &mut BaselineResult,
        budget: u64,
    ) {
        if result.truncated {
            return;
        }
        if cur == dst && !used.is_empty() {
            result.paths += 1;
        }
        for &e in g.out_edges(cur) {
            if result.expansions >= budget {
                result.truncated = true;
                return;
            }
            if !g.has_label(e.into(), label) || used.contains(&e) {
                continue;
            }
            result.expansions += 1;
            used.push(e);
            let t = g.edge(e).expect("adjacent").dst;
            rec(g, t, dst, label, used, result, budget);
            used.pop();
        }
    }
    rec(g, src, dst, label, &mut used, &mut result, budget);
    result
}

/// Simple-path semantics: enumerate all node-disjoint paths from `src`
/// to `dst` over `label` edges — the NP-hard case of \[23\] — stopping
/// after `budget` expansions.
pub fn simple_paths(
    g: &PathPropertyGraph,
    src: NodeId,
    dst: NodeId,
    label: Label,
    budget: u64,
) -> BaselineResult {
    let mut visited: Vec<NodeId> = vec![src];
    let mut result = BaselineResult {
        paths: 0,
        expansions: 0,
        truncated: false,
    };
    fn rec(
        g: &PathPropertyGraph,
        cur: NodeId,
        dst: NodeId,
        label: Label,
        visited: &mut Vec<NodeId>,
        result: &mut BaselineResult,
        budget: u64,
    ) {
        if result.truncated {
            return;
        }
        if cur == dst && visited.len() > 1 {
            result.paths += 1;
            return;
        }
        for &e in g.out_edges(cur) {
            if result.expansions >= budget {
                result.truncated = true;
                return;
            }
            if !g.has_label(e.into(), label) {
                continue;
            }
            let t = g.edge(e).expect("adjacent").dst;
            if visited.contains(&t) {
                continue;
            }
            result.expansions += 1;
            visited.push(t);
            rec(g, t, dst, label, visited, result, budget);
            visited.pop();
        }
    }
    rec(g, src, dst, label, &mut visited, &mut result, budget);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::{Attributes, GraphBuilder};

    /// A k-diamond chain: between each consecutive pair of hubs there
    /// are two parallel two-edge routes, so the number of simple paths
    /// from end to end is 2^k while the shortest-walk search stays
    /// linear in k.
    fn diamond_chain(k: usize) -> (PathPropertyGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::standalone();
        let mut hub = b.node(Attributes::new());
        let first = hub;
        for _ in 0..k {
            let up = b.node(Attributes::new());
            let down = b.node(Attributes::new());
            let next = b.node(Attributes::new());
            for (a, c) in [(hub, up), (hub, down), (up, next), (down, next)] {
                b.edge(a, c, Attributes::labeled("e"));
            }
            hub = next;
        }
        (b.build(), first, hub)
    }

    #[test]
    fn shortest_walks_visit_each_edge_once() {
        let (g, src, _) = diamond_chain(6);
        let r = shortest_walks(&g, src, Label::new("e"));
        assert_eq!(r.paths as usize, g.node_count() - 1);
        assert_eq!(r.expansions as usize, g.edge_count());
        assert!(!r.truncated);
    }

    #[test]
    fn simple_path_count_is_exponential_in_diamonds() {
        for k in 1..6 {
            let (g, src, dst) = diamond_chain(k);
            let r = simple_paths(&g, src, dst, Label::new("e"), u64::MAX);
            assert_eq!(r.paths, 1 << k, "2^{k} simple paths");
        }
    }

    #[test]
    fn trails_match_simple_paths_on_dags() {
        // In a DAG no edge can repeat, so trails = simple paths.
        let (g, src, dst) = diamond_chain(4);
        let t = trails(&g, src, dst, Label::new("e"), u64::MAX);
        let s = simple_paths(&g, src, dst, Label::new("e"), u64::MAX);
        assert_eq!(t.paths, s.paths);
    }

    #[test]
    fn budget_truncates_enumeration() {
        let (g, src, dst) = diamond_chain(10);
        let r = simple_paths(&g, src, dst, Label::new("e"), 100);
        assert!(r.truncated);
        assert!(r.expansions <= 101);
    }

    #[test]
    fn blowup_ratio_grows() {
        // The §6 contrast: expansions of enumeration vs shortest-walk.
        let (g, src, dst) = diamond_chain(8);
        let walk = shortest_walks(&g, src, Label::new("e"));
        let simple = simple_paths(&g, src, dst, Label::new("e"), u64::MAX);
        assert!(
            simple.expansions > 10 * walk.expansions,
            "simple-path enumeration ({}) must dwarf BFS ({})",
            simple.expansions,
            walk.expansions
        );
    }
}
