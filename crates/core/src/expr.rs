//! Expression evaluation — §A.1 "Expressions".
//!
//! An expression evaluates, for one binding µ, to an [`Rv`]: an element
//! identifier, a literal, a *value set* (property access is multi-valued,
//! per Definition 2.1), or a list (`nodes(p)`, `labels(x)`, `COLLECT`).
//!
//! Set-aware comparison semantics reproduce the guided tour's worked
//! examples: `=` compares property sets as sets (scalars coerce to
//! singletons), `IN` is membership, `SUBSET` is inclusion, and absent
//! properties are the empty set (so `"MIT" = {"CWI","MIT"}` is FALSE while
//! `"MIT" IN {"CWI","MIT"}` is TRUE).

use crate::binding::{BindingTable, Bound};
use crate::context::{EvalCtx, FreshPath};
use crate::error::{Result, RuntimeError};
use gcore_parser::ast::{AggOp, BinaryOp, Expr, Func, Pattern, Query, UnaryOp};
use gcore_ppg::{Date, ElementId, Key, Label, PathPropertyGraph, PropertySet, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Runtime value of an expression.
#[derive(Clone, Debug)]
pub enum Rv {
    /// Absence (failed lookups, missing variables).
    Null,
    /// A scalar literal.
    Value(Value),
    /// A value set — the result of property access σ(x, k).
    Set(PropertySet),
    /// An element identifier.
    Node(gcore_ppg::NodeId),
    /// A node identifier.
    Edge(gcore_ppg::EdgeId),
    /// An edge identifier.
    Path(gcore_ppg::PathId),
    /// A computed (not stored) path, by arena index.
    FreshPath(usize),
    /// A list (nodes(p), edges(p), labels(x), COLLECT(…)).
    List(Vec<Rv>),
}

impl Rv {
    /// Boolean truthiness: only `TRUE` (possibly as a singleton set)
    /// passes a WHERE filter.
    pub fn truthy(&self) -> bool {
        match self {
            Rv::Value(Value::Bool(b)) => *b,
            Rv::Set(s) => s.as_singleton().and_then(Value::as_bool).unwrap_or(false),
            _ => false,
        }
    }

    /// Scalar coercion: singleton sets unwrap; everything non-scalar
    /// becomes `None`.
    pub fn as_scalar(&self) -> Option<Value> {
        match self {
            Rv::Value(v) => Some(v.clone()),
            Rv::Set(s) => s.as_singleton().cloned(),
            _ => None,
        }
    }

    /// Coercion to a value set: scalars become singletons, Null the empty
    /// set. `None` for element ids and lists.
    pub fn as_set(&self) -> Option<PropertySet> {
        match self {
            Rv::Value(v) => Some(PropertySet::single(v.clone())),
            Rv::Set(s) => Some(s.clone()),
            Rv::Null => Some(PropertySet::empty()),
            _ => None,
        }
    }

    /// Convert a binding to an Rv.
    pub fn from_bound(b: &Bound) -> Rv {
        match b {
            Bound::Missing => Rv::Null,
            Bound::Node(n) => Rv::Node(*n),
            Bound::Edge(e) => Rv::Edge(*e),
            Bound::Path(p) => Rv::Path(*p),
            Bound::FreshPath(i) => Rv::FreshPath(*i),
            Bound::Value(v) => Rv::Value(v.clone()),
        }
    }

    /// Deterministic total order (used by COLLECT and grouping keys).
    pub fn total_cmp(&self, other: &Rv) -> Ordering {
        fn rank(r: &Rv) -> u8 {
            match r {
                Rv::Null => 0,
                Rv::Value(_) => 1,
                Rv::Set(_) => 2,
                Rv::Node(_) => 3,
                Rv::Edge(_) => 4,
                Rv::Path(_) => 5,
                Rv::FreshPath(_) => 6,
                Rv::List(_) => 7,
            }
        }
        match (self, other) {
            (Rv::Value(a), Rv::Value(b)) => a.cmp(b),
            (Rv::Set(a), Rv::Set(b)) => a.cmp(b),
            (Rv::Node(a), Rv::Node(b)) => a.cmp(b),
            (Rv::Edge(a), Rv::Edge(b)) => a.cmp(b),
            (Rv::Path(a), Rv::Path(b)) => a.cmp(b),
            (Rv::FreshPath(a), Rv::FreshPath(b)) => a.cmp(b),
            (Rv::List(a), Rv::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Variable environment: a cursor over one row of a binding table plus
/// an optional outer scope (correlated EXISTS subqueries see their
/// outer bindings, §A.2).
pub struct Env<'a> {
    /// The binding table the row belongs to.
    pub table: &'a BindingTable,
    /// Index of the current row in `table`.
    pub row: usize,
    /// Outer scope for correlated subqueries.
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    /// Root environment.
    pub fn new(table: &'a BindingTable, row: usize) -> Self {
        Env {
            table,
            row,
            parent: None,
        }
    }

    /// Look up a variable: the binding and the graph its attributes
    /// resolve against.
    pub fn lookup(&self, var: &str) -> Option<(Bound, Arc<PathPropertyGraph>)> {
        if let Some(i) = self.table.column_index(var) {
            return Some((
                self.table.bound(self.row, i),
                self.table.columns()[i].graph.clone(),
            ));
        }
        self.parent.and_then(|p| p.lookup(var))
    }

    /// Does any scope bind `var`? Schema-only — no cell is decoded, so
    /// this is the accessor for "is it bound" checks on literal-heavy
    /// tables (where [`lookup`](Self::lookup) would clone a value out of
    /// the pool just to drop it).
    pub fn binds(&self, var: &str) -> bool {
        self.table.binds(var) || self.parent.is_some_and(|p| p.binds(var))
    }

    /// Look up a variable directly as an [`Rv`]. Literal cells are
    /// resolved through [`gcore_ppg::ValueInterner::with_resolved`] —
    /// one borrow of the shared pool and a single clone into the result,
    /// instead of the decode-clone *plus* conversion-clone (and the
    /// graph-handle clone) that `lookup` + [`Rv::from_bound`] would pay
    /// per cell. This is the `Expr::Var` hot path.
    pub fn lookup_rv(&self, var: &str) -> Option<Rv> {
        if let Some(i) = self.table.column_index(var) {
            return Some(rv_at(self.table, self.row, i));
        }
        self.parent.and_then(|p| p.lookup_rv(var))
    }

    /// [`lookup_rv`](Self::lookup_rv), also returning the graph the
    /// variable's column resolves attributes against.
    pub fn lookup_rv_graph(&self, var: &str) -> Option<(Rv, Arc<PathPropertyGraph>)> {
        if let Some(i) = self.table.column_index(var) {
            return Some((
                rv_at(self.table, self.row, i),
                self.table.columns()[i].graph.clone(),
            ));
        }
        self.parent.and_then(|p| p.lookup_rv_graph(var))
    }
}

/// Decode one table cell straight to an [`Rv`], borrowing literal values
/// from the pool (a single clone into the result).
fn rv_at(table: &BindingTable, row: usize, col: usize) -> Rv {
    match table.value_code(row, col) {
        Some(code) => Rv::Value(table.pool().with_resolved(code, Value::clone)),
        None => Rv::from_bound(&table.bound(row, col)),
    }
}

/// Hook for subquery evaluation, implemented by the query evaluator.
pub trait SubqueryEval {
    /// `EXISTS (q)` with the current binding visible as outer scope.
    fn eval_exists(&self, q: &Query, env: &Env<'_>) -> Result<bool>;
    /// A graph pattern used as a predicate (implicit existential).
    fn eval_pattern_predicate(&self, p: &Pattern, env: &Env<'_>) -> Result<bool>;
}

/// Evaluate an expression for one binding.
pub fn eval_expr(ctx: &EvalCtx, sub: &dyn SubqueryEval, env: &Env<'_>, e: &Expr) -> Result<Rv> {
    match e {
        Expr::Int(i) => Ok(Rv::Value(Value::Int(*i))),
        Expr::Float(x) => Ok(Rv::Value(Value::Float(*x))),
        Expr::Str(s) => Ok(Rv::Value(Value::str(s.clone()))),
        Expr::Bool(b) => Ok(Rv::Value(Value::Bool(*b))),
        Expr::Null => Ok(Rv::Null),
        Expr::DateLit(s) => Date::parse(s)
            .map(|d| Rv::Value(Value::Date(d)))
            .ok_or_else(|| RuntimeError::Type(format!("invalid date literal '{s}'")).into()),
        Expr::Var(v) => Ok(env.lookup_rv(v).unwrap_or(Rv::Null)),
        Expr::Prop(base, key) => eval_prop(ctx, sub, env, base, key),
        Expr::LabelTest(base, labels) => {
            let (rv, graph) = eval_with_graph(ctx, sub, env, base)?;
            let id = match rv {
                Rv::Node(n) => Some(ElementId::Node(n)),
                Rv::Edge(e) => Some(ElementId::Edge(e)),
                Rv::Path(p) => Some(ElementId::Path(p)),
                _ => None,
            };
            let Some(id) = id else {
                return Ok(Rv::Value(Value::Bool(false)));
            };
            let ok = labels
                .iter()
                .any(|l| Label::lookup(l).is_some_and(|label| graph.has_label(id, label)));
            Ok(Rv::Value(Value::Bool(ok)))
        }
        Expr::Index(base, idx) => {
            let list = eval_expr(ctx, sub, env, base)?;
            let i = eval_expr(ctx, sub, env, idx)?;
            let Some(Value::Int(i)) = i.as_scalar() else {
                return Ok(Rv::Null);
            };
            match list {
                Rv::List(items) => {
                    if i >= 0 && (i as usize) < items.len() {
                        Ok(items[i as usize].clone())
                    } else {
                        Ok(Rv::Null)
                    }
                }
                Rv::Set(s) => {
                    // Indexing a value set uses its sorted order.
                    let vs = s.values();
                    if i >= 0 && (i as usize) < vs.len() {
                        Ok(Rv::Value(vs[i as usize].clone()))
                    } else {
                        Ok(Rv::Null)
                    }
                }
                _ => Ok(Rv::Null),
            }
        }
        Expr::Unary(UnaryOp::Not, inner) => {
            let v = eval_expr(ctx, sub, env, inner)?;
            Ok(Rv::Value(Value::Bool(!v.truthy())))
        }
        Expr::Unary(UnaryOp::Neg, inner) => {
            let v = eval_expr(ctx, sub, env, inner)?;
            match v.as_scalar() {
                Some(Value::Int(i)) => Ok(Rv::Value(Value::Int(-i))),
                Some(Value::Float(f)) => Ok(Rv::Value(Value::Float(-f))),
                _ => Ok(Rv::Null),
            }
        }
        Expr::Binary(op, l, r) => eval_binary(ctx, sub, env, *op, l, r),
        Expr::Func(f, args) => eval_func(ctx, sub, env, *f, args),
        Expr::Aggregate { .. } => Err(crate::error::SemanticError::MisplacedAggregate(
            "this position (aggregates belong in CONSTRUCT assignments, SET items and SELECT \
             items)"
                .into(),
        )
        .into()),
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            for (cond, result) in whens {
                let hit = match operand {
                    Some(op_expr) => {
                        let lhs = eval_expr(ctx, sub, env, op_expr)?;
                        let rhs = eval_expr(ctx, sub, env, cond)?;
                        rv_eq(&lhs, &rhs)
                    }
                    None => eval_expr(ctx, sub, env, cond)?.truthy(),
                };
                if hit {
                    return eval_expr(ctx, sub, env, result);
                }
            }
            match else_ {
                Some(e) => eval_expr(ctx, sub, env, e),
                None => Ok(Rv::Null),
            }
        }
        Expr::Exists(q) => Ok(Rv::Value(Value::Bool(sub.eval_exists(q, env)?))),
        Expr::PatternPredicate(p) => {
            Ok(Rv::Value(Value::Bool(sub.eval_pattern_predicate(p, env)?)))
        }
    }
}

/// Evaluate `base`, also returning the graph for attribute resolution:
/// variables use their column's graph, everything else the ambient graph.
fn eval_with_graph(
    ctx: &EvalCtx,
    sub: &dyn SubqueryEval,
    env: &Env<'_>,
    base: &Expr,
) -> Result<(Rv, Arc<PathPropertyGraph>)> {
    if let Expr::Var(v) = base {
        if let Some((rv, g)) = env.lookup_rv_graph(v) {
            return Ok((rv, g));
        }
        return Ok((Rv::Null, ctx.ambient_graph()?));
    }
    let rv = eval_expr(ctx, sub, env, base)?;
    Ok((rv, ctx.ambient_graph()?))
}

fn eval_prop(
    ctx: &EvalCtx,
    sub: &dyn SubqueryEval,
    env: &Env<'_>,
    base: &Expr,
    key: &str,
) -> Result<Rv> {
    let (rv, graph) = eval_with_graph(ctx, sub, env, base)?;
    let Some(key) = Key::lookup(key) else {
        // Never-interned key: no graph anywhere assigns it.
        return Ok(Rv::Set(PropertySet::empty()));
    };
    let id = match rv {
        Rv::Node(n) => ElementId::Node(n),
        Rv::Edge(e) => ElementId::Edge(e),
        Rv::Path(p) => ElementId::Path(p),
        Rv::FreshPath(_) | Rv::Null => return Ok(Rv::Set(PropertySet::empty())),
        other => {
            return Err(RuntimeError::Type(format!(
                "property access on a non-element value ({other:?})"
            ))
            .into())
        }
    };
    Ok(Rv::Set(graph.prop(id, key)))
}

fn eval_binary(
    ctx: &EvalCtx,
    sub: &dyn SubqueryEval,
    env: &Env<'_>,
    op: BinaryOp,
    l: &Expr,
    r: &Expr,
) -> Result<Rv> {
    // Short-circuit logic first.
    match op {
        BinaryOp::And => {
            let lv = eval_expr(ctx, sub, env, l)?;
            if !lv.truthy() {
                return Ok(Rv::Value(Value::Bool(false)));
            }
            let rv = eval_expr(ctx, sub, env, r)?;
            return Ok(Rv::Value(Value::Bool(rv.truthy())));
        }
        BinaryOp::Or => {
            let lv = eval_expr(ctx, sub, env, l)?;
            if lv.truthy() {
                return Ok(Rv::Value(Value::Bool(true)));
            }
            let rv = eval_expr(ctx, sub, env, r)?;
            return Ok(Rv::Value(Value::Bool(rv.truthy())));
        }
        _ => {}
    }
    let lv = eval_expr(ctx, sub, env, l)?;
    let rv = eval_expr(ctx, sub, env, r)?;
    match op {
        BinaryOp::Eq => Ok(Rv::Value(Value::Bool(rv_eq(&lv, &rv)))),
        BinaryOp::Neq => Ok(Rv::Value(Value::Bool(!rv_eq(&lv, &rv)))),
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let (Some(a), Some(b)) = (lv.as_scalar(), rv.as_scalar()) else {
                return Ok(Rv::Value(Value::Bool(false)));
            };
            let Some(ord) = a.partial_order(&b) else {
                return Ok(Rv::Value(Value::Bool(false)));
            };
            let ok = match op {
                BinaryOp::Lt => ord == Ordering::Less,
                BinaryOp::Le => ord != Ordering::Greater,
                BinaryOp::Gt => ord == Ordering::Greater,
                BinaryOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Rv::Value(Value::Bool(ok)))
        }
        BinaryOp::In => {
            // Scalar (or singleton-set) membership in a set or list.
            match &rv {
                Rv::List(items) => {
                    let ok = items.iter().any(|i| rv_eq(&lv, i));
                    Ok(Rv::Value(Value::Bool(ok)))
                }
                _ => {
                    let (Some(needle), Some(hay)) = (lv.as_scalar(), rv.as_set()) else {
                        return Ok(Rv::Value(Value::Bool(false)));
                    };
                    Ok(Rv::Value(Value::Bool(hay.contains(&needle))))
                }
            }
        }
        BinaryOp::Subset => {
            let (Some(a), Some(b)) = (lv.as_set(), rv.as_set()) else {
                return Ok(Rv::Value(Value::Bool(false)));
            };
            Ok(Rv::Value(Value::Bool(a.is_subset_of(&b))))
        }
        BinaryOp::Add => {
            // String concatenation or numeric addition.
            match (lv.as_scalar(), rv.as_scalar()) {
                (Some(Value::Str(a)), Some(b)) => Ok(Rv::Value(Value::Str(format!("{a}{b}")))),
                (Some(a), Some(Value::Str(b))) => Ok(Rv::Value(Value::Str(format!("{a}{b}")))),
                (Some(a), Some(b)) => numeric_op(&a, &b, |x, y| x + y, |x, y| x.checked_add(y)),
                _ => Ok(Rv::Null),
            }
        }
        BinaryOp::Sub => scalar_numeric(&lv, &rv, |x, y| x - y, |x, y| x.checked_sub(y)),
        BinaryOp::Mul => scalar_numeric(&lv, &rv, |x, y| x * y, |x, y| x.checked_mul(y)),
        BinaryOp::Div => {
            // Division is real-valued: the paper's weight expression
            // `1 / (1 + e.nr_messages)` must not truncate to zero.
            let (Some(a), Some(b)) = (lv.as_scalar(), rv.as_scalar()) else {
                return Ok(Rv::Null);
            };
            let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                return Ok(Rv::Null);
            };
            if y == 0.0 {
                return Err(RuntimeError::DivisionByZero.into());
            }
            Ok(Rv::Value(Value::Float(x / y)))
        }
        BinaryOp::Mod => {
            let (Some(Value::Int(a)), Some(Value::Int(b))) = (lv.as_scalar(), rv.as_scalar())
            else {
                return Ok(Rv::Null);
            };
            if b == 0 {
                return Err(RuntimeError::DivisionByZero.into());
            }
            Ok(Rv::Value(Value::Int(a % b)))
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn scalar_numeric(
    lv: &Rv,
    rv: &Rv,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Rv> {
    match (lv.as_scalar(), rv.as_scalar()) {
        (Some(a), Some(b)) => numeric_op(&a, &b, ff, fi),
        _ => Ok(Rv::Null),
    }
}

fn numeric_op(
    a: &Value,
    b: &Value,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Rv> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match fi(*x, *y) {
            Some(r) => Ok(Rv::Value(Value::Int(r))),
            None => Ok(Rv::Value(Value::Float(ff(*x as f64, *y as f64)))),
        },
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Rv::Value(Value::Float(ff(x, y)))),
            _ => Ok(Rv::Null),
        },
    }
}

/// Set-aware equality: sets compare as sets (scalars coerce to
/// singletons), elements by identity, lists pointwise; Null equals
/// nothing.
pub fn rv_eq(a: &Rv, b: &Rv) -> bool {
    match (a, b) {
        (Rv::Null, _) | (_, Rv::Null) => false,
        (Rv::Node(x), Rv::Node(y)) => x == y,
        (Rv::Edge(x), Rv::Edge(y)) => x == y,
        (Rv::Path(x), Rv::Path(y)) => x == y,
        (Rv::FreshPath(x), Rv::FreshPath(y)) => x == y,
        (Rv::List(xs), Rv::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| rv_eq(x, y))
        }
        (Rv::Set(_), _) | (_, Rv::Set(_)) => match (a.as_set(), b.as_set()) {
            (Some(x), Some(y)) => x.set_eq(&y),
            _ => false,
        },
        (Rv::Value(x), Rv::Value(y)) => x.sem_eq(y),
        _ => false,
    }
}

fn eval_func(
    ctx: &EvalCtx,
    sub: &dyn SubqueryEval,
    env: &Env<'_>,
    f: Func,
    args: &[Expr],
) -> Result<Rv> {
    let arity_err = |n: usize| -> crate::error::EngineError {
        RuntimeError::Type(format!("{} expects {n} argument(s)", f.name())).into()
    };
    match f {
        Func::Labels => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let (rv, graph) = eval_with_graph(ctx, sub, env, arg)?;
            let id = match rv {
                Rv::Node(n) => ElementId::Node(n),
                Rv::Edge(e) => ElementId::Edge(e),
                Rv::Path(p) => ElementId::Path(p),
                _ => return Ok(Rv::List(Vec::new())),
            };
            Ok(Rv::List(
                graph
                    .labels(id)
                    .names()
                    .into_iter()
                    .map(|n| Rv::Value(Value::Str(n)))
                    .collect(),
            ))
        }
        Func::Nodes | Func::Edges | Func::Length => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let (rv, graph) = eval_with_graph(ctx, sub, env, arg)?;
            let (nodes, edges): (Vec<_>, Vec<_>) = match rv {
                Rv::Path(p) => {
                    let Some(data) = graph.path(p) else {
                        return Ok(Rv::Null);
                    };
                    (data.shape.nodes().to_vec(), data.shape.edges().to_vec())
                }
                Rv::FreshPath(i) => match ctx.fresh_path(i) {
                    FreshPath::Walk { shape, .. } => {
                        (shape.nodes().to_vec(), shape.edges().to_vec())
                    }
                    FreshPath::Projection { nodes, edges, .. } => (nodes, edges),
                },
                _ => return Ok(Rv::Null),
            };
            Ok(match f {
                Func::Nodes => Rv::List(nodes.into_iter().map(Rv::Node).collect()),
                Func::Edges => Rv::List(edges.into_iter().map(Rv::Edge).collect()),
                Func::Length => Rv::Value(Value::Int(edges.len() as i64)),
                _ => unreachable!(),
            })
        }
        Func::Size => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            let n = match &rv {
                Rv::Set(s) => s.len(),
                Rv::List(l) => l.len(),
                Rv::Value(Value::Str(s)) => s.chars().count(),
                Rv::Null => 0,
                _ => return Ok(Rv::Null),
            };
            Ok(Rv::Value(Value::Int(n as i64)))
        }
        Func::ToString => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            match rv.as_scalar() {
                Some(v) => Ok(Rv::Value(Value::Str(v.to_string()))),
                None => Ok(Rv::Null),
            }
        }
        Func::ToInteger => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv.as_scalar() {
                Some(Value::Int(i)) => Rv::Value(Value::Int(i)),
                Some(Value::Float(f)) => Rv::Value(Value::Int(f.trunc() as i64)),
                Some(Value::Str(s)) => s
                    .trim()
                    .parse::<i64>()
                    .map(|i| Rv::Value(Value::Int(i)))
                    .unwrap_or(Rv::Null),
                Some(Value::Bool(b)) => Rv::Value(Value::Int(b as i64)),
                _ => Rv::Null,
            })
        }
        Func::ToFloat => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv.as_scalar() {
                Some(Value::Int(i)) => Rv::Value(Value::Float(i as f64)),
                Some(Value::Float(f)) => Rv::Value(Value::Float(f)),
                Some(Value::Str(s)) => s
                    .trim()
                    .parse::<f64>()
                    .map(|f| Rv::Value(Value::Float(f)))
                    .unwrap_or(Rv::Null),
                _ => Rv::Null,
            })
        }
        Func::Lower | Func::Upper => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            match rv.as_scalar() {
                Some(Value::Str(s)) => Ok(Rv::Value(Value::Str(if f == Func::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                }))),
                _ => Ok(Rv::Null),
            }
        }
        Func::Abs => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv.as_scalar() {
                Some(Value::Int(i)) => Rv::Value(Value::Int(i.abs())),
                Some(Value::Float(f)) => Rv::Value(Value::Float(f.abs())),
                _ => Rv::Null,
            })
        }
        Func::Trim => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv.as_scalar() {
                Some(Value::Str(s)) => Rv::Value(Value::Str(s.trim().to_owned())),
                _ => Rv::Null,
            })
        }
        Func::Contains | Func::StartsWith | Func::EndsWith => {
            let [a, b] = args else {
                return Err(arity_err(2));
            };
            let a = eval_expr(ctx, sub, env, a)?;
            let b = eval_expr(ctx, sub, env, b)?;
            Ok(match (a.as_scalar(), b.as_scalar()) {
                (Some(Value::Str(hay)), Some(Value::Str(needle))) => {
                    Rv::Value(Value::Bool(match f {
                        Func::Contains => hay.contains(&needle),
                        Func::StartsWith => hay.starts_with(&needle),
                        Func::EndsWith => hay.ends_with(&needle),
                        _ => unreachable!(),
                    }))
                }
                _ => Rv::Null,
            })
        }
        Func::Substring => {
            if args.len() != 2 && args.len() != 3 {
                return Err(arity_err(2));
            }
            let s = eval_expr(ctx, sub, env, &args[0])?;
            let start = eval_expr(ctx, sub, env, &args[1])?;
            let (Some(Value::Str(s)), Some(Value::Int(start))) = (s.as_scalar(), start.as_scalar())
            else {
                return Ok(Rv::Null);
            };
            let start = start.max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let end = match args.get(2) {
                None => chars.len(),
                Some(len_expr) => {
                    let len = eval_expr(ctx, sub, env, len_expr)?;
                    match len.as_scalar() {
                        Some(Value::Int(l)) => (start + l.max(0) as usize).min(chars.len()),
                        _ => return Ok(Rv::Null),
                    }
                }
            };
            if start >= chars.len() {
                return Ok(Rv::Value(Value::Str(String::new())));
            }
            Ok(Rv::Value(Value::Str(chars[start..end].iter().collect())))
        }
        Func::Year | Func::Month | Func::Day => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            // Accept both Date values and ISO-formatted strings.
            let date = match rv.as_scalar() {
                Some(Value::Date(d)) => Some(d),
                Some(Value::Str(s)) => Date::parse(&s),
                _ => None,
            };
            Ok(match date {
                Some(d) => Rv::Value(Value::Int(match f {
                    Func::Year => d.year as i64,
                    Func::Month => d.month as i64,
                    Func::Day => d.day as i64,
                    _ => unreachable!(),
                })),
                None => Rv::Null,
            })
        }
        Func::Floor | Func::Ceil => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv.as_scalar() {
                Some(Value::Int(i)) => Rv::Value(Value::Int(i)),
                Some(Value::Float(x)) => Rv::Value(Value::Int(if f == Func::Floor {
                    x.floor() as i64
                } else {
                    x.ceil() as i64
                })),
                _ => Rv::Null,
            })
        }
        Func::Sqrt => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv.as_scalar().and_then(|v| v.as_f64()) {
                Some(x) if x >= 0.0 => Rv::Value(Value::Float(x.sqrt())),
                _ => Rv::Null,
            })
        }
        Func::Head | Func::Last => {
            let [arg] = args else {
                return Err(arity_err(1));
            };
            let rv = eval_expr(ctx, sub, env, arg)?;
            Ok(match rv {
                Rv::List(items) if !items.is_empty() => {
                    if f == Func::Head {
                        items.into_iter().next().expect("nonempty")
                    } else {
                        items.into_iter().next_back().expect("nonempty")
                    }
                }
                _ => Rv::Null,
            })
        }
    }
}

/// Evaluate an aggregate over the rows of one group.
///
/// `COUNT(*)` counts the group's bindings — except pure padding rows
/// introduced by OPTIONAL's left outer join (rows whose every column
/// outside `group_cols` is `Missing`), which count as zero. This is what
/// makes the paper's `nr_messages := COUNT(*)` put `0` (not 1) on knows
/// edges without any exchanged message (Figure 5).
#[allow(clippy::too_many_arguments)]
pub fn eval_aggregate(
    ctx: &EvalCtx,
    sub: &dyn SubqueryEval,
    table: &BindingTable,
    group_rows: &[usize],
    group_cols: &[usize],
    op: AggOp,
    distinct: bool,
    arg: Option<&Expr>,
    outer: Option<&Env<'_>>,
) -> Result<Rv> {
    let mut values: Vec<Rv> = Vec::new();
    let width = table.columns().len();
    for &ri in group_rows {
        match arg {
            None => {
                // COUNT(*): skip pure left-outer padding rows.
                let padding = (0..width)
                    .filter(|i| !group_cols.contains(i))
                    .all(|i| table.is_missing_at(ri, i));
                let non_trivial = width > group_cols.len();
                if !(padding && non_trivial) {
                    values.push(Rv::Value(Value::Int(1)));
                }
            }
            Some(e) => {
                let mut env = Env::new(table, ri);
                env.parent = outer;
                let v = eval_expr(ctx, sub, &env, e)?;
                if !matches!(v, Rv::Null) {
                    values.push(v);
                }
            }
        }
    }
    if distinct {
        values.sort_by(|a, b| a.total_cmp(b));
        values.dedup_by(|a, b| a.total_cmp(b) == Ordering::Equal);
    }
    match op {
        AggOp::Count => Ok(Rv::Value(Value::Int(values.len() as i64))),
        AggOp::Collect => {
            let mut v = values;
            v.sort_by(|a, b| a.total_cmp(b));
            Ok(Rv::List(v))
        }
        AggOp::Sum | AggOp::Avg => {
            let mut sum = 0.0;
            let mut all_int = true;
            let mut n = 0usize;
            for v in &values {
                match v.as_scalar() {
                    Some(Value::Int(i)) => {
                        sum += i as f64;
                        n += 1;
                    }
                    Some(Value::Float(f)) => {
                        sum += f;
                        all_int = false;
                        n += 1;
                    }
                    _ => {}
                }
            }
            if n == 0 {
                return Ok(if op == AggOp::Sum {
                    Rv::Value(Value::Int(0))
                } else {
                    Rv::Null
                });
            }
            if op == AggOp::Avg {
                Ok(Rv::Value(Value::Float(sum / n as f64)))
            } else if all_int {
                Ok(Rv::Value(Value::Int(sum as i64)))
            } else {
                Ok(Rv::Value(Value::Float(sum)))
            }
        }
        AggOp::Min | AggOp::Max => {
            let mut best: Option<Value> = None;
            for v in &values {
                if let Some(s) = v.as_scalar() {
                    best = Some(match best {
                        None => s,
                        Some(b) => {
                            let keep_new = match s.partial_order(&b) {
                                Some(Ordering::Less) => op == AggOp::Min,
                                Some(Ordering::Greater) => op == AggOp::Max,
                                _ => false,
                            };
                            if keep_new {
                                s
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            Ok(best.map_or(Rv::Null, Rv::Value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::Column;
    use gcore_ppg::{Attributes, Catalog, NodeId};

    struct NoSub;
    impl SubqueryEval for NoSub {
        fn eval_exists(&self, _: &Query, _: &Env<'_>) -> Result<bool> {
            panic!("no subqueries in these tests")
        }
        fn eval_pattern_predicate(&self, _: &Pattern, _: &Env<'_>) -> Result<bool> {
            panic!("no pattern predicates in these tests")
        }
    }

    fn setup() -> (EvalCtx, BindingTable) {
        let mut g = PathPropertyGraph::new();
        g.add_node(
            NodeId(1),
            Attributes::labeled("Person")
                .with_prop("name", "Frank")
                .with_prop_set(
                    "employer",
                    PropertySet::from_values([Value::str("CWI"), Value::str("MIT")]),
                ),
        );
        g.add_node(
            NodeId(2),
            Attributes::labeled("Company").with_prop("name", "MIT"),
        );
        let g = Arc::new(g);
        let cols = vec![
            Column {
                var: "n".into(),
                graph: g.clone(),
            },
            Column {
                var: "c".into(),
                graph: g.clone(),
            },
        ];
        let mut b = crate::binding::TableBuilder::new(cols);
        b.push(&[Bound::Node(NodeId(1)), Bound::Node(NodeId(2))]);
        let table = b.finish();
        let mut catalog = Catalog::new();
        catalog.register_graph("g", Arc::try_unwrap(g).unwrap_or_else(|a| (*a).clone()));
        catalog.set_default_graph("g");
        (EvalCtx::from_catalog(catalog), table)
    }

    fn eval(ctx: &EvalCtx, table: &BindingTable, src: &str) -> Rv {
        // Reuse the full parser by wrapping the expression in a query.
        let q = gcore_parser::parse_query(&format!("CONSTRUCT (x) MATCH (x) WHERE {src}"))
            .expect("expr parses");
        let gcore_parser::ast::QueryBody::Graph(gcore_parser::ast::FullGraphQuery::Basic(b)) =
            &q.body
        else {
            panic!()
        };
        let gcore_parser::ast::QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let expr = m.where_clause.as_ref().unwrap();
        let env = Env::new(table, 0);
        eval_expr(ctx, &NoSub, &env, expr).unwrap()
    }

    #[test]
    fn multi_valued_equality_is_set_equality() {
        let (ctx, t) = setup();
        // "MIT" = {"CWI","MIT"} → FALSE (the Frank Gold example)
        assert!(!eval(&ctx, &t, "c.name = n.employer").truthy());
        // "MIT" IN {"CWI","MIT"} → TRUE
        assert!(eval(&ctx, &t, "c.name IN n.employer").truthy());
        // {"MIT"} SUBSET {"CWI","MIT"} → TRUE
        assert!(eval(&ctx, &t, "c.name SUBSET n.employer").truthy());
        assert!(!eval(&ctx, &t, "n.employer SUBSET c.name").truthy());
    }

    #[test]
    fn absent_property_is_empty_set() {
        let (ctx, t) = setup();
        assert!(!eval(&ctx, &t, "n.salary = 100").truthy());
        assert!(eval(&ctx, &t, "size(n.salary) = 0").truthy());
        assert!(eval(&ctx, &t, "size(n.employer) = 2").truthy());
    }

    #[test]
    fn label_tests() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "(n:Person)").truthy());
        assert!(!eval(&ctx, &t, "(n:Company)").truthy());
        assert!(eval(&ctx, &t, "(n:Company|Person)").truthy());
    }

    #[test]
    fn arithmetic_and_division() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "1 + 2 * 3 = 7").truthy());
        // real division, the weighted-path requirement
        assert!(eval(&ctx, &t, "1 / (1 + 1) = 0.5").truthy());
        assert!(eval(&ctx, &t, "7 % 3 = 1").truthy());
        assert!(eval(&ctx, &t, "-(3) = 0 - 3").truthy());
    }

    #[test]
    fn string_concat() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "n.name + '!' = 'Frank!'").truthy());
    }

    #[test]
    fn case_expression_coalesces() {
        let (ctx, t) = setup();
        assert!(eval(
            &ctx,
            &t,
            "CASE WHEN size(n.salary) = 0 THEN -1 ELSE n.salary END = -1"
        )
        .truthy());
    }

    #[test]
    fn comparisons() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "1 < 2 AND 2 <= 2 AND 3 > 2 AND 3 >= 3").truthy());
        assert!(eval(&ctx, &t, "'abc' < 'abd'").truthy());
        assert!(!eval(&ctx, &t, "1 < 'abc'").truthy()); // incomparable
        assert!(eval(&ctx, &t, "NOT 1 = 2").truthy());
        assert!(eval(&ctx, &t, "1 <> 2").truthy());
    }

    #[test]
    fn functions() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "lower('AbC') = 'abc'").truthy());
        assert!(eval(&ctx, &t, "upper('a') = 'A'").truthy());
        assert!(eval(&ctx, &t, "abs(-(5)) = 5").truthy());
        assert!(eval(&ctx, &t, "toInteger('42') = 42").truthy());
        assert!(eval(&ctx, &t, "toFloat('1.5') = 1.5").truthy());
        assert!(eval(&ctx, &t, "toString(42) = '42'").truthy());
        assert!(eval(&ctx, &t, "size('hello') = 5").truthy());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let (ctx, t) = setup();
        let q = gcore_parser::parse_query("CONSTRUCT (x) MATCH (x) WHERE 1 / 0 = 1").unwrap();
        let gcore_parser::ast::QueryBody::Graph(gcore_parser::ast::FullGraphQuery::Basic(b)) =
            &q.body
        else {
            panic!()
        };
        let gcore_parser::ast::QuerySource::Match(m) = &b.source else {
            panic!()
        };
        let env = Env::new(&t, 0);
        let err = eval_expr(&ctx, &NoSub, &env, m.where_clause.as_ref().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::EngineError::Runtime(RuntimeError::DivisionByZero)
        ));
    }

    #[test]
    fn labels_function() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "'Person' IN labels(n)").truthy());
        assert!(!eval(&ctx, &t, "'Robot' IN labels(n)").truthy());
    }

    #[test]
    fn null_propagation() {
        let (ctx, t) = setup();
        assert!(!eval(&ctx, &t, "NULL = NULL").truthy());
        assert!(eval(&ctx, &t, "NOT NULL = NULL").truthy());
        assert!(!eval(&ctx, &t, "missing_var = 1").truthy());
    }

    #[test]
    fn date_literals() {
        let (ctx, t) = setup();
        assert!(eval(&ctx, &t, "DATE '2020-01-01' < DATE '2021-12-31'").truthy());
    }
}
