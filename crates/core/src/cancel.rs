//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a shared flag plus an optional deadline that
//! travels with an evaluation: the executor installs one in the
//! [`EvalCtx`](crate::EvalCtx), and the long loops in the matcher,
//! the join kernels, and the path searchers poll it at their natural
//! iteration boundaries. Polling is *cooperative* — nothing is ever
//! interrupted mid-operation, so a fired token surfaces as an ordinary
//! [`RuntimeError::Cancelled`](crate::error::RuntimeError)
//! and the worker thread returns to its pool instead of being
//! abandoned mid-flight.
//!
//! Checking the flag is a relaxed atomic load; checking the deadline
//! costs an `Instant::now()` call, so hot loops amortise it through
//! [`CancelToken::checkpoint`], which only consults the clock once per
//! [`CHECK_STRIDE`] iterations.

use crate::error::{EngineError, Result, RuntimeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many loop iterations pass between deadline checks in
/// [`CancelToken::checkpoint`]. A power of two so the modulo folds
/// into a mask.
pub const CHECK_STRIDE: u32 = 1024;

/// A shared cancellation signal: an atomic flag any holder may raise,
/// plus an optional wall-clock deadline after which the token counts
/// as fired even if nobody raised the flag.
///
/// Clones share the flag, so cancelling through any clone is observed
/// by all of them. The default token never fires.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that never fires on its own; it only cancels when
    /// [`cancel`](Self::cancel) is called on it or a clone.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A copy of this token that additionally fires at `deadline`.
    /// When the token already carries an earlier deadline, the earlier
    /// one is kept: derived scopes can only tighten the budget.
    #[must_use]
    pub fn with_deadline(&self, deadline: Instant) -> Self {
        let effective = match self.deadline {
            Some(existing) if existing <= deadline => existing,
            _ => deadline,
        };
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(effective),
        }
    }

    /// A copy of this token that additionally fires `budget` from now.
    #[must_use]
    pub fn with_timeout(&self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Raise the flag: every clone of this token observes the
    /// cancellation at its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has this token fired — either the shared flag was raised or the
    /// deadline passed?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Error out when the token has fired; the `Ok` path costs one
    /// relaxed load plus (when a deadline is set) one clock read.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(EngineError::Runtime(RuntimeError::Cancelled))
        } else {
            Ok(())
        }
    }

    /// Strided check for hot loops: bumps `tick` and only consults
    /// [`check`](Self::check) every [`CHECK_STRIDE`] calls, so the
    /// steady-state cost is one increment and one branch.
    pub fn checkpoint(&self, tick: &mut u32) -> Result<()> {
        *tick = tick.wrapping_add(1);
        if tick.is_multiple_of(CHECK_STRIDE) {
            self.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_never_fires() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(matches!(
            clone.check(),
            Err(EngineError::Runtime(RuntimeError::Cancelled))
        ));
    }

    #[test]
    fn past_deadline_fires() {
        let past = Instant::now()
            .checked_sub(Duration::from_millis(1))
            .unwrap();
        let t = CancelToken::new().with_deadline(past);
        assert!(t.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::new().with_timeout(Duration::from_hours(1));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn deadlines_only_tighten() {
        let near = Instant::now()
            .checked_sub(Duration::from_millis(1))
            .unwrap();
        let far = Instant::now() + Duration::from_hours(1);
        let t = CancelToken::new().with_deadline(near).with_deadline(far);
        assert!(
            t.is_cancelled(),
            "later deadline must not loosen an earlier one"
        );
    }

    #[test]
    fn checkpoint_observes_cancellation_within_a_stride() {
        let t = CancelToken::new();
        t.cancel();
        let mut tick = 0u32;
        let fired = (0..CHECK_STRIDE).any(|_| t.checkpoint(&mut tick).is_err());
        assert!(fired, "a full stride of checkpoints must notice the flag");
    }
}
