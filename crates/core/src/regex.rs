//! Compilation of regular path expressions (§A.1) into NFAs.
//!
//! The alphabet has five symbol kinds: edge labels `ℓ` (forward), inverse
//! labels `ℓ⁻` (backward), node tests `!ℓ` (zero-width assertions on the
//! current node), the wildcard `_` (any edge, either direction), and path
//! view references `~name` (§A.4).
//!
//! Construction is Thompson-style with ε-transitions; ε-closures are
//! precomputed. Node tests are treated as *conditional* ε-transitions
//! taken when the current node carries the label — equivalent to the
//! paper's interleaved node/edge strings with implicit `_` node symbols.

use gcore_parser::ast::Regex;
use gcore_ppg::Label;

/// One edge-consuming (or node-testing) NFA symbol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Sym {
    /// Traverse an edge with this label forwards.
    Label(Label),
    /// Traverse an edge with this label backwards (ℓ⁻).
    LabelInv(Label),
    /// Zero-width: the current node must carry this label.
    NodeTest(Label),
    /// Traverse any edge in either direction.
    Wildcard,
    /// Traverse one segment of a PATH view (§A.4), by name.
    View(String),
}

/// A Thompson NFA with precomputed ε-closures.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Per-state symbol transitions.
    trans: Vec<Vec<(Sym, usize)>>,
    /// Per-state ε-closure (sorted, includes the state itself).
    closure: Vec<Vec<usize>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Compile a parsed regular expression.
    pub fn compile(re: &Regex) -> Nfa {
        let mut b = Builder {
            trans: Vec::new(),
            eps: Vec::new(),
        };
        let start = b.state();
        let accept = b.state();
        b.build(re, start, accept);
        let closure = b.closures();
        Nfa {
            trans: b.trans,
            closure,
            start,
            accept,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Is `state`'s ε-closure accepting?
    pub fn accepts(&self, state: usize) -> bool {
        self.closure[state].binary_search(&self.accept).is_ok()
    }

    /// ε-closure of a state (sorted).
    pub fn closure(&self, state: usize) -> &[usize] {
        &self.closure[state]
    }

    /// Symbol transitions out of a state (no ε).
    pub fn transitions(&self, state: usize) -> &[(Sym, usize)] {
        &self.trans[state]
    }

    /// All `View` names referenced anywhere in the automaton.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .trans
            .iter()
            .flatten()
            .filter_map(|(s, _)| match s {
                Sym::View(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Does any transition consult node labels? (Used to decide whether
    /// closures depend on the current node.)
    pub fn has_node_tests(&self) -> bool {
        self.trans
            .iter()
            .flatten()
            .any(|(s, _)| matches!(s, Sym::NodeTest(_)))
    }
}

struct Builder {
    trans: Vec<Vec<(Sym, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl Builder {
    fn state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    fn eps_edge(&mut self, from: usize, to: usize) {
        self.eps[from].push(to);
    }

    fn sym_edge(&mut self, from: usize, sym: Sym, to: usize) {
        self.trans[from].push((sym, to));
    }

    fn build(&mut self, re: &Regex, from: usize, to: usize) {
        match re {
            Regex::Label(l) => self.sym_edge(from, Sym::Label(Label::new(l)), to),
            Regex::LabelInv(l) => self.sym_edge(from, Sym::LabelInv(Label::new(l)), to),
            Regex::NodeTest(l) => self.sym_edge(from, Sym::NodeTest(Label::new(l)), to),
            Regex::Wildcard => self.sym_edge(from, Sym::Wildcard, to),
            Regex::View(v) => self.sym_edge(from, Sym::View(v.clone()), to),
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.state()
                    };
                    self.build(part, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.eps_edge(from, to);
                }
            }
            Regex::Alt(parts) => {
                for part in parts {
                    self.build(part, from, to);
                }
                if parts.is_empty() {
                    self.eps_edge(from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.state();
                self.eps_edge(from, hub);
                self.eps_edge(hub, to);
                let body_in = self.state();
                self.eps_edge(hub, body_in);
                self.build(inner, body_in, hub);
            }
            Regex::Plus(inner) => {
                // r+ = r r*
                let mid = self.state();
                self.build(inner, from, mid);
                self.build(&Regex::Star(inner.clone()), mid, to);
            }
            Regex::Opt(inner) => {
                self.eps_edge(from, to);
                self.build(inner, from, to);
            }
        }
    }

    fn closures(&self) -> Vec<Vec<usize>> {
        let n = self.trans.len();
        let mut out = Vec::with_capacity(n);
        for s in 0..n {
            let mut seen = vec![false; n];
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(q) = stack.pop() {
                for &r in &self.eps[q] {
                    if !seen[r] {
                        seen[r] = true;
                        stack.push(r);
                    }
                }
            }
            out.push((0..n).filter(|&i| seen[i]).collect());
        }
        out
    }
}

/// Run the NFA over a concrete walk to test conformance — used for
/// matching stored paths against a regex (`@p <regex>` patterns).
///
/// `edges` yields, per step, the sets of labels usable forwards and
/// backwards (an edge traversed forward offers `Label`, backward offers
/// `LabelInv`, and both offer `Wildcard`); `node_labels` yields the label
/// set of the node *before* each step plus the final node.
pub fn walk_conforms(nfa: &Nfa, node_labels: &[Vec<Label>], steps: &[(Vec<Label>, bool)]) -> bool {
    debug_assert_eq!(node_labels.len(), steps.len() + 1);
    // Current set of NFA states, closed under ε and node tests at node i.
    let close = |states: &[usize], labels: &[Label]| -> Vec<usize> {
        let mut seen: Vec<bool> = vec![false; nfa.num_states()];
        let mut stack: Vec<usize> = Vec::new();
        for &s in states {
            for &c in nfa.closure(s) {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        while let Some(q) = stack.pop() {
            for (sym, to) in nfa.transitions(q) {
                if let Sym::NodeTest(l) = sym {
                    if labels.contains(l) {
                        for &c in nfa.closure(*to) {
                            if !seen[c] {
                                seen[c] = true;
                                stack.push(c);
                            }
                        }
                    }
                }
            }
        }
        (0..nfa.num_states()).filter(|&i| seen[i]).collect()
    };

    let mut states = close(&[nfa.start()], &node_labels[0]);
    for (i, (labels, forward)) in steps.iter().enumerate() {
        let mut next = Vec::new();
        for &q in &states {
            for (sym, to) in nfa.transitions(q) {
                let ok = match sym {
                    Sym::Wildcard => true,
                    Sym::Label(l) => *forward && labels.contains(l),
                    Sym::LabelInv(l) => !*forward && labels.contains(l),
                    Sym::NodeTest(_) | Sym::View(_) => false,
                };
                if ok {
                    next.push(*to);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        if next.is_empty() {
            return false;
        }
        states = close(&next, &node_labels[i + 1]);
    }
    states.iter().any(|&q| nfa.accepts(q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn star_accepts_empty() {
        let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))));
        assert!(nfa.accepts(nfa.start()));
    }

    #[test]
    fn single_label_needs_one_step() {
        let nfa = Nfa::compile(&Regex::Label("knows".into()));
        assert!(!nfa.accepts(nfa.start()));
        let ok = walk_conforms(&nfa, &[vec![], vec![]], &[(vec![l("knows")], true)]);
        assert!(ok);
        let bad_dir = walk_conforms(&nfa, &[vec![], vec![]], &[(vec![l("knows")], false)]);
        assert!(!bad_dir);
        let bad_label = walk_conforms(&nfa, &[vec![], vec![]], &[(vec![l("likes")], true)]);
        assert!(!bad_label);
    }

    #[test]
    fn inverse_label_matches_backward_steps() {
        let nfa = Nfa::compile(&Regex::LabelInv("knows".into()));
        assert!(walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("knows")], false)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("knows")], true)]
        ));
    }

    #[test]
    fn wildcard_matches_any_direction() {
        let nfa = Nfa::compile(&Regex::Wildcard);
        assert!(walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("x")], true)]
        ));
        assert!(walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("x")], false)]
        ));
    }

    #[test]
    fn concat_and_alt() {
        // (:a + :b) :c
        let re = Regex::Concat(vec![
            Regex::Alt(vec![Regex::Label("a".into()), Regex::Label("b".into())]),
            Regex::Label("c".into()),
        ]);
        let nfa = Nfa::compile(&re);
        let n3 = vec![vec![], vec![], vec![]];
        assert!(walk_conforms(
            &nfa,
            &n3,
            &[(vec![l("b")], true), (vec![l("c")], true)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &n3,
            &[(vec![l("c")], true), (vec![l("b")], true)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("a")], true)]
        ));
    }

    #[test]
    fn node_tests_are_zero_width() {
        // :a !Stop :b — middle node must be labeled Stop
        let re = Regex::Concat(vec![
            Regex::Label("a".into()),
            Regex::NodeTest("Stop".into()),
            Regex::Label("b".into()),
        ]);
        let nfa = Nfa::compile(&re);
        assert!(nfa.has_node_tests());
        let good = walk_conforms(
            &nfa,
            &[vec![], vec![l("Stop")], vec![]],
            &[(vec![l("a")], true), (vec![l("b")], true)],
        );
        assert!(good);
        let bad = walk_conforms(
            &nfa,
            &[vec![], vec![l("Go")], vec![]],
            &[(vec![l("a")], true), (vec![l("b")], true)],
        );
        assert!(!bad);
    }

    #[test]
    fn node_test_at_endpoint() {
        // !Person :a — start node must be a Person
        let re = Regex::Concat(vec![
            Regex::NodeTest("Person".into()),
            Regex::Label("a".into()),
        ]);
        let nfa = Nfa::compile(&re);
        assert!(walk_conforms(
            &nfa,
            &[vec![l("Person")], vec![]],
            &[(vec![l("a")], true)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &[Vec::new(), Vec::new()],
            &[(vec![l("a")], true)]
        ));
    }

    #[test]
    fn plus_and_opt_desugar() {
        let plus = Nfa::compile(&Regex::Plus(Box::new(Regex::Label("a".into()))));
        assert!(!plus.accepts(plus.start())); // needs at least one step
        let step = |n: usize| {
            let nodes = vec![vec![]; n + 1];
            let steps = vec![(vec![l("a")], true); n];
            walk_conforms(&plus, &nodes, &steps)
        };
        assert!(step(1) && step(3));

        let opt = Nfa::compile(&Regex::Opt(Box::new(Regex::Label("a".into()))));
        assert!(opt.accepts(opt.start()));
    }

    #[test]
    fn view_names_collected() {
        let re = Regex::Star(Box::new(Regex::View("wKnows".into())));
        let nfa = Nfa::compile(&re);
        assert_eq!(nfa.view_names(), vec!["wKnows".to_string()]);
    }

    #[test]
    fn star_of_alt_loops() {
        // ((:knows + :knows-))* — the appendix's (knows+knows−)* example
        let re = Regex::Star(Box::new(Regex::Alt(vec![
            Regex::Label("knows".into()),
            Regex::LabelInv("knows".into()),
        ])));
        let nfa = Nfa::compile(&re);
        let nodes = vec![vec![]; 3];
        assert!(walk_conforms(
            &nfa,
            &nodes,
            &[(vec![l("knows")], false), (vec![l("knows")], true)]
        ));
    }
}
