//! Compilation of regular path expressions (§A.1) into NFAs.
//!
//! The alphabet has five symbol kinds: edge labels `ℓ` (forward), inverse
//! labels `ℓ⁻` (backward), node tests `!ℓ` (zero-width assertions on the
//! current node), the wildcard `_` (any edge, either direction), and path
//! view references `~name` (§A.4).
//!
//! Construction is Thompson-style with ε-transitions; ε-closures are
//! precomputed. Node tests are treated as *conditional* ε-transitions
//! taken when the current node carries the label — equivalent to the
//! paper's interleaved node/edge strings with implicit `_` node symbols.

use gcore_parser::ast::Regex;
use gcore_ppg::Label;

/// One edge-consuming (or node-testing) NFA symbol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sym {
    /// Traverse an edge with this label forwards.
    Label(Label),
    /// Traverse an edge with this label backwards (ℓ⁻).
    LabelInv(Label),
    /// Zero-width: the current node must carry this label.
    NodeTest(Label),
    /// Traverse any edge in either direction.
    Wildcard,
    /// Traverse one segment of a PATH view (§A.4), by name.
    View(String),
}

/// A Thompson NFA with precomputed ε-closures.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Per-state symbol transitions.
    trans: Vec<Vec<(Sym, usize)>>,
    /// Per-state transitions grouped by symbol: each distinct symbol of a
    /// state appears exactly once, with every target state it leads to
    /// (sorted, deduplicated). This is the *outgoing symbol set* of the
    /// state — the product search iterates it so that each symbol's edge
    /// candidates (one label-index slice, one adjacency scan) are
    /// enumerated once per state, not once per transition.
    grouped: Vec<Vec<(Sym, Vec<usize>)>>,
    /// Per-state ε-closure (sorted, includes the state itself).
    closure: Vec<Vec<usize>>,
    /// Precomputed "any [`Sym::NodeTest`] anywhere?" — consulted per
    /// closure call on the search hot path.
    node_tests: bool,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Compile a parsed regular expression.
    pub fn compile(re: &Regex) -> Nfa {
        let mut b = Builder {
            trans: Vec::new(),
            eps: Vec::new(),
        };
        let start = b.state();
        let accept = b.state();
        b.build(re, start, accept);
        let closure = b.closures();
        let grouped = group_transitions(&b.trans);
        let node_tests = any_node_tests(&b.trans);
        Nfa {
            trans: b.trans,
            grouped,
            closure,
            node_tests,
            start,
            accept,
        }
    }

    /// The reversed automaton: accepts exactly the reversals of the walks
    /// this NFA accepts. Transitions are transposed with their symbols
    /// mirrored (`ℓ` ↔ `ℓ⁻`; node tests and the wildcard are their own
    /// mirror images), ε-reachability is transposed, and start/accept
    /// swap roles.
    ///
    /// Running the *forward* product search with the reversed NFA from a
    /// node `d` therefore visits exactly the product states that are
    /// co-reachable to acceptance at `d` in this NFA — the basis of the
    /// bidirectional and cone-pruned searches in [`crate::paths`].
    ///
    /// Returns `None` when the automaton traverses PATH views: a view
    /// segment relation is directed (src → dst) and has no backward
    /// counterpart, so view-bearing searches stay unidirectional.
    pub fn reverse(&self) -> Option<Nfa> {
        let n = self.trans.len();
        let mut trans: Vec<Vec<(Sym, usize)>> = vec![Vec::new(); n];
        for (from, ts) in self.trans.iter().enumerate() {
            for (sym, to) in ts {
                let mirrored = match sym {
                    Sym::Label(l) => Sym::LabelInv(*l),
                    Sym::LabelInv(l) => Sym::Label(*l),
                    Sym::NodeTest(l) => Sym::NodeTest(*l),
                    Sym::Wildcard => Sym::Wildcard,
                    Sym::View(_) => return None,
                };
                trans[*to].push((mirrored, from));
            }
        }
        // Reversed ε-closure = transpose of the (transitively closed)
        // forward ε-reachability relation.
        let mut closure: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, cl) in self.closure.iter().enumerate() {
            for &to in cl {
                closure[to].push(from);
            }
        }
        for cl in &mut closure {
            cl.sort_unstable();
        }
        let grouped = group_transitions(&trans);
        Some(Nfa {
            node_tests: any_node_tests(&trans),
            trans,
            grouped,
            closure,
            start: self.accept,
            accept: self.start,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Is `state`'s ε-closure accepting?
    pub fn accepts(&self, state: usize) -> bool {
        self.closure[state].binary_search(&self.accept).is_ok()
    }

    /// ε-closure of a state (sorted).
    pub fn closure(&self, state: usize) -> &[usize] {
        &self.closure[state]
    }

    /// Symbol transitions out of a state (no ε).
    pub fn transitions(&self, state: usize) -> &[(Sym, usize)] {
        &self.trans[state]
    }

    /// The outgoing symbol set of a state: its transitions grouped by
    /// symbol, each distinct symbol once with all its target states
    /// (sorted). Lets the product search enumerate a symbol's graph-edge
    /// candidates once and fan the results out to every target state.
    pub fn grouped_transitions(&self, state: usize) -> &[(Sym, Vec<usize>)] {
        &self.grouped[state]
    }

    /// All `View` names referenced anywhere in the automaton.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .trans
            .iter()
            .flatten()
            .filter_map(|(s, _)| match s {
                Sym::View(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Does any transition consult node labels? (Used to decide whether
    /// closures depend on the current node.)
    pub fn has_node_tests(&self) -> bool {
        self.node_tests
    }

    /// A hashable structural identity for this automaton: the full
    /// transition table plus start/accept states. Compilation is
    /// deterministic, so two NFAs compiled from equal regexes have equal
    /// keys — which is what lets per-snapshot search caches recognize
    /// "the same path query again" across independently parsed
    /// statements. (ε-closures and symbol groups are derived from the
    /// transition table, so they carry no extra identity.)
    pub fn identity_key(&self) -> NfaKey {
        NfaKey {
            trans: self.trans.clone(),
            start: self.start,
            accept: self.accept,
        }
    }
}

/// Structural identity of an [`Nfa`] — see [`Nfa::identity_key`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NfaKey {
    trans: Vec<Vec<(Sym, usize)>>,
    start: usize,
    accept: usize,
}

fn any_node_tests(trans: &[Vec<(Sym, usize)>]) -> bool {
    trans
        .iter()
        .flatten()
        .any(|(s, _)| matches!(s, Sym::NodeTest(_)))
}

/// Group a transition table by symbol: per state, each distinct symbol
/// once with its (sorted, deduplicated) target states. Symbol order is
/// first-appearance order, which is deterministic per compilation.
fn group_transitions(trans: &[Vec<(Sym, usize)>]) -> Vec<Vec<(Sym, Vec<usize>)>> {
    trans
        .iter()
        .map(|ts| {
            let mut groups: Vec<(Sym, Vec<usize>)> = Vec::new();
            for (sym, to) in ts {
                match groups.iter_mut().find(|(s, _)| s == sym) {
                    Some((_, tos)) => tos.push(*to),
                    None => groups.push((sym.clone(), vec![*to])),
                }
            }
            for (_, tos) in &mut groups {
                tos.sort_unstable();
                tos.dedup();
            }
            groups
        })
        .collect()
}

struct Builder {
    trans: Vec<Vec<(Sym, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl Builder {
    fn state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    fn eps_edge(&mut self, from: usize, to: usize) {
        self.eps[from].push(to);
    }

    fn sym_edge(&mut self, from: usize, sym: Sym, to: usize) {
        self.trans[from].push((sym, to));
    }

    fn build(&mut self, re: &Regex, from: usize, to: usize) {
        match re {
            Regex::Label(l) => self.sym_edge(from, Sym::Label(Label::new(l)), to),
            Regex::LabelInv(l) => self.sym_edge(from, Sym::LabelInv(Label::new(l)), to),
            Regex::NodeTest(l) => self.sym_edge(from, Sym::NodeTest(Label::new(l)), to),
            Regex::Wildcard => self.sym_edge(from, Sym::Wildcard, to),
            Regex::View(v) => self.sym_edge(from, Sym::View(v.clone()), to),
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.state()
                    };
                    self.build(part, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.eps_edge(from, to);
                }
            }
            Regex::Alt(parts) => {
                for part in parts {
                    self.build(part, from, to);
                }
                if parts.is_empty() {
                    self.eps_edge(from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.state();
                self.eps_edge(from, hub);
                self.eps_edge(hub, to);
                let body_in = self.state();
                self.eps_edge(hub, body_in);
                self.build(inner, body_in, hub);
            }
            Regex::Plus(inner) => {
                // r+ = r r*
                let mid = self.state();
                self.build(inner, from, mid);
                self.build(&Regex::Star(inner.clone()), mid, to);
            }
            Regex::Opt(inner) => {
                self.eps_edge(from, to);
                self.build(inner, from, to);
            }
        }
    }

    fn closures(&self) -> Vec<Vec<usize>> {
        let n = self.trans.len();
        let mut out = Vec::with_capacity(n);
        for s in 0..n {
            let mut seen = vec![false; n];
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(q) = stack.pop() {
                for &r in &self.eps[q] {
                    if !seen[r] {
                        seen[r] = true;
                        stack.push(r);
                    }
                }
            }
            out.push((0..n).filter(|&i| seen[i]).collect());
        }
        out
    }
}

/// Run the NFA over a concrete walk to test conformance — used for
/// matching stored paths against a regex (`@p <regex>` patterns).
///
/// `edges` yields, per step, the sets of labels usable forwards and
/// backwards (an edge traversed forward offers `Label`, backward offers
/// `LabelInv`, and both offer `Wildcard`); `node_labels` yields the label
/// set of the node *before* each step plus the final node.
pub fn walk_conforms(nfa: &Nfa, node_labels: &[Vec<Label>], steps: &[(Vec<Label>, bool)]) -> bool {
    debug_assert_eq!(node_labels.len(), steps.len() + 1);
    // Current set of NFA states, closed under ε and node tests at node i.
    let close = |states: &[usize], labels: &[Label]| -> Vec<usize> {
        let mut seen: Vec<bool> = vec![false; nfa.num_states()];
        let mut stack: Vec<usize> = Vec::new();
        for &s in states {
            for &c in nfa.closure(s) {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        while let Some(q) = stack.pop() {
            for (sym, to) in nfa.transitions(q) {
                if let Sym::NodeTest(l) = sym {
                    if labels.contains(l) {
                        for &c in nfa.closure(*to) {
                            if !seen[c] {
                                seen[c] = true;
                                stack.push(c);
                            }
                        }
                    }
                }
            }
        }
        (0..nfa.num_states()).filter(|&i| seen[i]).collect()
    };

    let mut states = close(&[nfa.start()], &node_labels[0]);
    for (i, (labels, forward)) in steps.iter().enumerate() {
        let mut next = Vec::new();
        for &q in &states {
            for (sym, to) in nfa.transitions(q) {
                let ok = match sym {
                    Sym::Wildcard => true,
                    Sym::Label(l) => *forward && labels.contains(l),
                    Sym::LabelInv(l) => !*forward && labels.contains(l),
                    Sym::NodeTest(_) | Sym::View(_) => false,
                };
                if ok {
                    next.push(*to);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        if next.is_empty() {
            return false;
        }
        states = close(&next, &node_labels[i + 1]);
    }
    states.iter().any(|&q| nfa.accepts(q))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn star_accepts_empty() {
        let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))));
        assert!(nfa.accepts(nfa.start()));
    }

    #[test]
    fn single_label_needs_one_step() {
        let nfa = Nfa::compile(&Regex::Label("knows".into()));
        assert!(!nfa.accepts(nfa.start()));
        let ok = walk_conforms(&nfa, &[vec![], vec![]], &[(vec![l("knows")], true)]);
        assert!(ok);
        let bad_dir = walk_conforms(&nfa, &[vec![], vec![]], &[(vec![l("knows")], false)]);
        assert!(!bad_dir);
        let bad_label = walk_conforms(&nfa, &[vec![], vec![]], &[(vec![l("likes")], true)]);
        assert!(!bad_label);
    }

    #[test]
    fn inverse_label_matches_backward_steps() {
        let nfa = Nfa::compile(&Regex::LabelInv("knows".into()));
        assert!(walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("knows")], false)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("knows")], true)]
        ));
    }

    #[test]
    fn wildcard_matches_any_direction() {
        let nfa = Nfa::compile(&Regex::Wildcard);
        assert!(walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("x")], true)]
        ));
        assert!(walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("x")], false)]
        ));
    }

    #[test]
    fn concat_and_alt() {
        // (:a + :b) :c
        let re = Regex::Concat(vec![
            Regex::Alt(vec![Regex::Label("a".into()), Regex::Label("b".into())]),
            Regex::Label("c".into()),
        ]);
        let nfa = Nfa::compile(&re);
        let n3 = vec![vec![], vec![], vec![]];
        assert!(walk_conforms(
            &nfa,
            &n3,
            &[(vec![l("b")], true), (vec![l("c")], true)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &n3,
            &[(vec![l("c")], true), (vec![l("b")], true)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &[vec![], vec![]],
            &[(vec![l("a")], true)]
        ));
    }

    #[test]
    fn node_tests_are_zero_width() {
        // :a !Stop :b — middle node must be labeled Stop
        let re = Regex::Concat(vec![
            Regex::Label("a".into()),
            Regex::NodeTest("Stop".into()),
            Regex::Label("b".into()),
        ]);
        let nfa = Nfa::compile(&re);
        assert!(nfa.has_node_tests());
        let good = walk_conforms(
            &nfa,
            &[vec![], vec![l("Stop")], vec![]],
            &[(vec![l("a")], true), (vec![l("b")], true)],
        );
        assert!(good);
        let bad = walk_conforms(
            &nfa,
            &[vec![], vec![l("Go")], vec![]],
            &[(vec![l("a")], true), (vec![l("b")], true)],
        );
        assert!(!bad);
    }

    #[test]
    fn node_test_at_endpoint() {
        // !Person :a — start node must be a Person
        let re = Regex::Concat(vec![
            Regex::NodeTest("Person".into()),
            Regex::Label("a".into()),
        ]);
        let nfa = Nfa::compile(&re);
        assert!(walk_conforms(
            &nfa,
            &[vec![l("Person")], vec![]],
            &[(vec![l("a")], true)]
        ));
        assert!(!walk_conforms(
            &nfa,
            &[Vec::new(), Vec::new()],
            &[(vec![l("a")], true)]
        ));
    }

    #[test]
    fn plus_and_opt_desugar() {
        let plus = Nfa::compile(&Regex::Plus(Box::new(Regex::Label("a".into()))));
        assert!(!plus.accepts(plus.start())); // needs at least one step
        let step = |n: usize| {
            let nodes = vec![vec![]; n + 1];
            let steps = vec![(vec![l("a")], true); n];
            walk_conforms(&plus, &nodes, &steps)
        };
        assert!(step(1) && step(3));

        let opt = Nfa::compile(&Regex::Opt(Box::new(Regex::Label("a".into()))));
        assert!(opt.accepts(opt.start()));
    }

    #[test]
    fn grouped_transitions_merge_equal_symbols() {
        // (:a + :a :b) — the start state has two `a` transitions that
        // grouping must merge into one symbol with two targets.
        let re = Regex::Alt(vec![
            Regex::Label("a".into()),
            Regex::Concat(vec![Regex::Label("a".into()), Regex::Label("b".into())]),
        ]);
        let nfa = Nfa::compile(&re);
        let groups = nfa.grouped_transitions(nfa.start());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, Sym::Label(l("a")));
        assert_eq!(groups[0].1.len(), 2);
        // The grouped view covers the same transitions.
        assert_eq!(nfa.transitions(nfa.start()).len(), 2);
    }

    #[test]
    fn reverse_accepts_reversed_walks() {
        // :a :b forwards ⟺ reversed automaton accepts the walk traversed
        // backwards (each step direction flips, order reverses).
        let re = Regex::Concat(vec![Regex::Label("a".into()), Regex::Label("b".into())]);
        let nfa = Nfa::compile(&re);
        let rev = nfa.reverse().expect("no views");
        let n3 = vec![vec![], vec![], vec![]];
        assert!(walk_conforms(
            &nfa,
            &n3,
            &[(vec![l("a")], true), (vec![l("b")], true)]
        ));
        assert!(walk_conforms(
            &rev,
            &n3,
            &[(vec![l("b")], false), (vec![l("a")], false)]
        ));
        // The unreversed order is *not* accepted by the reversal.
        assert!(!walk_conforms(
            &rev,
            &n3,
            &[(vec![l("a")], false), (vec![l("b")], false)]
        ));
    }

    #[test]
    fn reverse_keeps_node_tests_in_place() {
        // :a !Stop :b reversed: :b⁻ !Stop :a⁻ — the test still guards the
        // middle node.
        let re = Regex::Concat(vec![
            Regex::Label("a".into()),
            Regex::NodeTest("Stop".into()),
            Regex::Label("b".into()),
        ]);
        let rev = Nfa::compile(&re).reverse().expect("no views");
        assert!(rev.has_node_tests());
        assert!(walk_conforms(
            &rev,
            &[vec![], vec![l("Stop")], vec![]],
            &[(vec![l("b")], false), (vec![l("a")], false)]
        ));
        assert!(!walk_conforms(
            &rev,
            &[vec![], vec![], vec![]],
            &[(vec![l("b")], false), (vec![l("a")], false)]
        ));
    }

    #[test]
    fn reverse_of_star_accepts_empty() {
        let rev = Nfa::compile(&Regex::Star(Box::new(Regex::Label("a".into()))))
            .reverse()
            .expect("no views");
        assert!(rev.accepts(rev.start()));
    }

    #[test]
    fn views_are_irreversible() {
        let re = Regex::Star(Box::new(Regex::View("w".into())));
        assert!(Nfa::compile(&re).reverse().is_none());
    }

    #[test]
    fn view_names_collected() {
        let re = Regex::Star(Box::new(Regex::View("wKnows".into())));
        let nfa = Nfa::compile(&re);
        assert_eq!(nfa.view_names(), vec!["wKnows".to_string()]);
    }

    #[test]
    fn star_of_alt_loops() {
        // ((:knows + :knows-))* — the appendix's (knows+knows−)* example
        let re = Regex::Star(Box::new(Regex::Alt(vec![
            Regex::Label("knows".into()),
            Regex::LabelInv("knows".into()),
        ])));
        let nfa = Nfa::compile(&re);
        let nodes = vec![vec![]; 3];
        assert!(walk_conforms(
            &nfa,
            &nodes,
            &[(vec![l("knows")], false), (vec![l("knows")], true)]
        ));
    }
}
