//! # gcore — the G-CORE query engine
//!
//! An executable implementation of the formal semantics of *G-CORE: A
//! Core for Future Graph Query Languages* (SIGMOD 2018): a **closed**
//! query language over Path Property Graphs in which **paths are
//! first-class citizens**.
//!
//! The engine implements, per the paper's appendix:
//!
//! * binding tables with the ∪ / ⋈ / ⋉ / ∖ / left-outer-join algebra
//!   (§A.1) — [`binding`];
//! * expressions over multi-valued properties, labels, paths, EXISTS
//!   subqueries and aggregates (§A.1) — [`expr`];
//! * regular path expressions compiled to NFAs, with shortest,
//!   k-shortest, weighted-shortest and ALL-paths evaluation over the
//!   graph × NFA product (§A.1, §3) — [`regex`], [`paths`];
//! * MATCH with ON locations, WHERE and OPTIONAL (§A.2) — [`matcher`],
//!   [`query`] — planned by a statistics-driven, semantics-preserving
//!   cost model (join ordering, IN pushdown, path strategies) with a
//!   stable `EXPLAIN` rendering — [`plan`];
//! * CONSTRUCT with grouping, skolemization, SET/REMOVE and WHEN (§A.3)
//!   — [`construct`];
//! * PATH views with COST (§A.4) and full-graph set operations (§A.5);
//! * GRAPH views (§A.6) and the §5 tabular extensions (SELECT, FROM) —
//!   [`select`].
//!
//! Evaluation is snapshot-isolated: writes commit through the mutable
//! [`Engine`] front and bump a snapshot epoch, while queries evaluate
//! read-only against an immutable, `Arc`-shared [`EngineSnapshot`] —
//! concurrently, via the `Send + Sync` [`QueryExecutor`] or the
//! [`Engine::run_batch_parallel`] fan-out ([`snapshot`], [`executor`]).
//! Evaluation is observable: execution profiles (`EXPLAIN ANALYZE`) and
//! a unified metrics registry live in [`obs`], guaranteed never to
//! change results.
//!
//! The entry point is [`Engine`]:
//!
//! ```
//! use gcore::Engine;
//! use gcore_ppg::{Attributes, GraphBuilder};
//!
//! let mut engine = Engine::new();
//! let mut b = GraphBuilder::new(engine.catalog().ids().clone());
//! let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
//! let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
//! b.edge(ann, bob, Attributes::labeled("knows"));
//! engine.register_graph("people", b.build());
//! engine.set_default_graph("people");
//!
//! // Every query returns a graph — G-CORE is closed over PPGs.
//! let g = engine.query_graph("CONSTRUCT (m) MATCH (n)-[:knows]->(m)").unwrap();
//! assert_eq!(g.node_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod analyze;
pub mod baselines;
pub mod binding;
pub mod cancel;
pub mod construct;
pub mod context;
pub mod diag;
pub mod engine;
pub mod error;
pub mod executor;
pub mod expr;
pub mod matcher;
pub mod obs;
pub mod paths;
pub mod plan;
pub mod query;
pub mod regex;
pub mod select;
pub mod snapshot;

pub use analyze::{analyze_script, analyze_statement, CatalogSummary};
pub use binding::{BindingTable, Bound, Column};
pub use cancel::CancelToken;
pub use context::EvalCtx;
pub use diag::{render_all, DiagCode, Diagnostic, Severity};
pub use engine::{run_batch_on, Engine};
pub use error::{EngineError, Result, RuntimeError, SemanticError};
pub use executor::QueryExecutor;
pub use expr::{Env, Rv};
pub use obs::{CoreMetrics, MetricsRegistry, Profiler, QueryProfile};
pub use plan::{explain_statement, plan_match, BoundPairStrategy, MatchPlan};
pub use query::{Evaluator, QueryOutput};
pub use snapshot::EngineSnapshot;
