//! The query evaluator: head clauses, MATCH with OPTIONAL, graph set
//! operations, PATH views and subqueries — §A.2, §A.4, §A.5, §A.6.

use crate::binding::{BindingTable, Bound, Column, TableBuilder};
use crate::construct::eval_construct;
use crate::context::{EvalCtx, FreshPath};
use crate::error::{Result, RuntimeError, SemanticError};
use crate::expr::{eval_expr, Env, SubqueryEval};
use crate::matcher::PatternMatcher;
use crate::paths::{Segment, ViewMap, ViewSegments};
use crate::regex::Nfa;
use crate::select::eval_select;
use gcore_parser::ast::{
    FullGraphQuery, GraphSetOp, HeadClause, Location, MatchClause, PathClause, Pattern, Query,
    QueryBody, QuerySource, Statement,
};
use gcore_ppg::{ops, PathPropertyGraph, PathShape, Table, Value};
use std::sync::Arc;

/// The result of a G-CORE query: a graph (the core language) or a table
/// (the §5 SELECT extension).
// Graphs are by far the common output; boxing them to appease the
// variant-size lint would put every result behind an extra indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum QueryOutput {
    /// A graph result (the core language).
    Graph(PathPropertyGraph),
    /// A table result (the §5 SELECT extension).
    Table(Table),
}

impl QueryOutput {
    /// Unwrap a graph result.
    pub fn into_graph(self) -> Option<PathPropertyGraph> {
        match self {
            QueryOutput::Graph(g) => Some(g),
            QueryOutput::Table(_) => None,
        }
    }

    /// Unwrap a table result.
    pub fn into_table(self) -> Option<Table> {
        match self {
            QueryOutput::Table(t) => Some(t),
            QueryOutput::Graph(_) => None,
        }
    }
}

/// Evaluator for one top-level statement, holding the shared context.
pub struct Evaluator<'e> {
    /// The shared evaluation context.
    pub ctx: &'e EvalCtx,
}

impl<'e> Evaluator<'e> {
    /// Create an evaluator over a context.
    pub fn new(ctx: &'e EvalCtx) -> Self {
        Evaluator { ctx }
    }

    /// Evaluate a statement. `GRAPH VIEW` definitions evaluate their
    /// query and return the materialized view graph (the engine registers
    /// it persistently).
    pub fn eval_statement(&self, stmt: &Statement) -> Result<QueryOutput> {
        match stmt {
            Statement::Query(q) => self.eval_query(q, None),
            Statement::GraphView { query, .. } => self.eval_query(query, None),
        }
    }

    /// Evaluate a query: head clauses first (PATH views, query-local
    /// GRAPH views), then the body. Head registrations are scoped — they
    /// are rolled back afterwards.
    pub fn eval_query(&self, q: &Query, outer: Option<&Env<'_>>) -> Result<QueryOutput> {
        let views_before = self.ctx.path_views.borrow().len();
        let mut shadowed: Vec<(String, Option<Arc<PathPropertyGraph>>)> = Vec::new();

        let mut run = || -> Result<QueryOutput> {
            for head in &q.heads {
                match head {
                    HeadClause::Path(pc) => {
                        self.ctx.path_views.borrow_mut().push(pc.clone());
                    }
                    HeadClause::Graph(gc) => {
                        let out = self.eval_query(&gc.query, outer)?;
                        let Some(graph) = out.into_graph() else {
                            return Err(SemanticError::GraphExpected(format!(
                                "GRAPH {} AS (…)",
                                gc.name
                            ))
                            .into());
                        };
                        let mut catalog = self.ctx.catalog.borrow_mut();
                        let prev = catalog.graph(&gc.name).ok();
                        shadowed.push((gc.name.text.clone(), prev));
                        catalog.register_graph(gc.name.clone(), graph);
                    }
                }
            }
            match &q.body {
                QueryBody::Graph(g) => {
                    Ok(QueryOutput::Graph(self.eval_full_graph_query(g, outer)?))
                }
                QueryBody::Select(s) => {
                    let span = self.ctx.profiler.start("select", String::new);
                    let t = eval_select(self, s, outer)?;
                    self.ctx.profiler.finish_rows(span, t.len() as u64);
                    Ok(QueryOutput::Table(t))
                }
            }
        };
        let result = run();

        // Roll back head-clause registrations.
        self.ctx.path_views.borrow_mut().truncate(views_before);
        let mut catalog = self.ctx.catalog.borrow_mut();
        for (name, prev) in shadowed.into_iter().rev() {
            catalog.unregister_graph(&name);
            if let Some(prev) = prev {
                catalog
                    .register_graph(name, Arc::try_unwrap(prev).unwrap_or_else(|a| (*a).clone()));
            }
        }
        result
    }

    /// UNION / INTERSECT / MINUS of basic graph queries (§A.5).
    pub fn eval_full_graph_query(
        &self,
        q: &FullGraphQuery,
        outer: Option<&Env<'_>>,
    ) -> Result<PathPropertyGraph> {
        match q {
            FullGraphQuery::Basic(b) => {
                let bindings = self.eval_source(&b.source, outer)?;
                let span = self.ctx.profiler.start("construct", String::new);
                self.ctx
                    .profiler
                    .add_counter(span, "input_rows", bindings.len() as u64);
                let g = eval_construct(self, &b.construct, &bindings, outer)?;
                self.ctx
                    .profiler
                    .add_counter(span, "edges", g.edge_count() as u64);
                self.ctx.profiler.finish_rows(span, g.node_count() as u64);
                Ok(g)
            }
            FullGraphQuery::SetOp { op, left, right } => {
                let l = self.eval_full_graph_query(left, outer)?;
                let r = self.eval_full_graph_query(right, outer)?;
                let span = self.ctx.profiler.start("set-op", || {
                    match op {
                        GraphSetOp::Union => "union",
                        GraphSetOp::Intersect => "intersect",
                        GraphSetOp::Minus => "minus",
                    }
                    .to_owned()
                });
                let g = match op {
                    GraphSetOp::Union => ops::union(&l, &r),
                    GraphSetOp::Intersect => ops::intersect(&l, &r),
                    GraphSetOp::Minus => ops::difference(&l, &r),
                };
                self.ctx.profiler.finish_rows(span, g.node_count() as u64);
                Ok(g)
            }
        }
    }

    fn eval_source(&self, source: &QuerySource, outer: Option<&Env<'_>>) -> Result<BindingTable> {
        match source {
            QuerySource::Match(m) => self.eval_match(m, outer),
            QuerySource::From(table_name) => {
                // §5 "binding table inputs": one binding per row, one
                // value variable per column; NULL cells stay unbound.
                let table = self.ctx.table(table_name)?;
                let none = Arc::new(PathPropertyGraph::new());
                let columns: Vec<Column> = table
                    .columns()
                    .iter()
                    .map(|c| Column {
                        var: c.clone(),
                        graph: none.clone(),
                    })
                    .collect();
                let mut b = TableBuilder::new(columns);
                for r in table.rows() {
                    let row: Vec<Bound> = r
                        .iter()
                        .map(|v| match v {
                            Value::Null => Bound::Missing,
                            other => Bound::Value(other.clone()),
                        })
                        .collect();
                    b.push(&row);
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluate a MATCH clause: join located patterns, filter by WHERE,
    /// then left-outer-join the OPTIONAL blocks in order (§A.2).
    ///
    /// Single-variable WHERE conjuncts are additionally *pushed down*
    /// into the matcher, pruning candidate sets before path expansion;
    /// the full WHERE is still applied afterwards (filters are
    /// idempotent, so semantics are unchanged).
    pub fn eval_match(&self, m: &MatchClause, outer: Option<&Env<'_>>) -> Result<BindingTable> {
        let prof = &self.ctx.profiler;
        let match_span = prof.start("match", || format!("{} pattern(s)", m.patterns.len()));
        // Plan top-level MATCH clauses: greedy join ordering, IN-conjunct
        // pushdown, residual WHERE. Correlated (subquery) matches run
        // unplanned — their semantics depend on outer bindings the
        // planner does not model.
        let plan = if self.ctx.planner.get() && outer.is_none() {
            let span = prof.start("plan", String::new);
            let p = crate::plan::plan_match(m, &|on| self.plan_graph(on));
            if p.reordered {
                crate::obs::CoreMetrics::add(&self.ctx.metrics.planner_reorders, 1);
            }
            crate::obs::CoreMetrics::add(
                &self.ctx.metrics.planner_pushdowns,
                p.pushed.len() as u64,
            );
            prof.annotate(span, || {
                format!(
                    "reordered={} pushed={} residual_conjuncts={}",
                    p.reordered,
                    p.pushed.len(),
                    p.residual_conjuncts
                )
            });
            prof.finish(span);
            Some(p)
        } else {
            None
        };
        let m = plan.as_ref().map_or(m, |p| &p.clause);
        let threads = self.ctx.parallelism.get();
        let prefilters = if self.ctx.filter_pushdown.get() {
            pushdown_prefilters(m.where_clause.as_ref())
        } else {
            Default::default()
        };
        let mut table = BindingTable::unit();
        for (pos, lp) in m.patterns.iter().enumerate() {
            // One poll per pattern: each iteration runs a full pattern
            // match plus a join, so a fired token stops the clause
            // before the next (possibly explosive) product.
            self.ctx.check_cancelled()?;
            let graph = self.resolve_location(&lp.on)?;
            self.ctx.set_ambient(graph.clone());
            let span = prof.start("pattern", || {
                format!("{}. {}", pos + 1, gcore_parser::print_located(lp))
            });
            if let Some(p) = &plan {
                prof.set_estimate(span, p.order[pos].estimate);
            }
            let matcher = PatternMatcher::new(self, graph).with_prefilters(prefilters.clone());
            let t = matcher.eval_pattern(&lp.pattern, outer)?;
            prof.finish_rows(span, t.len() as u64);
            if pos == 0 {
                // Joining the unit table is the identity; no join span.
                table = table.join_parallel(&t, threads, Some(&self.ctx.cancel));
            } else {
                let span = prof.start("join", || {
                    let shared: Vec<&str> = t
                        .columns()
                        .iter()
                        .filter(|c| table.column_index(&c.var).is_some())
                        .map(|c| c.var.as_str())
                        .collect();
                    if shared.is_empty() {
                        "on ∅ (product)".to_owned()
                    } else {
                        format!("on {}", shared.join(", "))
                    }
                });
                table = table.join_parallel(&t, threads, Some(&self.ctx.cancel));
                prof.finish_rows(span, table.len() as u64);
            }
            self.ctx.check_cancelled()?;
        }
        // Re-pin the ambient graph to the syntactically last pattern's:
        // WHERE pattern predicates must observe the same graph as the
        // unplanned evaluation.
        if let Some(p) = &plan {
            if p.reordered {
                if let Some(pos) = p.syntactic_last_position() {
                    let graph = self.resolve_location(&p.clause.patterns[pos].on)?;
                    self.ctx.set_ambient(graph);
                }
            }
        }
        if let Some(w) = &m.where_clause {
            let input = table.len() as u64;
            let span = prof.start("where", || gcore_parser::print_expr(w));
            prof.add_counter(span, "input_rows", input);
            table = self.filter_table(table, w, outer)?;
            prof.finish_rows(span, table.len() as u64);
        }
        for opt in &m.optionals {
            let span = prof.start("optional", || format!("{} pattern(s)", opt.patterns.len()));
            let opt_prefilters = pushdown_prefilters(opt.where_clause.as_ref());
            let mut ot = BindingTable::unit();
            for lp in &opt.patterns {
                let graph = self.resolve_location(&lp.on)?;
                self.ctx.set_ambient(graph.clone());
                let matcher =
                    PatternMatcher::new(self, graph).with_prefilters(opt_prefilters.clone());
                ot = ot.join(&matcher.eval_pattern(&lp.pattern, outer)?);
            }
            if let Some(w) = &opt.where_clause {
                ot = self.filter_table(ot, w, outer)?;
            }
            table = table.left_outer_join(&ot);
            prof.finish_rows(span, table.len() as u64);
        }
        // Correlated subqueries: Jγ K_{Ω,G} = Jγ K_G ⋉ Ω (§A.2).
        if let Some(o) = outer {
            table = table.semijoin(&env_to_table(o));
        }
        prof.finish_rows(match_span, table.len() as u64);
        Ok(table)
    }

    /// Plan-time location resolution: like
    /// [`resolve_location`](Self::resolve_location) but side-effect
    /// free. Subqueries are never evaluated and tables never
    /// materialized as graphs — those locations plan without
    /// statistics (and inhibit reordering).
    fn plan_graph(&self, on: Option<&Location>) -> Option<Arc<PathPropertyGraph>> {
        match on {
            None => self.ctx.default_graph().ok(),
            Some(Location::Named(name)) => self.ctx.graph(name).ok(),
            Some(Location::Subquery(_)) => None,
        }
    }

    /// Resolve an `ON location` to a graph; `None` uses the default.
    pub fn resolve_location(&self, on: &Option<Location>) -> Result<Arc<PathPropertyGraph>> {
        match on {
            None => self.ctx.default_graph(),
            Some(Location::Named(name)) => match self.ctx.graph(name) {
                Ok(g) => Ok(g),
                // §5: a table name after ON is interpreted as a graph of
                // isolated nodes, one per row.
                Err(graph_err) => self.ctx.table_as_graph(name).map_err(|_| graph_err),
            },
            Some(Location::Subquery(q)) => {
                let out = self.eval_query(q, None)?;
                let Some(mut g) = out.into_graph() else {
                    return Err(SemanticError::GraphExpected("ON (subquery)".into()).into());
                };
                // The pattern is about to match against this graph —
                // index it so seeding/expansion run at indexed speed.
                g.build_label_index();
                Ok(Arc::new(g))
            }
        }
    }

    /// Keep rows whose WHERE condition is TRUE.
    pub fn filter_table(
        &self,
        table: BindingTable,
        cond: &gcore_parser::ast::Expr,
        outer: Option<&Env<'_>>,
    ) -> Result<BindingTable> {
        let mut first_err = None;
        let mut tick = 0u32;
        let filtered = table.filter(|ri| {
            if first_err.is_some() {
                return false;
            }
            if let Err(e) = self.ctx.cancel.checkpoint(&mut tick) {
                first_err = Some(e);
                return false;
            }
            let mut env = Env::new(&table, ri);
            env.parent = outer;
            match eval_expr(self.ctx, self, &env, cond) {
                Ok(v) => v.truthy(),
                Err(e) => {
                    first_err = Some(e);
                    false
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(filtered),
        }
    }

    /// Materialize the segments of every PATH view referenced by an NFA
    /// (§A.4), over the given graph.
    pub fn resolve_views(&self, nfa: &Nfa, graph: &Arc<PathPropertyGraph>) -> Result<ViewMap> {
        let mut map = ViewMap::default();
        for name in nfa.view_names() {
            let segments = self.view_segments(&name, graph)?;
            map.insert(name, segments);
        }
        Ok(map)
    }

    /// Build (or fetch from cache) the segment relation of one PATH view.
    pub fn view_segments(
        &self,
        name: &str,
        graph: &Arc<PathPropertyGraph>,
    ) -> Result<ViewSegments> {
        let cache_key = (name.to_owned(), Arc::as_ptr(graph) as usize);
        if let Some(hit) = self.ctx.view_cache.borrow().get(&cache_key) {
            return Ok(hit.clone());
        }
        if self.ctx.view_in_progress.borrow().iter().any(|n| n == name) {
            return Err(RuntimeError::Other(format!(
                "path view '~{name}' is recursive; recursion through PATH views is not part of \
                 G-CORE"
            ))
            .into());
        }
        let def = self.ctx.path_view(name)?;
        self.ctx.view_in_progress.borrow_mut().push(name.to_owned());
        let built = self.build_view_segments(&def, graph);
        self.ctx.view_in_progress.borrow_mut().pop();
        let segments = built?;
        self.ctx
            .view_cache
            .borrow_mut()
            .insert(cache_key, segments.clone());
        Ok(segments)
    }

    fn build_view_segments(
        &self,
        def: &PathClause,
        graph: &Arc<PathPropertyGraph>,
    ) -> Result<ViewSegments> {
        let matcher = PatternMatcher::new(self, graph.clone());
        let first = def.patterns.first().ok_or_else(|| {
            SemanticError::InvalidPathPattern("PATH clause without a pattern".into())
        })?;
        if first.steps.is_empty() {
            return Err(SemanticError::InvalidPathPattern(format!(
                "PATH view '{}' must contain a path segment (start and end node)",
                def.name
            ))
            .into());
        }
        let (mut table, chain) = matcher.eval_chain(first, None)?;
        // Non-linear shapes: the remaining comma-separated patterns
        // constrain (and can bind variables usable in COST, footnote 3).
        for extra in &def.patterns[1..] {
            let t = matcher.eval_pattern(extra, None)?;
            table = table.join(&t);
        }
        if let Some(w) = &def.where_clause {
            table = self.filter_table(table, w, None)?;
        }

        let start_idx = table
            .column_index(&chain.node_vars[0])
            .expect("chain column");
        let end_idx = table
            .column_index(chain.node_vars.last().expect("nonempty"))
            .expect("chain column");
        let conn_idxs: Vec<usize> = chain
            .conn_vars
            .iter()
            .map(|v| table.column_index(v).expect("chain column"))
            .collect();
        let node_idxs: Vec<usize> = chain
            .node_vars
            .iter()
            .map(|v| table.column_index(v).expect("chain column"))
            .collect();

        let mut segments = Vec::with_capacity(table.len());
        for ri in 0..table.len() {
            let Bound::Node(src) = table.bound(ri, start_idx) else {
                continue;
            };
            let Bound::Node(dst) = table.bound(ri, end_idx) else {
                continue;
            };
            // Reassemble the walk from the chain's bound elements.
            let mut walk = PathShape::trivial(src);
            let mut ok = true;
            for (i, &ci) in conn_idxs.iter().enumerate() {
                let Bound::Node(next) = table.bound(ri, node_idxs[i + 1]) else {
                    ok = false;
                    break;
                };
                let piece = match table.bound(ri, ci) {
                    Bound::Edge(e) => {
                        let prev = match table.bound(ri, node_idxs[i]) {
                            Bound::Node(n) => n,
                            _ => {
                                ok = false;
                                break;
                            }
                        };
                        PathShape::new(vec![prev, next], vec![e]).expect("edge step")
                    }
                    Bound::Path(p) => graph.path(p).expect("stored path").shape.clone(),
                    Bound::FreshPath(fi) => match self.ctx.fresh_path(fi) {
                        FreshPath::Walk { shape, .. } => shape,
                        FreshPath::Projection { .. } => {
                            return Err(SemanticError::InvalidPathPattern(format!(
                                "ALL path patterns cannot appear inside PATH view '{}'",
                                def.name
                            ))
                            .into())
                        }
                    },
                    _ => {
                        ok = false;
                        break;
                    }
                };
                match walk.concat(&piece) {
                    Some(w) => walk = w,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let cost = match &def.cost {
                None => 1.0,
                Some(expr) => {
                    let env = Env::new(&table, ri);
                    let rv = eval_expr(self.ctx, self, &env, expr)?;
                    let scalar = rv.as_scalar().and_then(|v| v.as_f64());
                    match scalar {
                        Some(c) if c > 0.0 => c,
                        other => {
                            return Err(RuntimeError::NonPositiveCost {
                                view: def.name.text.clone(),
                                detail: format!("segment {src}→{dst} evaluated COST to {other:?}"),
                            }
                            .into())
                        }
                    }
                }
            };
            segments.push(Segment {
                src,
                dst,
                cost,
                walk,
            });
        }
        Ok(ViewSegments::new(segments, def.cost.is_some()))
    }
}

impl SubqueryEval for Evaluator<'_> {
    fn eval_exists(&self, q: &Query, env: &Env<'_>) -> Result<bool> {
        // §A.1: Exists q is ⊤ iff the subquery's node set is non-empty.
        match self.eval_query(q, Some(env))? {
            QueryOutput::Graph(g) => Ok(g.node_count() > 0),
            QueryOutput::Table(t) => Ok(!t.is_empty()),
        }
    }

    fn eval_pattern_predicate(&self, p: &Pattern, env: &Env<'_>) -> Result<bool> {
        // Implicit existential (§3): the pattern, evaluated on the
        // ambient graph, must have a binding compatible with the current
        // one.
        let graph = self.ctx.ambient_graph()?;
        let matcher = PatternMatcher::new(self, graph);
        let table = matcher.eval_pattern(p, Some(env))?;
        let filtered = table.semijoin(&env_to_table(env));
        Ok(!filtered.is_empty())
    }
}

/// Split a WHERE condition into its top-level AND conjuncts and keep the
/// ones that reference exactly one variable and contain no subqueries —
/// those can be evaluated the moment the variable is bound.
fn pushdown_prefilters(
    where_clause: Option<&gcore_parser::ast::Expr>,
) -> gcore_ppg::hash::FxHashMap<String, Vec<&gcore_parser::ast::Expr>> {
    use gcore_parser::ast::{BinaryOp, Expr};

    fn conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary(BinaryOp::And, a, b) => {
                conjuncts(a, out);
                conjuncts(b, out);
            }
            other => out.push(other),
        }
    }

    /// Collect referenced variables; `None` means "not pushable" (the
    /// expression contains a subquery, pattern predicate or aggregate).
    fn vars(e: &Expr, out: &mut Vec<String>) -> bool {
        match e {
            Expr::Var(v) => {
                if !out.contains(&v.text) {
                    out.push(v.text.clone());
                }
                true
            }
            Expr::Prop(a, _) | Expr::LabelTest(a, _) | Expr::Unary(_, a) => vars(a, out),
            Expr::Index(a, b) | Expr::Binary(_, a, b) => vars(a, out) && vars(b, out),
            Expr::Func(_, args) => args.iter().all(|a| vars(a, out)),
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                operand.as_deref().is_none_or(|o| vars(o, out))
                    && whens.iter().all(|(c, r)| vars(c, out) && vars(r, out))
                    && else_.as_deref().is_none_or(|x| vars(x, out))
            }
            Expr::Exists(_) | Expr::PatternPredicate(_) | Expr::Aggregate { .. } => false,
            _ => true,
        }
    }

    let mut map: gcore_ppg::hash::FxHashMap<String, Vec<&Expr>> = Default::default();
    let Some(w) = where_clause else {
        return map;
    };
    let mut cs = Vec::new();
    conjuncts(w, &mut cs);
    for c in cs {
        let mut vs = Vec::new();
        if vars(c, &mut vs) && vs.len() == 1 {
            map.entry(vs.remove(0)).or_default().push(c);
        }
    }
    map
}

/// Flatten an environment chain into a one-row table (inner scopes
/// shadow outer ones).
pub fn env_to_table(env: &Env<'_>) -> BindingTable {
    let mut columns: Vec<Column> = Vec::new();
    let mut row: Vec<Bound> = Vec::new();
    let mut cur = Some(env);
    while let Some(e) = cur {
        for (i, c) in e.table.columns().iter().enumerate() {
            if !columns.iter().any(|x| x.var == c.var) {
                columns.push(c.clone());
                row.push(e.table.bound(e.row, i));
            }
        }
        cur = e.parent;
    }
    let mut b = TableBuilder::new(columns);
    b.push(&row);
    b.finish()
}
