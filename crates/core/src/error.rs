//! Engine errors: semantic (query rejected before evaluation) and
//! runtime (raised during evaluation, e.g. the paper's mandated error on
//! non-positive path costs).

use crate::diag::{DiagCode, Diagnostic};
use gcore_parser::ParseError;
use gcore_ppg::{CatalogError, GraphError};
use std::fmt;

/// Any error the engine can produce.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// The query is well-formed syntax but violates a static rule.
    Semantic(SemanticError),
    /// Evaluation failed.
    Runtime(RuntimeError),
    /// Catalog lookup failed.
    Catalog(CatalogError),
    /// Graph construction failed (should not escape the engine; kept for
    /// completeness).
    Graph(GraphError),
}

impl EngineError {
    /// True when this error means "evaluation was cooperatively
    /// cancelled" ([`RuntimeError::Cancelled`], stable code `E016`):
    /// the statement hit its deadline or an explicit cancel, not a
    /// defect in the query. Callers use this to map cancellation to a
    /// retryable condition instead of a user error.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self, EngineError::Runtime(RuntimeError::Cancelled))
    }
}

/// Static violations detected before evaluation.
#[derive(Clone, PartialEq, Debug)]
pub enum SemanticError {
    /// One variable used with two different sorts.
    SortMismatch {
        /// The offending variable.
        var: String,
        /// The sort required by the usage site.
        expected: String,
        /// The sort the variable is actually bound to.
        found: String,
    },
    /// A variable referenced but never bound in scope.
    UnboundVariable(String),
    /// `ALL` path variables may only be used for graph projection in
    /// CONSTRUCT (§3: anything else would be intractable or infinite).
    AllPathsEscape(String),
    /// A bound edge variable constructed with endpoints other than its own
    /// (§3: "changing the source and destination of an edge violates its
    /// identity").
    EdgeEndpointsChanged(String),
    /// A bound edge construct requires its endpoint variables bound too.
    EdgeEndpointsUnbound(String),
    /// Optional blocks may only share variables that appear in the
    /// enclosing (earlier) pattern \[31\].
    OptionalSharedVariable(String),
    /// A construct path variable must be bound by a path pattern in MATCH.
    ConstructPathUnbound(String),
    /// GROUP appeared on a bound variable (grouping of bound elements is
    /// fixed to identity by §A.3).
    GroupOnBoundVariable(String),
    /// Aggregates are only allowed in CONSTRUCT assignments / SET items /
    /// SELECT items.
    MisplacedAggregate(String),
    /// A SET/REMOVE/WHEN referenced a variable that is not a construct
    /// variable of its pattern nor a match variable.
    UnknownSetTarget(String),
    /// A path pattern with inconsistent modifiers (COST on ALL, mode on a
    /// stored-path pattern, a computed pattern without a regex, or a PATH
    /// view without a path segment).
    InvalidPathPattern(String),
    /// One construct variable carries two different GROUP clauses.
    GroupConflict(String),
    /// A graph-valued query was required, but the body is a SELECT.
    GraphExpected(String),
    /// The statement produced the wrong output sort for the API used.
    WrongOutputSort {
        /// What the caller asked for (`"graph"` / `"table"`).
        expected: &'static str,
        /// What the statement produces.
        found: &'static str,
    },
    /// The static analyzer rejected the statement; every error-severity
    /// diagnostic it collected is here.
    Analysis(Vec<Diagnostic>),
}

impl SemanticError {
    /// The stable diagnostic code for this error (see
    /// [`crate::diag::DiagCode`]). For [`SemanticError::Analysis`] this
    /// is the code of the first error-severity diagnostic.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            SemanticError::SortMismatch { .. } => DiagCode::SortMismatch.as_str(),
            SemanticError::UnboundVariable(_) => DiagCode::UnboundVariable.as_str(),
            SemanticError::OptionalSharedVariable(_) => DiagCode::OptionalSharedVariable.as_str(),
            SemanticError::MisplacedAggregate(_) => DiagCode::MisplacedAggregate.as_str(),
            SemanticError::InvalidPathPattern(_) => DiagCode::InvalidPathPattern.as_str(),
            SemanticError::GroupConflict(_) => DiagCode::GroupConflict.as_str(),
            SemanticError::GraphExpected(_) => DiagCode::GraphExpected.as_str(),
            SemanticError::AllPathsEscape(_) => DiagCode::AllPathsEscape.as_str(),
            SemanticError::EdgeEndpointsChanged(_) => DiagCode::EdgeEndpointsChanged.as_str(),
            SemanticError::EdgeEndpointsUnbound(_) => DiagCode::EdgeEndpointsUnbound.as_str(),
            SemanticError::ConstructPathUnbound(_) => DiagCode::ConstructPathUnbound.as_str(),
            SemanticError::GroupOnBoundVariable(_) => DiagCode::GroupOnBoundVariable.as_str(),
            SemanticError::UnknownSetTarget(_) => DiagCode::UnknownSetTarget.as_str(),
            SemanticError::WrongOutputSort { .. } => DiagCode::WrongOutputSort.as_str(),
            SemanticError::Analysis(diags) => diags
                .iter()
                .find(|d| d.is_error())
                .map_or("E999", |d| d.code.as_str()),
        }
    }
}

/// Failures raised during evaluation.
#[derive(Clone, PartialEq, Debug)]
pub enum RuntimeError {
    /// §3: "The specified cost must be numerical, and larger than zero
    /// (otherwise a run-time error will be raised)".
    NonPositiveCost {
        /// The PATH view whose COST failed.
        view: String,
        /// Human-readable description of the offending segment.
        detail: String,
    },
    /// A PATH view referenced from a regex does not exist.
    UnknownPathView(String),
    /// Type error during expression evaluation that cannot be coalesced.
    Type(String),
    /// Division by zero.
    DivisionByZero,
    /// Evaluation was cooperatively cancelled: the statement's
    /// [`CancelToken`](crate::cancel::CancelToken) fired (deadline
    /// passed or an explicit cancel), and the evaluator unwound at the
    /// next loop boundary. The result is *absent*, not wrong.
    Cancelled,
    /// Anything else.
    Other(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Semantic(e) => write!(f, "semantic error: {e}"),
            EngineError::Runtime(e) => write!(f, "runtime error: {e}"),
            EngineError::Catalog(e) => write!(f, "catalog error: {e}"),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticError::SortMismatch {
                var,
                expected,
                found,
            } => write!(
                f,
                "variable '{var}' is used both as {expected} and as {found}"
            ),
            SemanticError::UnboundVariable(v) => {
                write!(f, "variable '{v}' is not bound by any pattern in scope")
            }
            SemanticError::AllPathsEscape(v) => write!(
                f,
                "ALL-path variable '{v}' may only be used for graph projection in CONSTRUCT"
            ),
            SemanticError::EdgeEndpointsChanged(v) => write!(
                f,
                "edge variable '{v}' is bound; constructing it between other nodes would change \
                 its identity"
            ),
            SemanticError::EdgeEndpointsUnbound(v) => write!(
                f,
                "constructing bound edge '{v}' requires its source and destination variables to \
                 be bound to exactly its endpoints"
            ),
            SemanticError::OptionalSharedVariable(v) => write!(
                f,
                "variable '{v}' is shared between OPTIONAL blocks but missing from the enclosing \
                 pattern; this would make the result order-dependent"
            ),
            SemanticError::ConstructPathUnbound(v) => write!(
                f,
                "construct path variable '{v}' must be bound by a path pattern in MATCH"
            ),
            SemanticError::GroupOnBoundVariable(v) => write!(
                f,
                "GROUP on '{v}' is not allowed: the variable is bound, so its grouping is fixed \
                 to its identity"
            ),
            SemanticError::MisplacedAggregate(w) => {
                write!(f, "aggregate function not allowed in {w}")
            }
            SemanticError::UnknownSetTarget(v) => write!(
                f,
                "SET/REMOVE/WHEN references '{v}', which is neither a construct variable of this \
                 pattern nor a match variable"
            ),
            SemanticError::InvalidPathPattern(m) => write!(f, "invalid path pattern: {m}"),
            SemanticError::GroupConflict(v) => write!(
                f,
                "construct variable '{v}' has two different GROUP clauses"
            ),
            SemanticError::GraphExpected(w) => {
                write!(f, "{w} must be a graph query, not SELECT")
            }
            SemanticError::WrongOutputSort { expected, found } => {
                write!(f, "query produced a {found}; expected a {expected}")
            }
            SemanticError::Analysis(diags) => {
                let errors: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_error()).collect();
                write!(
                    f,
                    "{} static error{} (run `check` for full diagnostics)",
                    errors.len(),
                    if errors.len() == 1 { "" } else { "s" }
                )?;
                for d in errors {
                    write!(f, "\n  [{}] {}", d.code, d.message)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NonPositiveCost { view, detail } => write!(
                f,
                "path view '{view}' produced a non-positive or non-numeric cost: {detail}"
            ),
            RuntimeError::UnknownPathView(v) => write!(f, "unknown path view '~{v}'"),
            RuntimeError::Type(m) => write!(f, "type error: {m}"),
            RuntimeError::DivisionByZero => f.write_str("division by zero"),
            RuntimeError::Cancelled => {
                f.write_str("statement cancelled (deadline exceeded or cancellation requested)")
            }
            RuntimeError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<SemanticError> for EngineError {
    fn from(e: SemanticError) -> Self {
        EngineError::Semantic(e)
    }
}
impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}
impl From<CatalogError> for EngineError {
    fn from(e: CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}
impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
