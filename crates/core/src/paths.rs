//! Path search on the product of a graph and an NFA.
//!
//! Implements the paper's four path-pattern semantics:
//!
//! * **shortest / k-shortest** — Dijkstra-style search where every product
//!   state `(node, nfa-state)` may be popped up to `k` times; ties broken
//!   by the lexicographic order of the walk's identifier sequence, giving
//!   the *canonical* shortest path the appendix prescribes (footnote 4
//!   allows any fixed criterion — ours is the numeric id order).
//! * **weighted shortest** — same search; PATH-view segments contribute
//!   their per-binding cost (validated positive at segment-build time,
//!   per the §3 run-time-error requirement).
//! * **reachability** — plain BFS over the product, no walks materialized.
//! * **ALL paths** — the graph projection of [10]: an element lies in the
//!   projection iff some accepting walk uses it, computed as forward ∩
//!   backward product reachability. Nothing is enumerated, which is what
//!   keeps `ALL` tractable.

use crate::regex::{Nfa, Sym};
use gcore_ppg::hash::{FxHashMap, FxHashSet};
use gcore_ppg::{EdgeId, NodeId, PathPropertyGraph, PathShape};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One pre-evaluated segment of a PATH view: a (src, dst) pair with the
/// positive cost of this traversal and the underlying walk.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Segment source node.
    pub src: NodeId,
    /// Segment destination node.
    pub dst: NodeId,
    /// Cost of traversing the segment (positive).
    pub cost: f64,
    /// The concrete walk realizing the segment.
    pub walk: PathShape,
}

/// All segments of one PATH view over one graph, indexed by source.
#[derive(Clone, Default, Debug)]
pub struct ViewSegments {
    /// The segment relation, sorted by (src, dst).
    pub segments: Vec<Segment>,
    /// Indexes into `segments`, keyed by source node (deterministic
    /// expansion order within each source).
    pub by_src: FxHashMap<NodeId, Vec<usize>>,
    /// True when the view declares an explicit COST (so path costs are
    /// real-valued, not hop counts).
    pub weighted: bool,
}

impl ViewSegments {
    /// Build the index from a segment list.
    pub fn new(segments: Vec<Segment>, weighted: bool) -> Self {
        let mut by_src: FxHashMap<NodeId, Vec<usize>> = FxHashMap::default();
        for (i, s) in segments.iter().enumerate() {
            by_src.entry(s.src).or_default().push(i);
        }
        // Deterministic expansion order: by (dst, walk).
        for idxs in by_src.values_mut() {
            idxs.sort_by(|&a, &b| {
                let sa = &segments[a];
                let sb = &segments[b];
                sa.dst
                    .cmp(&sb.dst)
                    .then_with(|| sa.walk.interleaved().cmp(&sb.walk.interleaved()))
            });
        }
        ViewSegments {
            segments,
            by_src,
            weighted,
        }
    }
}

/// Named view segments available to a search.
pub type ViewMap = FxHashMap<String, ViewSegments>;

/// A path found by the search.
#[derive(Clone, Debug)]
pub struct FoundPath {
    /// The walk found.
    pub walk: PathShape,
    /// Its total cost.
    pub cost: f64,
}

/// Search driver over one graph + NFA + views.
pub struct PathSearcher<'a> {
    graph: &'a PathPropertyGraph,
    nfa: &'a Nfa,
    views: &'a ViewMap,
    /// Does any referenced view carry real-valued costs?
    pub weighted: bool,
}

impl<'a> PathSearcher<'a> {
    /// Create a searcher; `weighted` is derived from the views referenced
    /// by the NFA.
    pub fn new(graph: &'a PathPropertyGraph, nfa: &'a Nfa, views: &'a ViewMap) -> Self {
        let weighted = nfa
            .view_names()
            .iter()
            .any(|n| views.get(n).is_some_and(|v| v.weighted));
        PathSearcher {
            graph,
            nfa,
            views,
            weighted,
        }
    }

    /// ε+node-test closure of a set of NFA states at a node.
    fn close_at(&self, node: NodeId, states: &[usize]) -> Vec<usize> {
        let n = self.nfa.num_states();
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for &s in states {
            for &c in self.nfa.closure(s) {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        if self.nfa.has_node_tests() {
            while let Some(q) = stack.pop() {
                for (sym, to) in self.nfa.transitions(q) {
                    if let Sym::NodeTest(l) = sym {
                        if self.graph.has_label(node.into(), *l) {
                            for &c in self.nfa.closure(*to) {
                                if !seen[c] {
                                    seen[c] = true;
                                    stack.push(c);
                                }
                            }
                        }
                    }
                }
            }
        }
        (0..n).filter(|&i| seen[i]).collect()
    }

    /// Edge- and view-consuming expansions from `(node, q)`:
    /// `(cost, next_node, next_state, appended walk piece)`.
    fn expand(&self, node: NodeId, q: usize) -> Vec<(f64, NodeId, usize, PathShape)> {
        let mut out = Vec::new();
        for (sym, to) in self.nfa.transitions(q) {
            match sym {
                Sym::NodeTest(_) => {} // handled by closure
                Sym::Label(l) => {
                    for &e in self.graph.out_edges(node) {
                        let data = self.graph.edge(e).expect("adjacent edge");
                        if data.attrs.labels.contains(*l) {
                            out.push((1.0, data.dst, *to, step(node, e, data.dst)));
                        }
                    }
                }
                Sym::LabelInv(l) => {
                    for &e in self.graph.in_edges(node) {
                        let data = self.graph.edge(e).expect("adjacent edge");
                        if data.attrs.labels.contains(*l) {
                            out.push((1.0, data.src, *to, step(node, e, data.src)));
                        }
                    }
                }
                Sym::Wildcard => {
                    for &e in self.graph.out_edges(node) {
                        let data = self.graph.edge(e).expect("adjacent edge");
                        out.push((1.0, data.dst, *to, step(node, e, data.dst)));
                    }
                    for &e in self.graph.in_edges(node) {
                        let data = self.graph.edge(e).expect("adjacent edge");
                        // Self-loops already expanded forwards.
                        if data.src != data.dst {
                            out.push((1.0, data.src, *to, step(node, e, data.src)));
                        }
                    }
                }
                Sym::View(name) => {
                    if let Some(view) = self.views.get(name) {
                        if let Some(idxs) = view.by_src.get(&node) {
                            for &i in idxs {
                                let seg = &view.segments[i];
                                out.push((seg.cost, seg.dst, *to, seg.walk.clone()));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Up to `k` cheapest accepting walks from `src` to every reachable
    /// destination (or only `targets`, when given). Walks are returned
    /// grouped by destination, cheapest (and lexicographically first)
    /// first.
    pub fn k_shortest(
        &self,
        src: NodeId,
        k: usize,
        targets: Option<&FxHashSet<NodeId>>,
    ) -> FxHashMap<NodeId, Vec<FoundPath>> {
        let mut results: FxHashMap<NodeId, Vec<FoundPath>> = FxHashMap::default();
        if !self.graph.contains_node(src) || k == 0 {
            return results;
        }
        let mut pops: FxHashMap<(NodeId, usize), usize> = FxHashMap::default();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        // Seed: closure of the start state at src; enqueue one entry per
        // closed state so accepting-at-zero-length works.
        for q in self.close_at(src, &[self.nfa.start()]) {
            heap.push(HeapEntry {
                cost: 0.0,
                walk: PathShape::trivial(src),
                node: src,
                state: q,
            });
        }
        // An accepted pop at (v, accepting q) yields a result for v; the
        // same walk may be reported through several states — dedup.
        while let Some(entry) = heap.pop() {
            let key = (entry.node, entry.state);
            let count = pops.entry(key).or_insert(0);
            if *count >= k {
                continue;
            }
            *count += 1;
            if self.nfa.accepts(entry.state) {
                let want = targets.is_none_or(|t| t.contains(&entry.node));
                if want {
                    let bucket = results.entry(entry.node).or_default();
                    if bucket.len() < k && !bucket.iter().any(|p| p.walk == entry.walk) {
                        bucket.push(FoundPath {
                            walk: entry.walk.clone(),
                            cost: entry.cost,
                        });
                    }
                }
            }
            for (step_cost, next_node, next_state, piece) in self.expand(entry.node, entry.state) {
                let Some(new_walk) = entry.walk.concat(&piece) else {
                    continue;
                };
                for q in self.close_at(next_node, &[next_state]) {
                    heap.push(HeapEntry {
                        cost: entry.cost + step_cost,
                        walk: new_walk.clone(),
                        node: next_node,
                        state: q,
                    });
                }
            }
        }
        for bucket in results.values_mut() {
            bucket.sort_by(|a, b| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| a.walk.interleaved().cmp(&b.walk.interleaved()))
            });
        }
        results
    }

    /// Destinations reachable from `src` via an accepting walk —
    /// the reachability-test semantics of `-/<r>/->` without a variable.
    pub fn reachable(&self, src: NodeId) -> Vec<NodeId> {
        let mut out: FxHashSet<NodeId> = FxHashSet::default();
        if !self.graph.contains_node(src) {
            return Vec::new();
        }
        let mut seen: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for q in self.close_at(src, &[self.nfa.start()]) {
            if seen.insert((src, q)) {
                stack.push((src, q));
            }
        }
        while let Some((v, q)) = stack.pop() {
            if self.nfa.accepts(q) {
                out.insert(v);
            }
            for (_, next_node, next_state, _) in self.expand(v, q) {
                for c in self.close_at(next_node, &[next_state]) {
                    if seen.insert((next_node, c)) {
                        stack.push((next_node, c));
                    }
                }
            }
        }
        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The ALL-paths graph projection between `src` and `dst`: every node
    /// and edge on some accepting walk. `None` when no such walk exists.
    ///
    /// Built from the explicit product digraph: forward-reachable states
    /// ∩ backward-reachable-from-acceptance states select the product
    /// edges whose underlying graph elements are projected.
    pub fn all_paths_projection(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> Option<(Vec<NodeId>, Vec<EdgeId>)> {
        if !self.graph.contains_node(src) || !self.graph.contains_node(dst) {
            return None;
        }
        // Forward exploration, recording product edges.
        #[derive(Clone)]
        struct PEdge {
            from: (NodeId, usize),
            to: (NodeId, usize),
            piece: PathShape,
        }
        let mut edges: Vec<PEdge> = Vec::new();
        let mut fwd: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for q in self.close_at(src, &[self.nfa.start()]) {
            if fwd.insert((src, q)) {
                stack.push((src, q));
            }
        }
        while let Some((v, q)) = stack.pop() {
            for (_, next_node, next_state, piece) in self.expand(v, q) {
                for c in self.close_at(next_node, &[next_state]) {
                    edges.push(PEdge {
                        from: (v, q),
                        to: (next_node, c),
                        piece: piece.clone(),
                    });
                    if fwd.insert((next_node, c)) {
                        stack.push((next_node, c));
                    }
                }
            }
        }
        // Backward reachability from accepting states at dst.
        let mut incoming: FxHashMap<(NodeId, usize), Vec<usize>> = FxHashMap::default();
        for (i, e) in edges.iter().enumerate() {
            incoming.entry(e.to).or_default().push(i);
        }
        let mut bwd: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for &(v, q) in fwd.iter() {
            if v == dst && self.nfa.accepts(q) && bwd.insert((v, q)) {
                stack.push((v, q));
            }
        }
        if bwd.is_empty() {
            return None;
        }
        while let Some(state) = stack.pop() {
            if let Some(idxs) = incoming.get(&state) {
                for &i in idxs {
                    let from = edges[i].from;
                    if bwd.insert(from) {
                        stack.push(from);
                    }
                }
            }
        }
        // Project elements of product edges on accepting walks.
        let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
        let mut eids: FxHashSet<EdgeId> = FxHashSet::default();
        nodes.insert(src);
        nodes.insert(dst);
        for e in &edges {
            if fwd.contains(&e.from) && bwd.contains(&e.to) && bwd.contains(&e.from) {
                for &n in e.piece.nodes() {
                    nodes.insert(n);
                }
                for &id in e.piece.edges() {
                    eids.insert(id);
                }
            }
        }
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        let mut eids: Vec<EdgeId> = eids.into_iter().collect();
        eids.sort_unstable();
        Some((nodes, eids))
    }
}

fn step(from: NodeId, e: EdgeId, to: NodeId) -> PathShape {
    PathShape::new(vec![from, to], vec![e]).expect("two nodes, one edge")
}

/// Max-heap entry ordered so the *smallest* (cost, lexicographic walk)
/// pops first.
struct HeapEntry {
    cost: f64,
    walk: PathShape,
    node: NodeId,
    state: usize,
}

impl HeapEntry {
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.cost
            .total_cmp(&other.cost)
            .then_with(|| self.walk.interleaved().cmp(&other.walk.interleaved()))
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.state.cmp(&other.state))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap.
        other.key_cmp(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_parser::ast::Regex;
    use gcore_ppg::Attributes;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    /// A small knows-chain: 1→2→3→4, plus a shortcut 1→3 labeled likes,
    /// and a reverse edge 3→2.
    fn chain() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        for i in 1..=4 {
            g.add_node(n(i), Attributes::labeled("Person"));
        }
        g.add_edge(EdgeId(10), n(1), n(2), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(11), n(2), n(3), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(12), n(3), n(4), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(13), n(1), n(3), Attributes::labeled("likes"))
            .unwrap();
        g.add_edge(EdgeId(14), n(3), n(2), Attributes::labeled("knows"))
            .unwrap();
        g
    }

    fn knows_star() -> Nfa {
        Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))))
    }

    #[test]
    fn shortest_path_unit_costs() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(1), 1, None);
        // 1 reaches 1 (length 0), 2, 3, 4 over knows*
        assert_eq!(found[&n(1)][0].cost, 0.0);
        assert_eq!(found[&n(2)][0].cost, 1.0);
        assert_eq!(found[&n(3)][0].cost, 2.0);
        assert_eq!(found[&n(4)][0].cost, 3.0);
        // canonical path to 3 goes through edge 10, 11
        assert_eq!(found[&n(3)][0].walk.interleaved(), vec![1, 10, 2, 11, 3]);
    }

    #[test]
    fn k_shortest_finds_alternatives() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(1), 3, None);
        // Walks to node 2: [1,10,2] (len 1), [1,10,2,11,3,14,2] (len 3), …
        let to2 = &found[&n(2)];
        assert!(to2.len() >= 2);
        assert_eq!(to2[0].cost, 1.0);
        assert!(to2[1].cost > to2[0].cost);
        // all distinct
        for i in 1..to2.len() {
            assert_ne!(to2[i - 1].walk, to2[i].walk);
        }
    }

    #[test]
    fn reachability_matches_shortest_domains() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        assert_eq!(s.reachable(n(1)), vec![n(1), n(2), n(3), n(4)]);
        assert_eq!(s.reachable(n(4)), vec![n(4)]);
    }

    #[test]
    fn targets_restrict_results() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let mut t = FxHashSet::default();
        t.insert(n(4));
        let found = s.k_shortest(n(1), 1, Some(&t));
        assert_eq!(found.len(), 1);
        assert!(found.contains_key(&n(4)));
    }

    #[test]
    fn inverse_labels_travel_backwards() {
        let g = chain();
        // (:knows-)* from node 4 reaches 3, 2, 1
        let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::LabelInv("knows".into()))));
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let r = s.reachable(n(4));
        assert!(r.contains(&n(1)) && r.contains(&n(2)) && r.contains(&n(3)));
    }

    #[test]
    fn all_paths_projection_contains_both_routes() {
        let mut g = chain();
        // add a second knows route 1→5→3
        g.add_node(n(5), Attributes::labeled("Person"));
        g.add_edge(EdgeId(15), n(1), n(5), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(16), n(5), n(3), Attributes::labeled("knows"))
            .unwrap();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let (nodes, edges) = s.all_paths_projection(n(1), n(3)).unwrap();
        assert!(nodes.contains(&n(2)) && nodes.contains(&n(5)));
        assert!(edges.contains(&EdgeId(10)) && edges.contains(&EdgeId(15)));
        // likes edge 13 not on any knows* walk
        assert!(!edges.contains(&EdgeId(13)));
        // unreachable pair
        assert!(s.all_paths_projection(n(4), n(1)).is_none());
    }

    #[test]
    fn weighted_view_segments_drive_dijkstra() {
        let g = chain();
        // view with custom costs: each knows edge as a segment; edge 10
        // expensive, alternative route cheap… here: make 1→2 cost 10,
        // 1→3 (via likes? no): segments 1→2 (10), 2→3 (1), 1→3 (2).
        let segs = vec![
            Segment {
                src: n(1),
                dst: n(2),
                cost: 10.0,
                walk: step(n(1), EdgeId(10), n(2)),
            },
            Segment {
                src: n(2),
                dst: n(3),
                cost: 1.0,
                walk: step(n(2), EdgeId(11), n(3)),
            },
            Segment {
                src: n(1),
                dst: n(3),
                cost: 2.0,
                walk: step(n(1), EdgeId(13), n(3)),
            },
        ];
        let mut views = ViewMap::default();
        views.insert("v".into(), ViewSegments::new(segs, true));
        let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::View("v".into()))));
        let s = PathSearcher::new(&g, &nfa, &views);
        assert!(s.weighted);
        let found = s.k_shortest(n(1), 1, None);
        // cheapest to 3 is the direct cost-2 segment, not 10+1
        assert_eq!(found[&n(3)][0].cost, 2.0);
        assert_eq!(found[&n(3)][0].walk.interleaved(), vec![1, 13, 3]);
    }

    #[test]
    fn zero_length_paths_accepted_by_star() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(2), 1, None);
        let self_path = &found[&n(2)][0];
        assert_eq!(self_path.cost, 0.0);
        assert_eq!(self_path.walk.length(), 0);
    }

    #[test]
    fn node_tests_filter_intermediate_nodes() {
        let mut g = PathPropertyGraph::new();
        g.add_node(n(1), Attributes::labeled("A"));
        g.add_node(n(2), Attributes::labeled("Blocked"));
        g.add_node(n(3), Attributes::labeled("Open"));
        g.add_node(n(4), Attributes::labeled("A"));
        g.add_edge(EdgeId(10), n(1), n(2), Attributes::labeled("r"))
            .unwrap();
        g.add_edge(EdgeId(11), n(2), n(4), Attributes::labeled("r"))
            .unwrap();
        g.add_edge(EdgeId(12), n(1), n(3), Attributes::labeled("r"))
            .unwrap();
        g.add_edge(EdgeId(13), n(3), n(4), Attributes::labeled("r"))
            .unwrap();
        // :r !Open :r — middle node must be Open
        let re = Regex::Concat(vec![
            Regex::Label("r".into()),
            Regex::NodeTest("Open".into()),
            Regex::Label("r".into()),
        ]);
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(1), 1, None);
        assert_eq!(found[&n(4)][0].walk.interleaved(), vec![1, 12, 3, 13, 4]);
    }
}
