//! Path search on the product of a graph and an NFA.
//!
//! Implements the paper's four path-pattern semantics:
//!
//! * **shortest / k-shortest** — Dijkstra-style search where every product
//!   state `(node, nfa-state)` may be popped up to `k` times; ties broken
//!   by the lexicographic order of the walk's identifier sequence, giving
//!   the *canonical* shortest path the appendix prescribes (footnote 4
//!   allows any fixed criterion — ours is the numeric id order).
//! * **weighted shortest** — same search; PATH-view segments contribute
//!   their per-binding cost (validated positive at segment-build time,
//!   per the §3 run-time-error requirement).
//! * **reachability** — plain BFS over the product, no walks materialized.
//! * **ALL paths** — the graph projection of \[10\]: an element lies in the
//!   projection iff some accepting walk uses it, computed as forward ∩
//!   backward product reachability. Nothing is enumerated, which is what
//!   keeps `ALL` tractable.
//!
//! # Search strategy
//!
//! Three orthogonal accelerations (all semantics-preserving — the
//! equivalence property tests in `tests/path_equivalence.rs` check each
//! against the baseline search):
//!
//! * **Indexed expansion** ([`ExpandMode::Indexed`], the default): when
//!   an NFA transition consumes a concrete label, product states expand
//!   through the graph's label-partitioned adjacency slices
//!   ([`PathPropertyGraph::out_steps_with_label`] /
//!   [`in_steps_with_label`](PathPropertyGraph::in_steps_with_label))
//!   instead of scanning and filtering every incident edge. Per-state
//!   transitions are pre-grouped by symbol
//!   ([`Nfa::grouped_transitions`]), so each label slice is read once
//!   per state. [`ExpandMode::Scan`] keeps the pre-overhaul scan
//!   expansion selectable for controlled benchmarking.
//! * **Bidirectional search** ([`PathSearcher::reachable_pair`]): a
//!   single-pair reachability test runs two alternating BFS frontiers —
//!   forward over the NFA, backward over its reversal
//!   ([`Nfa::reverse`]) — and stops at the first meeting product state.
//! * **Backward cone pruning**: [`PathSearcher::k_shortest`] with
//!   concrete targets first computes the set of product states
//!   *co-reachable* to acceptance at a target (one cheap reversed BFS)
//!   and lets the canonical Dijkstra expand only inside that cone.
//!   States outside the cone cannot contribute any accepting walk, so
//!   results — including tie-breaking — are bit-identical.
//!
//! For the many-source reachability shape (`MATCH (x)-/<r>/->(y)` with
//! hundreds of seed nodes), [`PathSearcher::reachable_many`] shares one
//! product exploration across all sources: the product digraph is
//! condensed into strongly connected components (every state of an SCC
//! reaches the same destinations) and per-component destination sets are
//! accumulated once in reverse topological order, `Arc`-shared between
//! components wherever a component adds nothing of its own.

use crate::regex::{Nfa, Sym};
use gcore_ppg::hash::{FxHashMap, FxHashSet};
use gcore_ppg::{EdgeId, NodeId, PathPropertyGraph, PathShape};
use std::cell::OnceCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One pre-evaluated segment of a PATH view: a (src, dst) pair with the
/// positive cost of this traversal and the underlying walk.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Segment source node.
    pub src: NodeId,
    /// Segment destination node.
    pub dst: NodeId,
    /// Cost of traversing the segment (positive).
    pub cost: f64,
    /// The concrete walk realizing the segment.
    pub walk: PathShape,
}

/// All segments of one PATH view over one graph, indexed by source.
#[derive(Clone, Default, Debug)]
pub struct ViewSegments {
    /// The segment relation, sorted by (src, dst).
    pub segments: Vec<Segment>,
    /// Indexes into `segments`, keyed by source node (deterministic
    /// expansion order within each source).
    pub by_src: FxHashMap<NodeId, Vec<usize>>,
    /// True when the view declares an explicit COST (so path costs are
    /// real-valued, not hop counts).
    pub weighted: bool,
}

impl ViewSegments {
    /// Build the index from a segment list.
    ///
    /// ```
    /// use gcore::paths::{Segment, ViewSegments};
    /// use gcore_ppg::{EdgeId, NodeId, PathShape};
    ///
    /// let (a, b) = (NodeId(1), NodeId(2));
    /// let walk = PathShape::new(vec![a, b], vec![EdgeId(10)]).unwrap();
    /// let view = ViewSegments::new(
    ///     vec![Segment { src: a, dst: b, cost: 2.5, walk }],
    ///     true, // the view declares an explicit COST
    /// );
    /// assert!(view.weighted);
    /// assert_eq!(view.by_src[&a], vec![0]); // segment 0 starts at `a`
    /// ```
    pub fn new(segments: Vec<Segment>, weighted: bool) -> Self {
        let mut by_src: FxHashMap<NodeId, Vec<usize>> = FxHashMap::default();
        for (i, s) in segments.iter().enumerate() {
            by_src.entry(s.src).or_default().push(i);
        }
        // Deterministic expansion order: by (dst, walk).
        for idxs in by_src.values_mut() {
            idxs.sort_by(|&a, &b| {
                let sa = &segments[a];
                let sb = &segments[b];
                sa.dst
                    .cmp(&sb.dst)
                    .then_with(|| sa.walk.interleaved().cmp(&sb.walk.interleaved()))
            });
        }
        ViewSegments {
            segments,
            by_src,
            weighted,
        }
    }
}

/// Named view segments available to a search.
pub type ViewMap = FxHashMap<String, ViewSegments>;

/// A path found by the search.
#[derive(Clone, Debug)]
pub struct FoundPath {
    /// The walk found.
    pub walk: PathShape,
    /// Its total cost.
    pub cost: f64,
}

/// A set of product states, stored as per-node NFA-state bitmasks for
/// small automata (the common case) or as a plain hash set otherwise.
enum StateSet {
    /// `masks[v]` has bit `q` set iff `(v, q)` is in the set. Only used
    /// when the automaton has ≤ 64 states.
    Masks(FxHashMap<NodeId, u64>),
    Set(FxHashSet<(NodeId, usize)>),
}

impl StateSet {
    #[inline]
    fn contains(&self, v: NodeId, q: usize) -> bool {
        match self {
            StateSet::Masks(m) => m.get(&v).is_some_and(|&mask| mask & (1 << q) != 0),
            StateSet::Set(s) => s.contains(&(v, q)),
        }
    }

    /// Nodes with at least one member state satisfying `pred`.
    fn nodes_with_state(&self, pred: impl Fn(usize) -> bool) -> Vec<NodeId> {
        match self {
            StateSet::Masks(m) => {
                let keep: u64 = (0..64)
                    .filter(|&q| pred(q))
                    .fold(0, |acc, q| acc | (1 << q));
                m.iter()
                    .filter(|(_, &mask)| mask & keep != 0)
                    .map(|(&v, _)| v)
                    .collect()
            }
            StateSet::Set(s) => {
                let mut v: Vec<NodeId> = s
                    .iter()
                    .filter(|&&(_, q)| pred(q))
                    .map(|&(v, _)| v)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }
}

/// The per-product-state arrays of the iterative Tarjan SCC pass in
/// [`PathSearcher::reachable_many`], grown together as product states
/// are interned on the fly. [`Tarjan::UNDEF`] marks unvisited (`index`)
/// / unassigned (`comp`) entries.
#[derive(Default)]
struct Tarjan {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    comp: Vec<u32>,
    on_stack: Vec<bool>,
    /// Successor lists, kept for the condensation-DAG pass after the
    /// SCC assignment.
    succs: Vec<Vec<u32>>,
    /// The SCC candidate stack.
    stack: Vec<u32>,
    next_index: u32,
    comp_count: u32,
}

impl Tarjan {
    const UNDEF: u32 = u32::MAX;

    /// Grow every per-state array to cover `n` interned states.
    fn grow(&mut self, n: usize) {
        self.index.resize(n, Self::UNDEF);
        self.lowlink.resize(n, Self::UNDEF);
        self.comp.resize(n, Self::UNDEF);
        self.on_stack.resize(n, false);
        self.succs.resize(n, Vec::new());
    }

    /// Open a DFS frame for `v`: grow to `n_states` (the successor
    /// computation may have interned new states), number the state,
    /// push it on the SCC stack and record its successor list.
    fn open(&mut self, v: u32, succs: Vec<u32>, n_states: usize) {
        self.grow(n_states);
        let i = v as usize;
        self.index[i] = self.next_index;
        self.lowlink[i] = self.next_index;
        self.next_index += 1;
        self.on_stack[i] = true;
        self.stack.push(v);
        self.succs[i] = succs;
    }

    /// Close `fin`'s DFS frame: fold its lowlink into `parent` and, if
    /// `fin` is an SCC root, pop the completed component — so component
    /// ids increase with completion (= reverse topological) order.
    fn close(&mut self, fin: u32, parent: Option<u32>) {
        let fi = fin as usize;
        if let Some(p) = parent {
            self.lowlink[p as usize] = self.lowlink[p as usize].min(self.lowlink[fi]);
        }
        if self.lowlink[fi] == self.index[fi] {
            loop {
                let w = self.stack.pop().expect("scc member");
                self.on_stack[w as usize] = false;
                self.comp[w as usize] = self.comp_count;
                if w == fin {
                    break;
                }
            }
            self.comp_count += 1;
        }
    }
}

/// The walk contribution of one expansion step, borrowed where a walk
/// already exists (view segments) and by id where it would have to be
/// built (graph edges) — so walk-free searches pay nothing for it.
enum StepPiece<'v> {
    /// A graph edge traversed to the step's far endpoint.
    Edge(EdgeId),
    /// A view segment's pre-built walk.
    Seg(&'v PathShape),
}

/// How the product search enumerates graph edges for a label symbol.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExpandMode {
    /// Scan the full adjacency list of the node and filter each edge by
    /// label — the pre-overhaul behavior, kept selectable so the
    /// controlled expansion benchmark can compare both strategies in one
    /// process.
    Scan,
    /// Expand label symbols through the graph's label-partitioned
    /// adjacency slices (the default). Falls back to scanning when the
    /// graph has no label index built, so it is never a correctness or
    /// pessimization concern.
    #[default]
    Indexed,
}

/// Search driver over one graph + NFA + views.
pub struct PathSearcher<'a> {
    graph: &'a PathPropertyGraph,
    nfa: &'a Nfa,
    views: &'a ViewMap,
    /// Does any referenced view carry real-valued costs?
    pub weighted: bool,
    mode: ExpandMode,
    /// Cooperative cancellation: the frontier loops poll this and bail
    /// early (returning partial or empty results) once it fires. The
    /// caller is responsible for turning "searcher was cancelled" into
    /// an error — partial results never escape as answers.
    cancel: Option<crate::cancel::CancelToken>,
    /// Lazily compiled reversal of `nfa` (`None` inside = irreversible,
    /// i.e. the NFA traverses views).
    rev: OnceCell<Option<Nfa>>,
    /// Frontier pops across every search this searcher ran: one count
    /// per product-state popped off a frontier (including condensation
    /// frames). The matcher reports it on `path-search` profile spans.
    pops: std::cell::Cell<u64>,
}

impl<'a> PathSearcher<'a> {
    /// Create a searcher; `weighted` is derived from the views referenced
    /// by the NFA.
    ///
    /// ```
    /// use gcore::paths::{PathSearcher, ViewMap};
    /// use gcore::regex::Nfa;
    /// use gcore_parser::ast::Regex;
    /// use gcore_ppg::{Attributes, GraphBuilder};
    ///
    /// let mut b = GraphBuilder::standalone();
    /// let ann = b.node(Attributes::labeled("Person"));
    /// let bob = b.node(Attributes::labeled("Person"));
    /// b.edge(ann, bob, Attributes::labeled("knows"));
    /// let g = b.build();
    ///
    /// let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))));
    /// let views = ViewMap::default();
    /// let searcher = PathSearcher::new(&g, &nfa, &views);
    /// assert!(!searcher.weighted); // no COST view in sight
    /// assert!(searcher.reachable(ann).contains(&bob));
    /// ```
    pub fn new(graph: &'a PathPropertyGraph, nfa: &'a Nfa, views: &'a ViewMap) -> Self {
        let weighted = nfa
            .view_names()
            .iter()
            .any(|n| views.get(n).is_some_and(|v| v.weighted));
        PathSearcher {
            graph,
            nfa,
            views,
            weighted,
            mode: ExpandMode::default(),
            cancel: None,
            rev: OnceCell::new(),
            pops: std::cell::Cell::new(0),
        }
    }

    /// Total frontier pops across every search this searcher has run —
    /// the work measure `path-search` profile spans report as
    /// `frontier_pops`. Deterministic for a given (graph, NFA, views,
    /// query) under sequential evaluation.
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops.get()
    }

    /// Select the edge-expansion strategy (for controlled benchmarks;
    /// results are identical under either mode).
    pub fn with_expansion(mut self, mode: ExpandMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attach a cancellation token: the search loops poll it and return
    /// early once it fires. A search that was cut short reports so via
    /// [`cancelled`](Self::cancelled); its partial results must be
    /// discarded by the caller.
    #[must_use]
    pub fn with_cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Has the attached cancellation token fired? Always `false` when
    /// no token is attached.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(crate::cancel::CancelToken::is_cancelled)
    }

    /// Strided cancellation poll for frontier loops: consults the token
    /// once per [`CHECK_STRIDE`](crate::cancel::CHECK_STRIDE) calls.
    /// Every call is one frontier pop, so this doubles as the
    /// [`pops`](Self::pops) counter — the profiling loop boundaries are
    /// exactly the cancellation ones.
    #[inline]
    fn cancel_tick(&self, tick: &mut u32) -> bool {
        self.pops.set(self.pops.get() + 1);
        match &self.cancel {
            None => false,
            Some(t) => {
                *tick = tick.wrapping_add(1);
                tick.is_multiple_of(crate::cancel::CHECK_STRIDE) && t.is_cancelled()
            }
        }
    }

    /// The reversed NFA, compiled on first use; `None` when the NFA is
    /// irreversible (it traverses PATH views).
    fn rev_nfa(&self) -> Option<&Nfa> {
        self.rev.get_or_init(|| self.nfa.reverse()).as_ref()
    }

    /// Is the label index actually consulted under the current mode?
    #[inline]
    fn use_index(&self) -> bool {
        self.mode == ExpandMode::Indexed && self.graph.has_label_index()
    }

    /// ε+node-test closure of a set of NFA states at a node.
    fn close_at(&self, node: NodeId, states: &[usize]) -> Vec<usize> {
        self.close_at_nfa(self.nfa, node, states)
    }

    /// ε+node-test closure under an explicit automaton (the searcher's
    /// own NFA or its reversal).
    fn close_at_nfa(&self, nfa: &Nfa, node: NodeId, states: &[usize]) -> Vec<usize> {
        let n = nfa.num_states();
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for &s in states {
            for &c in nfa.closure(s) {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        if nfa.has_node_tests() {
            while let Some(q) = stack.pop() {
                for (sym, to) in nfa.transitions(q) {
                    if let Sym::NodeTest(l) = sym {
                        if self.graph.has_label(node.into(), *l) {
                            for &c in nfa.closure(*to) {
                                if !seen[c] {
                                    seen[c] = true;
                                    stack.push(c);
                                }
                            }
                        }
                    }
                }
            }
        }
        (0..n).filter(|&i| seen[i]).collect()
    }

    /// Apply `f` to every state of the ε+node-test closure of `state` at
    /// `node`. Avoids the closure-vector allocation when the automaton
    /// has no node tests (the common case).
    #[inline]
    fn for_each_closed(&self, nfa: &Nfa, node: NodeId, state: usize, mut f: impl FnMut(usize)) {
        if !nfa.has_node_tests() {
            for &c in nfa.closure(state) {
                f(c);
            }
        } else {
            for c in self.close_at_nfa(nfa, node, &[state]) {
                f(c);
            }
        }
    }

    /// Enumerate every expansion step of `(node, q)` under `nfa`:
    /// `f(cost, next_node, next_state, piece)` is called once per
    /// (graph step × target state). The single place the symbol →
    /// graph-adjacency mapping lives — [`expand`](Self::expand)
    /// materializes walks on top of it, the walk-free searches pass
    /// through [`expand_states`](Self::expand_states) and ignore the
    /// piece.
    fn for_each_step(
        &self,
        nfa: &Nfa,
        node: NodeId,
        q: usize,
        mut f: impl FnMut(f64, NodeId, usize, StepPiece<'a>),
    ) {
        let indexed = self.use_index();
        for (sym, tos) in nfa.grouped_transitions(q) {
            match sym {
                Sym::NodeTest(_) => {} // handled by closure
                Sym::Label(l) => {
                    if indexed {
                        for &(e, dst) in self.graph.out_steps_with_label(node, *l).iter() {
                            for &to in tos {
                                f(1.0, dst, to, StepPiece::Edge(e));
                            }
                        }
                    } else {
                        for &e in self.graph.out_edges(node) {
                            let data = self.graph.edge(e).expect("adjacent edge");
                            if data.attrs.labels.contains(*l) {
                                for &to in tos {
                                    f(1.0, data.dst, to, StepPiece::Edge(e));
                                }
                            }
                        }
                    }
                }
                Sym::LabelInv(l) => {
                    if indexed {
                        for &(e, src) in self.graph.in_steps_with_label(node, *l).iter() {
                            for &to in tos {
                                f(1.0, src, to, StepPiece::Edge(e));
                            }
                        }
                    } else {
                        for &e in self.graph.in_edges(node) {
                            let data = self.graph.edge(e).expect("adjacent edge");
                            if data.attrs.labels.contains(*l) {
                                for &to in tos {
                                    f(1.0, data.src, to, StepPiece::Edge(e));
                                }
                            }
                        }
                    }
                }
                Sym::Wildcard => {
                    // No label to partition on — always adjacency scans.
                    for &e in self.graph.out_edges(node) {
                        let data = self.graph.edge(e).expect("adjacent edge");
                        for &to in tos {
                            f(1.0, data.dst, to, StepPiece::Edge(e));
                        }
                    }
                    for &e in self.graph.in_edges(node) {
                        let data = self.graph.edge(e).expect("adjacent edge");
                        // Self-loops already expanded forwards.
                        if data.src != data.dst {
                            for &to in tos {
                                f(1.0, data.src, to, StepPiece::Edge(e));
                            }
                        }
                    }
                }
                Sym::View(name) => {
                    if let Some(view) = self.views.get(name) {
                        if let Some(idxs) = view.by_src.get(&node) {
                            for &i in idxs {
                                let seg = &view.segments[i];
                                for &to in tos {
                                    f(seg.cost, seg.dst, to, StepPiece::Seg(&seg.walk));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Edge- and view-consuming expansions from `(node, q)`:
    /// `(cost, next_node, next_state, appended walk piece)`.
    fn expand(&self, node: NodeId, q: usize) -> Vec<(f64, NodeId, usize, PathShape)> {
        let mut out = Vec::new();
        self.for_each_step(self.nfa, node, q, |cost, far, to, piece| {
            let shape = match piece {
                StepPiece::Edge(e) => step(node, e, far),
                StepPiece::Seg(walk) => walk.clone(),
            };
            out.push((cost, far, to, shape));
        });
        out
    }

    /// Walk-free expansion: apply `f` to every `(next_node, next_state)`
    /// successor of `(node, q)` under `nfa`, without materializing path
    /// pieces. This is the reachability/cone hot path.
    fn expand_states(&self, nfa: &Nfa, node: NodeId, q: usize, mut f: impl FnMut(NodeId, usize)) {
        self.for_each_step(nfa, node, q, |_, far, to, _| f(far, to));
    }

    /// All product states reachable from `seeds` (already closed) under
    /// `nfa`, walks not materialized.
    ///
    /// Small node-test-free automata (≤ 64 states — virtually every
    /// query regex) use one bitmask of NFA states per node: closure
    /// masks are precomputed per state, so an expansion inserts a whole
    /// closure with two word operations instead of hashing each
    /// `(node, state)` tuple.
    fn product_reach(&self, nfa: &Nfa, seeds: Vec<(NodeId, usize)>) -> StateSet {
        if nfa.num_states() <= 64 && !nfa.has_node_tests() {
            let closure_mask: Vec<u64> = (0..nfa.num_states())
                .map(|s| nfa.closure(s).iter().fold(0u64, |m, &c| m | (1 << c)))
                .collect();
            let mut seen: FxHashMap<NodeId, u64> = FxHashMap::default();
            let mut stack: Vec<(NodeId, usize)> = Vec::new();
            for (v, q) in seeds {
                let e = seen.entry(v).or_insert(0);
                if *e & (1 << q) == 0 {
                    *e |= 1 << q;
                    stack.push((v, q));
                }
            }
            let mut tick = 0u32;
            while let Some((v, q)) = stack.pop() {
                if self.cancel_tick(&mut tick) {
                    break;
                }
                self.expand_states(nfa, v, q, |w, t| {
                    let mask = closure_mask[t];
                    let e = seen.entry(w).or_insert(0);
                    let mut new = mask & !*e;
                    if new != 0 {
                        *e |= new;
                        while new != 0 {
                            let b = new.trailing_zeros() as usize;
                            new &= new - 1;
                            stack.push((w, b));
                        }
                    }
                });
            }
            StateSet::Masks(seen)
        } else {
            let mut seen: FxHashSet<(NodeId, usize)> = FxHashSet::default();
            let mut stack: Vec<(NodeId, usize)> = Vec::new();
            for s in seeds {
                if seen.insert(s) {
                    stack.push(s);
                }
            }
            let mut tick = 0u32;
            while let Some((v, q)) = stack.pop() {
                if self.cancel_tick(&mut tick) {
                    break;
                }
                self.expand_states(nfa, v, q, |w, t| {
                    self.for_each_closed(nfa, w, t, |c| {
                        if seen.insert((w, c)) {
                            stack.push((w, c));
                        }
                    });
                });
            }
            StateSet::Set(seen)
        }
    }

    /// The product states co-reachable to acceptance at one of `targets`
    /// — the backward "cone" the forward search may restrict itself to.
    /// `None` when the NFA is irreversible.
    fn co_reachable_cone(&self, targets: &FxHashSet<NodeId>) -> Option<StateSet> {
        let rev = self.rev_nfa()?;
        let mut seeds = Vec::new();
        for &d in targets {
            if !self.graph.contains_node(d) {
                continue;
            }
            for q in 0..self.nfa.num_states() {
                if self.nfa.accepts(q) {
                    for c in self.close_at_nfa(rev, d, &[q]) {
                        seeds.push((d, c));
                    }
                }
            }
        }
        Some(self.product_reach(rev, seeds))
    }

    /// Up to `k` cheapest accepting walks from `src` to every reachable
    /// destination (or only `targets`, when given). Walks are returned
    /// grouped by destination, cheapest (and lexicographically first)
    /// first.
    ///
    /// When `targets` are given and the NFA is reversible, the search
    /// first computes the backward cone of product states co-reachable to
    /// acceptance at a target and never expands outside it; results are
    /// identical to the unrestricted search filtered to `targets`.
    ///
    /// ```
    /// use gcore::paths::{PathSearcher, ViewMap};
    /// use gcore::regex::Nfa;
    /// use gcore_parser::ast::Regex;
    /// use gcore_ppg::{Attributes, GraphBuilder};
    ///
    /// let mut b = GraphBuilder::standalone();
    /// let a = b.node(Attributes::labeled("Person"));
    /// let c = b.node(Attributes::labeled("Person"));
    /// b.edge(a, c, Attributes::labeled("knows"));
    /// let g = b.build();
    ///
    /// let nfa = Nfa::compile(&Regex::Plus(Box::new(Regex::Label("knows".into()))));
    /// let views = ViewMap::default();
    /// let s = PathSearcher::new(&g, &nfa, &views);
    /// let found = s.k_shortest(a, 1, None);
    /// assert_eq!(found[&c][0].cost, 1.0); // one hop, unit edge costs
    /// assert_eq!(found[&c][0].walk.length(), 1);
    /// ```
    pub fn k_shortest(
        &self,
        src: NodeId,
        k: usize,
        targets: Option<&FxHashSet<NodeId>>,
    ) -> FxHashMap<NodeId, Vec<FoundPath>> {
        let mut results: FxHashMap<NodeId, Vec<FoundPath>> = FxHashMap::default();
        if !self.graph.contains_node(src) || k == 0 {
            return results;
        }
        // Backward cone: with concrete targets and a reversible NFA,
        // restrict the forward search to states that can still reach
        // acceptance at a target. Exact — see the module docs.
        let cone: Option<StateSet> = targets.and_then(|t| self.co_reachable_cone(t));
        let in_cone =
            |node: NodeId, state: usize| cone.as_ref().is_none_or(|c| c.contains(node, state));
        let mut pops: FxHashMap<(NodeId, usize), usize> = FxHashMap::default();

        // Walk-free frontier: a pending entry stores only its parent
        // index and the one piece appended over it, so it costs O(1)
        // regardless of walk length. Full walks are replayed from the
        // parent chain only when a pop is accepted; the lexicographic
        // tie key is materialized only for entries whose cost actually
        // ties the current level (`batch`). Together the two heaps pop
        // in exactly the (cost, sequence, node, state) order the
        // walk-carrying single heap used.
        let mut arena: Vec<TreeEntry<'a>> = Vec::new();
        let mut outer: BinaryHeap<CostOrd> = BinaryHeap::new();
        let mut batch: BinaryHeap<TieOrd> = BinaryHeap::new();
        // Seed: closure of the start state at src; enqueue one entry per
        // closed state so accepting-at-zero-length works.
        for q in self.close_at(src, &[self.nfa.start()]) {
            if !in_cone(src, q) {
                continue;
            }
            arena.push(TreeEntry {
                parent: NO_PARENT,
                piece: TreePiece::Root,
                node: src,
                state: q,
            });
            outer.push(CostOrd {
                cost: 0.0,
                idx: (arena.len() - 1) as u32,
            });
        }
        let mut tick = 0u32;
        'search: while let Some(first) = outer.pop() {
            // Drain one cost level: every pending entry whose cost ties
            // `first` moves into the tie heap before any is processed.
            let level = first.cost;
            batch.push(tie_entry(&arena, first.idx));
            while outer
                .peek()
                .is_some_and(|e| e.cost.total_cmp(&level) == Ordering::Equal)
            {
                let e = outer.pop().expect("peeked non-empty");
                batch.push(tie_entry(&arena, e.idx));
            }
            while let Some(top) = batch.pop() {
                if self.cancel_tick(&mut tick) {
                    break 'search;
                }
                let (node, state) = {
                    let e = &arena[top.idx as usize];
                    (e.node, e.state)
                };
                let count = pops.entry((node, state)).or_insert(0);
                if *count >= k {
                    continue;
                }
                *count += 1;
                // An accepted pop at (v, accepting q) yields a result for
                // v; the same walk may be reported through several states
                // — dedup.
                if self.nfa.accepts(state) && targets.is_none_or(|t| t.contains(&node)) {
                    let bucket = results.entry(node).or_default();
                    if bucket.len() < k {
                        let walk = replay_walk(&arena, top.idx);
                        if !bucket.iter().any(|p| p.walk == walk) {
                            bucket.push(FoundPath { walk, cost: level });
                        }
                    }
                }
                self.for_each_step(self.nfa, node, state, |step_cost, far, to, piece| {
                    // The walk-carrying form rejected (via `concat`) a
                    // view segment that does not begin at the current
                    // node.
                    if let StepPiece::Seg(w) = piece {
                        if w.start() != node {
                            return;
                        }
                    }
                    let tree_piece = match piece {
                        StepPiece::Edge(e) => TreePiece::Edge(e, far),
                        StepPiece::Seg(w) => TreePiece::Seg(w),
                    };
                    let cost = level + step_cost;
                    for q in self.close_at(far, &[to]) {
                        if !in_cone(far, q) {
                            continue;
                        }
                        arena.push(TreeEntry {
                            parent: top.idx,
                            piece: tree_piece,
                            node: far,
                            state: q,
                        });
                        let idx = (arena.len() - 1) as u32;
                        if cost.total_cmp(&level) == Ordering::Equal {
                            // Zero-cost steps join the live level: the
                            // child's sequence strictly extends its
                            // parent's, so it orders after everything
                            // already popped at this cost.
                            batch.push(tie_entry(&arena, idx));
                        } else {
                            outer.push(CostOrd { cost, idx });
                        }
                    }
                });
            }
        }
        for bucket in results.values_mut() {
            bucket.sort_by(|a, b| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| a.walk.interleaved().cmp(&b.walk.interleaved()))
            });
        }
        results
    }

    /// Destinations reachable from `src` via an accepting walk —
    /// the reachability-test semantics of `-/<r>/->` without a variable.
    ///
    /// ```
    /// use gcore::paths::{PathSearcher, ViewMap};
    /// use gcore::regex::Nfa;
    /// use gcore_parser::ast::Regex;
    /// use gcore_ppg::{Attributes, GraphBuilder};
    ///
    /// let mut b = GraphBuilder::standalone();
    /// let a = b.node(Attributes::labeled("Person"));
    /// let c = b.node(Attributes::labeled("Person"));
    /// b.edge(a, c, Attributes::labeled("knows"));
    /// let g = b.build();
    ///
    /// let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))));
    /// let views = ViewMap::default();
    /// let s = PathSearcher::new(&g, &nfa, &views);
    /// assert_eq!(s.reachable(a), vec![a, c]); // knows* reaches a itself too
    /// ```
    pub fn reachable(&self, src: NodeId) -> Vec<NodeId> {
        if !self.graph.contains_node(src) {
            return Vec::new();
        }
        let seeds: Vec<(NodeId, usize)> = self
            .close_at(src, &[self.nfa.start()])
            .into_iter()
            .map(|q| (src, q))
            .collect();
        let seen = self.product_reach(self.nfa, seeds);
        let n = self.nfa.num_states();
        let mut v = seen.nodes_with_state(|q| q < n && self.nfa.accepts(q));
        v.sort_unstable();
        v
    }

    /// Single-pair reachability: is there an accepting walk from `src`
    /// to `dst`? Runs a bidirectional search — two alternating BFS
    /// frontiers, forward over the NFA and backward over its reversal,
    /// stopping at the first product state both sides visit. Falls back
    /// to the unidirectional search when the NFA traverses views (whose
    /// segment relations are not reversible).
    pub fn reachable_pair(&self, src: NodeId, dst: NodeId) -> bool {
        if !self.graph.contains_node(src) || !self.graph.contains_node(dst) {
            return false;
        }
        let Some(rev) = self.rev_nfa() else {
            return self.reachable(src).binary_search(&dst).is_ok();
        };
        let mut seen_f: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut seen_b: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut frontier_f: Vec<(NodeId, usize)> = Vec::new();
        let mut frontier_b: Vec<(NodeId, usize)> = Vec::new();

        // Seed both sides; acceptance can already hold at length zero.
        for q in self.close_at(src, &[self.nfa.start()]) {
            if dst == src && self.nfa.accepts(q) {
                return true;
            }
            if seen_f.insert((src, q)) {
                frontier_f.push((src, q));
            }
        }
        for q in self.close_at_nfa(rev, dst, &[rev.start()]) {
            if seen_f.contains(&(dst, q)) {
                return true; // meet at the seed level
            }
            if seen_b.insert((dst, q)) {
                frontier_b.push((dst, q));
            }
        }

        let mut tick = 0u32;
        loop {
            // An exhausted side has fully explored its reachable set
            // without success — no accepting walk exists. A fired
            // cancellation token also stops here: the caller checks the
            // token and discards the (meaningless) `false`.
            if frontier_f.is_empty() || frontier_b.is_empty() || self.cancelled() {
                return false;
            }
            // Expand the smaller frontier one level.
            if frontier_f.len() <= frontier_b.len() {
                let level = std::mem::take(&mut frontier_f);
                for (v, q) in level {
                    if self.cancel_tick(&mut tick) {
                        return false;
                    }
                    let mut found = false;
                    self.expand_states(self.nfa, v, q, |w, t| {
                        self.for_each_closed(self.nfa, w, t, |c| {
                            if found {
                                return;
                            }
                            if (w == dst && self.nfa.accepts(c)) || seen_b.contains(&(w, c)) {
                                found = true;
                                return;
                            }
                            if seen_f.insert((w, c)) {
                                frontier_f.push((w, c));
                            }
                        });
                    });
                    if found {
                        return true;
                    }
                }
            } else {
                let level = std::mem::take(&mut frontier_b);
                for (v, q) in level {
                    if self.cancel_tick(&mut tick) {
                        return false;
                    }
                    let mut found = false;
                    self.expand_states(rev, v, q, |w, t| {
                        self.for_each_closed(rev, w, t, |c| {
                            if found {
                                return;
                            }
                            if (w == src && rev.accepts(c)) || seen_f.contains(&(w, c)) {
                                found = true;
                                return;
                            }
                            if seen_b.insert((w, c)) {
                                frontier_b.push((w, c));
                            }
                        });
                    });
                    if found {
                        return true;
                    }
                }
            }
        }
    }

    /// Single-pair reachability evaluated backwards: compute the cone of
    /// product states co-reachable to acceptance at `dst` once, then test
    /// whether any closed start state at `src` lies inside it. The planner
    /// picks this over [`reachable_pair`](Self::reachable_pair) when graph
    /// statistics say backward fan-in is far smaller than forward fan-out
    /// (many sources funnelling into a hub destination). Falls back to the
    /// bidirectional search when the NFA is irreversible (it traverses
    /// PATH views). Results are always identical to `reachable_pair`.
    pub fn reachable_pair_reverse(&self, src: NodeId, dst: NodeId) -> bool {
        if !self.graph.contains_node(src) || !self.graph.contains_node(dst) {
            return false;
        }
        let mut targets = FxHashSet::default();
        targets.insert(dst);
        match self.co_reachable_cone(&targets) {
            Some(cone) => self
                .close_at(src, &[self.nfa.start()])
                .into_iter()
                .any(|q| cone.contains(src, q)),
            None => self.reachable_pair(src, dst),
        }
    }

    /// Reachability from many sources at once, sharing one product
    /// exploration: the product digraph is condensed into strongly
    /// connected components (Tarjan), per-component accepting-node sets
    /// are accumulated once in reverse topological order (`Arc`-shared
    /// where a component adds nothing of its own), and each source then
    /// reads its answer off its seed components.
    ///
    /// Returns, per source, exactly [`reachable`](Self::reachable) of
    /// that source (`Arc`-shared: sources whose seed states land in the
    /// same component share one allocation). This is the shared-frontier
    /// strategy the matcher uses for `MATCH (x)-/<r>/->(y)` shapes that
    /// seed many sources.
    pub fn reachable_many(&self, sources: &[NodeId]) -> FxHashMap<NodeId, Arc<Vec<NodeId>>> {
        let nfa = self.nfa;

        // Interned product states.
        let mut ids: FxHashMap<(NodeId, usize), u32> = FxHashMap::default();
        let mut states: Vec<(NodeId, usize)> = Vec::new();
        let intern = |ids: &mut FxHashMap<(NodeId, usize), u32>,
                      states: &mut Vec<(NodeId, usize)>,
                      s: (NodeId, usize)|
         -> u32 {
            *ids.entry(s).or_insert_with(|| {
                states.push(s);
                (states.len() - 1) as u32
            })
        };

        // Seed states per source (deduplicated across sources).
        let mut seeds_of: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
        for &src in sources {
            if seeds_of.contains_key(&src) || !self.graph.contains_node(src) {
                continue;
            }
            let seeds: Vec<u32> = self
                .close_at(src, &[nfa.start()])
                .into_iter()
                .map(|q| intern(&mut ids, &mut states, (src, q)))
                .collect();
            seeds_of.insert(src, seeds);
        }

        // The (sorted, deduplicated) closed successors of one state,
        // interning any product state seen for the first time.
        let successors = |ids: &mut FxHashMap<(NodeId, usize), u32>,
                          states: &mut Vec<(NodeId, usize)>,
                          s: u32|
         -> Vec<u32> {
            let (v, q) = states[s as usize];
            let mut out: Vec<u32> = Vec::new();
            self.expand_states(nfa, v, q, |w, t| {
                self.for_each_closed(nfa, w, t, |c| {
                    out.push(intern(ids, states, (w, c)));
                });
            });
            out.sort_unstable();
            out.dedup();
            out
        };

        // Iterative Tarjan over the implicit product digraph.
        let mut ts = Tarjan::default();
        struct Frame {
            v: u32,
            next: usize,
        }
        let mut frames: Vec<Frame> = Vec::new();
        let mut tick = 0u32;
        let roots: Vec<u32> = seeds_of.values().flatten().copied().collect();
        for root in roots {
            ts.grow(states.len());
            if ts.index[root as usize] != Tarjan::UNDEF {
                continue;
            }
            let sv = successors(&mut ids, &mut states, root);
            ts.open(root, sv, states.len());
            frames.push(Frame { v: root, next: 0 });

            while let Some(fr) = frames.last_mut() {
                // A half-run Tarjan leaves components undefined, so a
                // cancelled search abandons everything: empty map out,
                // the caller raises the error off the token.
                if self.cancel_tick(&mut tick) {
                    return FxHashMap::default();
                }
                let v = fr.v as usize;
                if fr.next < ts.succs[v].len() {
                    let w = ts.succs[v][fr.next] as usize;
                    fr.next += 1;
                    if ts.index[w] == Tarjan::UNDEF {
                        let sw = successors(&mut ids, &mut states, w as u32);
                        ts.open(w as u32, sw, states.len());
                        frames.push(Frame {
                            v: w as u32,
                            next: 0,
                        });
                    } else if ts.on_stack[w] {
                        ts.lowlink[v] = ts.lowlink[v].min(ts.index[w]);
                    }
                } else {
                    let fin = frames.pop().expect("frame present").v;
                    ts.close(fin, frames.last().map(|f| f.v));
                }
            }
        }

        // Per-component accepting nodes, then the condensation DAG.
        // Component ids increase with completion order, so every
        // successor component of `c` has an id `< c` and one ascending
        // pass accumulates full destination sets.
        let ncomp = ts.comp_count as usize;
        let comp = &ts.comp;
        let mut own: Vec<Vec<NodeId>> = vec![Vec::new(); ncomp];
        for (s, &(v, q)) in states.iter().enumerate() {
            if comp[s] != Tarjan::UNDEF && nfa.accepts(q) {
                own[comp[s] as usize].push(v);
            }
        }
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        for s in 0..states.len() {
            if comp[s] == Tarjan::UNDEF {
                continue;
            }
            for &w in &ts.succs[s] {
                if comp[w as usize] != comp[s] {
                    children[comp[s] as usize].push(comp[w as usize]);
                }
            }
        }
        let mut sets: Vec<Arc<Vec<NodeId>>> = Vec::with_capacity(ncomp);
        for c in 0..ncomp {
            children[c].sort_unstable();
            children[c].dedup();
            let own_c = &mut own[c];
            if own_c.is_empty() && children[c].len() == 1 {
                // Nothing of this component's own — share the child set.
                sets.push(sets[children[c][0] as usize].clone());
                continue;
            }
            let mut merged: Vec<NodeId> = std::mem::take(own_c);
            for &ch in &children[c] {
                merged.extend_from_slice(&sets[ch as usize]);
            }
            merged.sort_unstable();
            merged.dedup();
            sets.push(Arc::new(merged));
        }

        // Answer per source: union over its seed components.
        let mut out: FxHashMap<NodeId, Arc<Vec<NodeId>>> = FxHashMap::default();
        for (&src, seeds) in &seeds_of {
            let mut comps: Vec<u32> = seeds.iter().map(|&s| comp[s as usize]).collect();
            comps.sort_unstable();
            comps.dedup();
            let set: Arc<Vec<NodeId>> = match comps.as_slice() {
                [c] => sets[*c as usize].clone(),
                cs => {
                    let mut v = Vec::new();
                    for &c in cs {
                        v.extend_from_slice(&sets[c as usize]);
                    }
                    v.sort_unstable();
                    v.dedup();
                    Arc::new(v)
                }
            };
            out.insert(src, set);
        }
        // Sources that are not graph nodes reach nothing.
        for &src in sources {
            out.entry(src).or_default();
        }
        out
    }

    /// The ALL-paths graph projection between `src` and `dst`: every node
    /// and edge on some accepting walk. `None` when no such walk exists.
    ///
    /// Built from the explicit product digraph: forward-reachable states
    /// ∩ backward-reachable-from-acceptance states select the product
    /// edges whose underlying graph elements are projected.
    ///
    /// ```
    /// use gcore::paths::{PathSearcher, ViewMap};
    /// use gcore::regex::Nfa;
    /// use gcore_parser::ast::Regex;
    /// use gcore_ppg::{Attributes, GraphBuilder};
    ///
    /// let mut b = GraphBuilder::standalone();
    /// let a = b.node(Attributes::labeled("Person"));
    /// let c = b.node(Attributes::labeled("Person"));
    /// let e = b.edge(a, c, Attributes::labeled("knows"));
    /// let g = b.build();
    ///
    /// let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))));
    /// let views = ViewMap::default();
    /// let s = PathSearcher::new(&g, &nfa, &views);
    /// let (nodes, edges) = s.all_paths_projection(a, c).unwrap();
    /// assert_eq!((nodes, edges), (vec![a, c], vec![e])); // the one walk
    /// assert!(s.all_paths_projection(c, a).is_none());   // no backward walk
    /// ```
    pub fn all_paths_projection(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> Option<(Vec<NodeId>, Vec<EdgeId>)> {
        if !self.graph.contains_node(src) || !self.graph.contains_node(dst) {
            return None;
        }
        // Forward exploration, recording product edges.
        #[derive(Clone)]
        struct PEdge {
            from: (NodeId, usize),
            to: (NodeId, usize),
            piece: PathShape,
        }
        let mut edges: Vec<PEdge> = Vec::new();
        let mut fwd: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for q in self.close_at(src, &[self.nfa.start()]) {
            if fwd.insert((src, q)) {
                stack.push((src, q));
            }
        }
        let mut tick = 0u32;
        while let Some((v, q)) = stack.pop() {
            if self.cancel_tick(&mut tick) {
                return None;
            }
            for (_, next_node, next_state, piece) in self.expand(v, q) {
                for c in self.close_at(next_node, &[next_state]) {
                    edges.push(PEdge {
                        from: (v, q),
                        to: (next_node, c),
                        piece: piece.clone(),
                    });
                    if fwd.insert((next_node, c)) {
                        stack.push((next_node, c));
                    }
                }
            }
        }
        // Backward reachability from accepting states at dst.
        let mut incoming: FxHashMap<(NodeId, usize), Vec<usize>> = FxHashMap::default();
        for (i, e) in edges.iter().enumerate() {
            incoming.entry(e.to).or_default().push(i);
        }
        let mut bwd: FxHashSet<(NodeId, usize)> = FxHashSet::default();
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for &(v, q) in fwd.iter() {
            if v == dst && self.nfa.accepts(q) && bwd.insert((v, q)) {
                stack.push((v, q));
            }
        }
        if bwd.is_empty() {
            return None;
        }
        while let Some(state) = stack.pop() {
            if let Some(idxs) = incoming.get(&state) {
                for &i in idxs {
                    let from = edges[i].from;
                    if bwd.insert(from) {
                        stack.push(from);
                    }
                }
            }
        }
        // Project elements of product edges on accepting walks.
        let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
        let mut eids: FxHashSet<EdgeId> = FxHashSet::default();
        nodes.insert(src);
        nodes.insert(dst);
        for e in &edges {
            if fwd.contains(&e.from) && bwd.contains(&e.to) && bwd.contains(&e.from) {
                for &n in e.piece.nodes() {
                    nodes.insert(n);
                }
                for &id in e.piece.edges() {
                    eids.insert(id);
                }
            }
        }
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        let mut eids: Vec<EdgeId> = eids.into_iter().collect();
        eids.sort_unstable();
        Some((nodes, eids))
    }
}

fn step(from: NodeId, e: EdgeId, to: NodeId) -> PathShape {
    PathShape::new(vec![from, to], vec![e]).expect("two nodes, one edge")
}

/// One node of the walk-free k-shortest search tree: a parent pointer
/// plus the single piece appended over the parent's walk. O(1) memory
/// per pending entry regardless of walk length; full walks are replayed
/// from the chain only on acceptance ([`replay_walk`]).
struct TreeEntry<'v> {
    parent: u32,
    piece: TreePiece<'v>,
    node: NodeId,
    state: usize,
}

/// The walk piece a [`TreeEntry`] appends to its parent.
#[derive(Clone, Copy)]
enum TreePiece<'v> {
    /// A seed entry — the trivial walk at the source node.
    Root,
    /// One graph edge, traversed to the recorded far endpoint.
    Edge(EdgeId, NodeId),
    /// A stored PATH-view segment (borrowed from the view map).
    Seg(&'v PathShape),
}

/// Parent index marking a search-tree root.
const NO_PARENT: u32 = u32::MAX;

/// Outer-heap entry for `k_shortest`: min-orders pending entries by cost
/// alone. Same-cost entries re-order through the tie heap before any is
/// processed, so the arena-index tiebreak here only makes the order
/// total — it is never observable.
struct CostOrd {
    cost: f64,
    idx: u32,
}

impl PartialEq for CostOrd {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CostOrd {}
impl PartialOrd for CostOrd {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CostOrd {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Tie-heap entry: min-orders one cost level by the same (interleaved
/// sequence, node, state) key the walk-carrying search used, so pops
/// within a level reproduce its order exactly.
struct TieOrd {
    seq: Vec<u64>,
    node: NodeId,
    state: usize,
    idx: u32,
}

impl TieOrd {
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.seq
            .cmp(&other.seq)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.state.cmp(&other.state))
    }
}

impl PartialEq for TieOrd {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}
impl Eq for TieOrd {}
impl PartialOrd for TieOrd {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TieOrd {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap.
        other.key_cmp(self)
    }
}

/// The root-to-entry chain of arena indices for one search-tree entry.
fn chain_of(arena: &[TreeEntry<'_>], idx: u32) -> Vec<u32> {
    let mut chain: Vec<u32> = Vec::new();
    let mut i = idx;
    loop {
        chain.push(i);
        let p = arena[i as usize].parent;
        if p == NO_PARENT {
            break;
        }
        i = p;
    }
    chain.reverse();
    chain
}

/// Materialize the lexicographic tie key (the walk's interleaved id
/// sequence) for one arena entry by replaying its parent chain.
fn tie_entry(arena: &[TreeEntry<'_>], idx: u32) -> TieOrd {
    let chain = chain_of(arena, idx);
    let mut seq: Vec<u64> = vec![arena[chain[0] as usize].node.raw()];
    for &ci in &chain[1..] {
        match arena[ci as usize].piece {
            TreePiece::Root => {}
            TreePiece::Edge(e, far) => {
                seq.push(e.raw());
                seq.push(far.raw());
            }
            TreePiece::Seg(w) => seq.extend_from_slice(&w.interleaved()[1..]),
        }
    }
    let e = &arena[idx as usize];
    TieOrd {
        seq,
        node: e.node,
        state: e.state,
        idx,
    }
}

/// Replay the full walk of one accepted arena entry from its chain.
fn replay_walk(arena: &[TreeEntry<'_>], idx: u32) -> PathShape {
    let chain = chain_of(arena, idx);
    let mut walk = PathShape::trivial(arena[chain[0] as usize].node);
    for &ci in &chain[1..] {
        let piece = match arena[ci as usize].piece {
            TreePiece::Root => continue,
            TreePiece::Edge(e, far) => step(walk.end(), e, far),
            TreePiece::Seg(w) => w.clone(),
        };
        walk = walk
            .concat(&piece)
            .expect("chained pieces meet by construction");
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_parser::ast::Regex;
    use gcore_ppg::Attributes;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    /// A small knows-chain: 1→2→3→4, plus a shortcut 1→3 labeled likes,
    /// and a reverse edge 3→2.
    fn chain() -> PathPropertyGraph {
        let mut g = PathPropertyGraph::new();
        for i in 1..=4 {
            g.add_node(n(i), Attributes::labeled("Person"));
        }
        g.add_edge(EdgeId(10), n(1), n(2), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(11), n(2), n(3), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(12), n(3), n(4), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(13), n(1), n(3), Attributes::labeled("likes"))
            .unwrap();
        g.add_edge(EdgeId(14), n(3), n(2), Attributes::labeled("knows"))
            .unwrap();
        g
    }

    fn knows_star() -> Nfa {
        Nfa::compile(&Regex::Star(Box::new(Regex::Label("knows".into()))))
    }

    #[test]
    fn shortest_path_unit_costs() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(1), 1, None);
        // 1 reaches 1 (length 0), 2, 3, 4 over knows*
        assert_eq!(found[&n(1)][0].cost, 0.0);
        assert_eq!(found[&n(2)][0].cost, 1.0);
        assert_eq!(found[&n(3)][0].cost, 2.0);
        assert_eq!(found[&n(4)][0].cost, 3.0);
        // canonical path to 3 goes through edge 10, 11
        assert_eq!(found[&n(3)][0].walk.interleaved(), vec![1, 10, 2, 11, 3]);
    }

    #[test]
    fn k_shortest_finds_alternatives() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(1), 3, None);
        // Walks to node 2: [1,10,2] (len 1), [1,10,2,11,3,14,2] (len 3), …
        let to2 = &found[&n(2)];
        assert!(to2.len() >= 2);
        assert_eq!(to2[0].cost, 1.0);
        assert!(to2[1].cost > to2[0].cost);
        // all distinct
        for i in 1..to2.len() {
            assert_ne!(to2[i - 1].walk, to2[i].walk);
        }
    }

    #[test]
    fn reachability_matches_shortest_domains() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        assert_eq!(s.reachable(n(1)), vec![n(1), n(2), n(3), n(4)]);
        assert_eq!(s.reachable(n(4)), vec![n(4)]);
    }

    #[test]
    fn targets_restrict_results() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let mut t = FxHashSet::default();
        t.insert(n(4));
        let found = s.k_shortest(n(1), 1, Some(&t));
        assert_eq!(found.len(), 1);
        assert!(found.contains_key(&n(4)));
    }

    #[test]
    fn inverse_labels_travel_backwards() {
        let g = chain();
        // (:knows-)* from node 4 reaches 3, 2, 1
        let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::LabelInv("knows".into()))));
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let r = s.reachable(n(4));
        assert!(r.contains(&n(1)) && r.contains(&n(2)) && r.contains(&n(3)));
    }

    #[test]
    fn all_paths_projection_contains_both_routes() {
        let mut g = chain();
        // add a second knows route 1→5→3
        g.add_node(n(5), Attributes::labeled("Person"));
        g.add_edge(EdgeId(15), n(1), n(5), Attributes::labeled("knows"))
            .unwrap();
        g.add_edge(EdgeId(16), n(5), n(3), Attributes::labeled("knows"))
            .unwrap();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let (nodes, edges) = s.all_paths_projection(n(1), n(3)).unwrap();
        assert!(nodes.contains(&n(2)) && nodes.contains(&n(5)));
        assert!(edges.contains(&EdgeId(10)) && edges.contains(&EdgeId(15)));
        // likes edge 13 not on any knows* walk
        assert!(!edges.contains(&EdgeId(13)));
        // unreachable pair
        assert!(s.all_paths_projection(n(4), n(1)).is_none());
    }

    #[test]
    fn weighted_view_segments_drive_dijkstra() {
        let g = chain();
        // view with custom costs: each knows edge as a segment; edge 10
        // expensive, alternative route cheap… here: make 1→2 cost 10,
        // 1→3 (via likes? no): segments 1→2 (10), 2→3 (1), 1→3 (2).
        let segs = vec![
            Segment {
                src: n(1),
                dst: n(2),
                cost: 10.0,
                walk: step(n(1), EdgeId(10), n(2)),
            },
            Segment {
                src: n(2),
                dst: n(3),
                cost: 1.0,
                walk: step(n(2), EdgeId(11), n(3)),
            },
            Segment {
                src: n(1),
                dst: n(3),
                cost: 2.0,
                walk: step(n(1), EdgeId(13), n(3)),
            },
        ];
        let mut views = ViewMap::default();
        views.insert("v".into(), ViewSegments::new(segs, true));
        let nfa = Nfa::compile(&Regex::Star(Box::new(Regex::View("v".into()))));
        let s = PathSearcher::new(&g, &nfa, &views);
        assert!(s.weighted);
        let found = s.k_shortest(n(1), 1, None);
        // cheapest to 3 is the direct cost-2 segment, not 10+1
        assert_eq!(found[&n(3)][0].cost, 2.0);
        assert_eq!(found[&n(3)][0].walk.interleaved(), vec![1, 13, 3]);
    }

    #[test]
    fn zero_length_paths_accepted_by_star() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(2), 1, None);
        let self_path = &found[&n(2)][0];
        assert_eq!(self_path.cost, 0.0);
        assert_eq!(self_path.walk.length(), 0);
    }

    #[test]
    fn indexed_and_scan_expansion_agree() {
        let mut g = chain();
        g.build_label_index();
        let nfa = knows_star();
        let views = ViewMap::default();
        let indexed = PathSearcher::new(&g, &nfa, &views);
        let scan = PathSearcher::new(&g, &nfa, &views).with_expansion(ExpandMode::Scan);
        for src in 1..=4 {
            assert_eq!(indexed.reachable(n(src)), scan.reachable(n(src)));
            let a = indexed.k_shortest(n(src), 3, None);
            let b = scan.k_shortest(n(src), 3, None);
            assert_eq!(a.len(), b.len());
            for (dst, paths) in &a {
                let other = &b[dst];
                assert_eq!(paths.len(), other.len());
                for (x, y) in paths.iter().zip(other) {
                    assert_eq!(x.walk, y.walk);
                    assert_eq!(x.cost, y.cost);
                }
            }
        }
    }

    #[test]
    fn bidirectional_pair_matches_unidirectional() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        for src in 1..=4 {
            let reach = s.reachable(n(src));
            for dst in 1..=4 {
                assert_eq!(
                    s.reachable_pair(n(src), n(dst)),
                    reach.contains(&n(dst)),
                    "pair ({src}, {dst})"
                );
            }
        }
        // Absent endpoints are unreachable.
        assert!(!s.reachable_pair(n(1), n(99)));
        assert!(!s.reachable_pair(n(99), n(1)));
    }

    #[test]
    fn shared_frontier_matches_per_source_search() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let sources: Vec<NodeId> = (1..=4).map(n).collect();
        let many = s.reachable_many(&sources);
        for &src in &sources {
            assert_eq!(*many[&src], s.reachable(src), "source {src}");
        }
        // A source outside the graph reaches nothing.
        let many = s.reachable_many(&[n(1), n(99)]);
        assert!(many[&n(99)].is_empty());
    }

    #[test]
    fn cone_pruned_targets_match_unrestricted_search() {
        let g = chain();
        let nfa = knows_star();
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let all = s.k_shortest(n(1), 3, None);
        for dst in 1..=4 {
            let mut t = FxHashSet::default();
            t.insert(n(dst));
            let pruned = s.k_shortest(n(1), 3, Some(&t));
            assert_eq!(pruned.len(), 1);
            let (a, b) = (&all[&n(dst)], &pruned[&n(dst)]);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.walk, y.walk, "canonical walks to {dst}");
                assert_eq!(x.cost, y.cost);
            }
        }
    }

    #[test]
    fn node_tests_filter_intermediate_nodes() {
        let mut g = PathPropertyGraph::new();
        g.add_node(n(1), Attributes::labeled("A"));
        g.add_node(n(2), Attributes::labeled("Blocked"));
        g.add_node(n(3), Attributes::labeled("Open"));
        g.add_node(n(4), Attributes::labeled("A"));
        g.add_edge(EdgeId(10), n(1), n(2), Attributes::labeled("r"))
            .unwrap();
        g.add_edge(EdgeId(11), n(2), n(4), Attributes::labeled("r"))
            .unwrap();
        g.add_edge(EdgeId(12), n(1), n(3), Attributes::labeled("r"))
            .unwrap();
        g.add_edge(EdgeId(13), n(3), n(4), Attributes::labeled("r"))
            .unwrap();
        // :r !Open :r — middle node must be Open
        let re = Regex::Concat(vec![
            Regex::Label("r".into()),
            Regex::NodeTest("Open".into()),
            Regex::Label("r".into()),
        ]);
        let nfa = Nfa::compile(&re);
        let views = ViewMap::default();
        let s = PathSearcher::new(&g, &nfa, &views);
        let found = s.k_shortest(n(1), 1, None);
        assert_eq!(found[&n(4)][0].walk.interleaved(), vec![1, 12, 3, 13, 4]);
    }
}
