//! The diagnostics framework behind `gcore-check`.
//!
//! Every static problem the analyzer (or the engine front-end) can find
//! is reported as a [`Diagnostic`]: a stable code (`E0xx` for errors,
//! `W1xx` for warnings), a byte [`Span`] into the query source, a
//! message, and optional notes/help. Analysis is *collect-all*: a single
//! pass over a statement reports every problem at once instead of
//! failing on the first.
//!
//! [`Diagnostic::render`] produces a rustc-style report that underlines
//! the offending source:
//!
//! ```text
//! error[E001]: variable 'n' is used both as a node variable and as an edge variable
//!   --> query:1:26
//!    |
//!  1 | CONSTRUCT (x) MATCH (n)-[n]->(m)
//!    |                          ^
//!    = help: rename one of the two occurrences
//! ```

use gcore_parser::token::Span;
use std::fmt;

/// How bad a diagnostic is. Errors block evaluation; warnings do not.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but legal; evaluation proceeds.
    Warning,
    /// The statement violates a static rule and will not be evaluated.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. `E0xx` are errors, `W1xx` warnings; the
/// numbering is part of the public interface (tests and downstream
/// tooling assert on codes, never on message text).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DiagCode {
    /// E000 — the statement failed to parse at all.
    ParseError,
    /// E001 — one variable used with two different sorts (§A.1 keeps the
    /// node/edge/path/value universes disjoint).
    SortMismatch,
    /// E002 — a variable referenced in an expression is not bound by any
    /// pattern in scope.
    UnboundVariable,
    /// E003 — a variable shared between OPTIONAL blocks is missing from
    /// the enclosing pattern (§3 / \[31\]).
    OptionalSharedVariable,
    /// E004 — an aggregate appears where no grouping context exists
    /// (e.g. in a MATCH WHERE).
    MisplacedAggregate,
    /// E005 — an `ON` / `FROM` names a graph or table the catalog does
    /// not contain.
    UnknownReference,
    /// E006 — a path pattern with inconsistent modifiers: `COST` on an
    /// `ALL` pattern, `ALL`/`k SHORTEST` on a stored-path pattern, a
    /// computed pattern without a regex, or a PATH view without a path
    /// segment.
    InvalidPathPattern,
    /// E007 — one construct variable carries two different GROUP clauses.
    GroupConflict,
    /// E008 — a graph was expected but the body is a SELECT (GRAPH VIEW,
    /// query-head GRAPH, or `ON (subquery)`).
    GraphExpected,
    /// E009 — an `ALL`-path variable escapes graph projection (§3).
    AllPathsEscape,
    /// E010 — a bound edge constructed between different endpoints.
    EdgeEndpointsChanged,
    /// E011 — a bound edge constructed with unbound endpoint variables.
    EdgeEndpointsUnbound,
    /// E012 — a construct path variable not bound by a MATCH path pattern.
    ConstructPathUnbound,
    /// E013 — GROUP on a variable bound by MATCH (§A.3 fixes grouping of
    /// bound elements to their identity).
    GroupOnBoundVariable,
    /// E014 — SET/REMOVE targets a variable that exists nowhere in the
    /// pattern.
    UnknownSetTarget,
    /// E015 — the statement produces the wrong output sort for the API
    /// used (`query_graph` on a SELECT, `query_table` on a graph query).
    WrongOutputSort,
    /// E016 — evaluation was cooperatively cancelled (statement
    /// deadline exceeded or an explicit cancel). Unlike every other
    /// `E` code this is raised *during* evaluation, but it shares the
    /// family because it is a stable, assertable condition: the result
    /// is absent, not wrong.
    Cancelled,
    /// W101 — a variable is bound by MATCH but never used.
    UnusedVariable,
    /// W102 — a PATH-clause variable or SELECT alias shadows a variable
    /// of the enclosing query.
    ShadowedVariable,
    /// W103 — MATCH patterns share no variable and no WHERE predicate
    /// links them: the result is a Cartesian product.
    CartesianProduct,
    /// W104 — a label tested in MATCH exists in no catalog graph.
    UnknownLabel,
    /// W105 — a property key read in MATCH/WHERE exists on no catalog
    /// element.
    UnknownProperty,
    /// W106 — a comparison between literals of incompatible types.
    SuspiciousComparison,
    /// W107 — a WHERE condition that constant-folds to FALSE.
    ContradictoryWhere,
}

impl DiagCode {
    /// The stable textual code, e.g. `"E001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::ParseError => "E000",
            DiagCode::SortMismatch => "E001",
            DiagCode::UnboundVariable => "E002",
            DiagCode::OptionalSharedVariable => "E003",
            DiagCode::MisplacedAggregate => "E004",
            DiagCode::UnknownReference => "E005",
            DiagCode::InvalidPathPattern => "E006",
            DiagCode::GroupConflict => "E007",
            DiagCode::GraphExpected => "E008",
            DiagCode::AllPathsEscape => "E009",
            DiagCode::EdgeEndpointsChanged => "E010",
            DiagCode::EdgeEndpointsUnbound => "E011",
            DiagCode::ConstructPathUnbound => "E012",
            DiagCode::GroupOnBoundVariable => "E013",
            DiagCode::UnknownSetTarget => "E014",
            DiagCode::WrongOutputSort => "E015",
            DiagCode::Cancelled => "E016",
            DiagCode::UnusedVariable => "W101",
            DiagCode::ShadowedVariable => "W102",
            DiagCode::CartesianProduct => "W103",
            DiagCode::UnknownLabel => "W104",
            DiagCode::UnknownProperty => "W105",
            DiagCode::SuspiciousComparison => "W106",
            DiagCode::ContradictoryWhere => "W107",
        }
    }

    /// The severity implied by the code family.
    #[must_use]
    pub fn severity(self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static analyzer.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable code (`E0xx` / `W1xx`).
    pub code: DiagCode,
    /// Severity (derived from the code family).
    pub severity: Severity,
    /// Byte range into the statement source the finding points at. A
    /// zero span means "no precise position" (e.g. a clause synthesized
    /// by desugaring); the renderer then omits the underline.
    pub span: Span,
    /// The primary, single-sentence message.
    pub message: String,
    /// Secondary observations ("first bound here as a node variable").
    pub notes: Vec<String>,
    /// A suggested fix, when one is obvious.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity.
    #[must_use]
    pub fn new(code: DiagCode, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
            help: None,
        }
    }

    /// Attach a secondary note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attach a suggested fix.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Is this an error-severity diagnostic (i.e. does it block
    /// evaluation)?
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render a rustc-style report against the source the statement was
    /// parsed from, underlining the offending span.
    #[must_use]
    pub fn render(&self, src: &str) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        let loc = Location::of(src, self.span);
        let _ = write!(out, "\n  --> query:{}:{}", loc.line, loc.column);
        if !loc.snippet.is_empty() {
            let gutter = loc.line.to_string().len().max(2);
            let _ = write!(out, "\n{:gutter$} |", "");
            let _ = write!(out, "\n{:>gutter$} | {}", loc.line, loc.snippet);
            let _ = write!(
                out,
                "\n{:gutter$} | {:width$}{}",
                "",
                "",
                "^".repeat(loc.underline.max(1)),
                width = loc.column.saturating_sub(1)
            );
        }
        for note in &self.notes {
            let _ = write!(out, "\n  = note: {note}");
        }
        if let Some(help) = &self.help {
            let _ = write!(out, "\n  = help: {help}");
        }
        out
    }
}

/// Render a batch of diagnostics, separated by blank lines, followed by
/// a one-line summary. Returns an empty string for no diagnostics.
#[must_use]
pub fn render_all(diags: &[Diagnostic], src: &str) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    let mut out = diags
        .iter()
        .map(|d| d.render(src))
        .collect::<Vec<_>>()
        .join("\n\n");
    out.push_str("\n\n");
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(format!(
            "{errors} error{}",
            if errors == 1 { "" } else { "s" }
        ));
    }
    if warnings > 0 {
        parts.push(format!(
            "{warnings} warning{}",
            if warnings == 1 { "" } else { "s" }
        ));
    }
    out.push_str(&parts.join(", "));
    out.push_str(" emitted");
    out
}

/// Resolved source position of a span: 1-based line/column, the source
/// line text, and how many columns to underline.
struct Location {
    line: usize,
    column: usize,
    snippet: String,
    underline: usize,
}

impl Location {
    fn of(src: &str, span: Span) -> Location {
        let start = span.start.min(src.len());
        let upto = &src[..start];
        let line = upto.matches('\n').count() + 1;
        let line_start = upto.rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[line_start..]
            .find('\n')
            .map_or(src.len(), |i| line_start + i);
        let snippet = &src[line_start..line_end];
        // Columns are in characters, not bytes, so multi-byte source
        // (string literals) underlines correctly.
        let column = src[line_start..start].chars().count() + 1;
        let end = span.end.clamp(start, line_end);
        let underline = src[start..end].chars().count();
        Location {
            line,
            column,
            snippet: snippet.to_owned(),
            underline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_families_match_severity() {
        for (code, text) in [
            (DiagCode::SortMismatch, "E001"),
            (DiagCode::UnboundVariable, "E002"),
            (DiagCode::UnusedVariable, "W101"),
            (DiagCode::ContradictoryWhere, "W107"),
        ] {
            assert_eq!(code.as_str(), text);
        }
        assert_eq!(DiagCode::SortMismatch.severity(), Severity::Error);
        assert_eq!(DiagCode::CartesianProduct.severity(), Severity::Warning);
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "CONSTRUCT (n) MATCH (n)-[n]->(m)";
        let d = Diagnostic::new(
            DiagCode::SortMismatch,
            Span::new(25, 26),
            "variable 'n' is used both as a node variable and as an edge variable",
        )
        .with_note("first bound as a node variable")
        .with_help("rename one of the two occurrences");
        let r = d.render(src);
        assert!(r.starts_with("error[E001]:"), "{r}");
        assert!(r.contains("--> query:1:26"), "{r}");
        assert!(r.contains(src), "{r}");
        let caret_line = r
            .lines()
            .find(|l| l.trim_start().starts_with('|') && l.contains('^'))
            .expect("caret line");
        assert_eq!(caret_line.find('^'), src.find("[n]").map(|i| i + 6));
        assert!(r.contains("= note: first bound"), "{r}");
        assert!(r.contains("= help: rename"), "{r}");
    }

    #[test]
    fn render_multiline_source_points_at_the_right_line() {
        let src = "CONSTRUCT (n)\nMATCH (n:Person)\nWHERE n.age > 'x'";
        let d = Diagnostic::new(
            DiagCode::SuspiciousComparison,
            Span::new(src.find("n.age").unwrap(), src.find("n.age").unwrap() + 5),
            "comparison between incompatible types",
        );
        let r = d.render(src);
        assert!(r.contains("query:3:7"), "{r}");
        assert!(r.contains("WHERE n.age > 'x'"), "{r}");
    }

    #[test]
    fn render_all_summarizes() {
        let src = "CONSTRUCT (n) MATCH (n)";
        let d1 = Diagnostic::new(DiagCode::UnboundVariable, Span::new(0, 1), "x");
        let d2 = Diagnostic::new(DiagCode::UnusedVariable, Span::new(0, 1), "y");
        let all = render_all(&[d1, d2], src);
        assert!(all.contains("1 error, 1 warning emitted"), "{all}");
        assert_eq!(render_all(&[], src), "");
    }
}
