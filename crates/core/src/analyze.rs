//! Static semantic analysis: variable-sort inference and
//! well-formedness checks, run before evaluation.
//!
//! The paper's formalism keeps node, edge, path and value variables in
//! disjoint universes (N, E, P, V of §A.1) — "when using bound
//! variables in a CONSTRUCT, they must be of the right sort: it would
//! be illegal to use n (a node) in the place of y (an edge)" (§3).
//! Evaluation would surface such confusions as empty joins or runtime
//! sort errors; this pass rejects them up front with a precise
//! [`SemanticError::SortMismatch`].

use crate::error::{Result, SemanticError};
use gcore_parser::ast::{
    Connection, ConstructConnection, ConstructItem, Expr, FullGraphQuery, HeadClause, Location,
    MatchClause, Pattern, Query, QueryBody, QuerySource, Statement,
};
use std::collections::BTreeMap;
use std::fmt;

/// The sort of a variable, inferred from its binding positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Bound at a node position `(x)`.
    Node,
    /// Bound at an edge position `-[e]-`.
    Edge,
    /// Bound at a path position `-/p/-`.
    Path,
    /// Bound to a literal value (`{k = v}` unrolling, `COST c`, FROM
    /// columns).
    Value,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Sort::Node => "a node variable",
            Sort::Edge => "an edge variable",
            Sort::Path => "a path variable",
            Sort::Value => "a value variable",
        })
    }
}

/// Variable sorts in scope, outermost first.
#[derive(Clone, Default, Debug)]
pub struct SortEnv {
    sorts: BTreeMap<String, Sort>,
}

impl SortEnv {
    /// Record (or check) a variable's sort.
    pub fn bind(&mut self, var: &str, sort: Sort) -> Result<()> {
        match self.sorts.get(var) {
            None => {
                self.sorts.insert(var.to_owned(), sort);
                Ok(())
            }
            Some(prev) if *prev == sort => Ok(()),
            Some(prev) => Err(SemanticError::SortMismatch {
                var: var.to_owned(),
                expected: prev.to_string(),
                found: sort.to_string(),
            }
            .into()),
        }
    }

    /// The sort of a variable, if bound.
    pub fn sort(&self, var: &str) -> Option<Sort> {
        self.sorts.get(var).copied()
    }
}

/// Analyze one statement; errors abort evaluation.
pub fn check_statement(stmt: &Statement) -> Result<()> {
    match stmt {
        Statement::Query(q) => check_query(q, &SortEnv::default()),
        Statement::GraphView { query, .. } => check_query(query, &SortEnv::default()),
    }
}

fn check_query(q: &Query, outer: &SortEnv) -> Result<()> {
    let mut env = outer.clone();
    for head in &q.heads {
        match head {
            HeadClause::Path(pc) => {
                // PATH patterns bind their own scope.
                let mut penv = SortEnv::default();
                for p in &pc.patterns {
                    collect_pattern(p, &mut penv)?;
                }
            }
            HeadClause::Graph(gc) => check_query(&gc.query, outer)?,
        }
    }
    match &q.body {
        QueryBody::Graph(fgq) => check_fgq(fgq, &mut env),
        QueryBody::Select(s) => {
            collect_match(&s.match_clause, &mut env)?;
            for item in &s.items {
                check_expr(&item.expr, &env)?;
            }
            Ok(())
        }
    }
}

fn check_fgq(q: &FullGraphQuery, outer: &mut SortEnv) -> Result<()> {
    match q {
        FullGraphQuery::Basic(b) => {
            // Basic queries form the variable scope (§A.3): collect the
            // MATCH sorts, then validate the CONSTRUCT against them.
            let mut env = outer.clone();
            if let QuerySource::Match(m) = &b.source {
                collect_match(m, &mut env)?;
            }
            for item in &b.construct.items {
                let ConstructItem::Pattern(pat) = item else {
                    continue;
                };
                let mut nodes = vec![&pat.start];
                for s in &pat.steps {
                    nodes.push(&s.node);
                }
                for n in nodes {
                    if let Some(v) = &n.var {
                        check_use(&env, v, Sort::Node)?;
                    }
                }
                for s in &pat.steps {
                    match &s.connection {
                        ConstructConnection::Edge(e) => {
                            if let Some(v) = &e.var {
                                check_use(&env, v, Sort::Edge)?;
                            }
                        }
                        ConstructConnection::Path(p) => {
                            check_use(&env, &p.var, Sort::Path)?;
                        }
                    }
                }
                if let Some(w) = &pat.when {
                    check_expr(w, &env)?;
                }
            }
            Ok(())
        }
        FullGraphQuery::SetOp { left, right, .. } => {
            check_fgq(left, outer)?;
            check_fgq(right, outer)
        }
    }
}

/// Using a MATCH-bound variable at a construct position of a different
/// sort is the §3 "illegal to use n in the place of y" error. Unbound
/// variables are fine (they skolemize).
fn check_use(env: &SortEnv, var: &str, required: Sort) -> Result<()> {
    match env.sort(var) {
        None => Ok(()),
        Some(s) if s == required => Ok(()),
        Some(s) => Err(SemanticError::SortMismatch {
            var: var.to_owned(),
            expected: required.to_string(),
            found: s.to_string(),
        }
        .into()),
    }
}

fn collect_match(m: &MatchClause, env: &mut SortEnv) -> Result<()> {
    for lp in &m.patterns {
        collect_pattern(&lp.pattern, env)?;
        if let Some(Location::Subquery(q)) = &lp.on {
            check_query(q, env)?;
        }
    }
    if let Some(w) = &m.where_clause {
        check_expr(w, env)?;
    }
    for opt in &m.optionals {
        for lp in &opt.patterns {
            collect_pattern(&lp.pattern, env)?;
        }
        if let Some(w) = &opt.where_clause {
            check_expr(w, env)?;
        }
    }
    Ok(())
}

fn collect_pattern(p: &Pattern, env: &mut SortEnv) -> Result<()> {
    let node = |n: &gcore_parser::ast::NodePattern, env: &mut SortEnv| -> Result<()> {
        if let Some(v) = &n.var {
            env.bind(v, Sort::Node)?;
        }
        Ok(())
    };
    node(&p.start, env)?;
    for s in &p.steps {
        node(&s.node, env)?;
        match &s.connection {
            Connection::Edge(e) => {
                if let Some(v) = &e.var {
                    env.bind(v, Sort::Edge)?;
                }
            }
            Connection::Path(pp) => {
                if let Some(v) = &pp.var {
                    env.bind(v, Sort::Path)?;
                }
                if let Some(c) = &pp.cost_var {
                    env.bind(c, Sort::Value)?;
                }
            }
        }
    }
    // `{k = v}` binders introduce value variables. They are only
    // *binders* when the name is not a structural variable — matching
    // the matcher's rule.
    for n in p.nodes() {
        for pe in &n.props {
            if let Expr::Var(v) = &pe.value {
                if env.sort(v).is_none() {
                    env.bind(v, Sort::Value)?;
                }
            }
        }
    }
    Ok(())
}

fn check_expr(e: &Expr, env: &SortEnv) -> Result<()> {
    match e {
        Expr::Prop(b, _) | Expr::LabelTest(b, _) | Expr::Unary(_, b) => check_expr(b, env),
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            check_expr(a, env)?;
            check_expr(b, env)
        }
        Expr::Func(_, args) => args.iter().try_for_each(|a| check_expr(a, env)),
        Expr::Aggregate { arg: Some(a), .. } => check_expr(a, env),
        Expr::Aggregate { arg: None, .. } => Ok(()),
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            if let Some(o) = operand {
                check_expr(o, env)?;
            }
            for (c, r) in whens {
                check_expr(c, env)?;
                check_expr(r, env)?;
            }
            if let Some(x) = else_ {
                check_expr(x, env)?;
            }
            Ok(())
        }
        Expr::Exists(q) => check_query(q, env),
        Expr::PatternPredicate(p) => {
            // The predicate's variables must be sort-consistent with the
            // enclosing scope (fresh ones bind locally).
            let mut inner = env.clone();
            collect_pattern(p, &mut inner)
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_parser::parse_statement;

    fn check(text: &str) -> Result<()> {
        check_statement(&parse_statement(text).unwrap())
    }

    #[test]
    fn corpus_style_queries_pass() {
        check("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'").unwrap();
        check(
            "CONSTRUCT (n)-/@p:l {d := c}/->(m) \
             MATCH (n)-/3 SHORTEST p <:knows*> COST c/->(m)",
        )
        .unwrap();
        check(
            "CONSTRUCT (x GROUP e :Company {name := e})<-[y:worksAt]-(n) \
             MATCH (n:Person {employer = e})",
        )
        .unwrap();
    }

    #[test]
    fn node_used_as_edge_rejected() {
        let err = check("CONSTRUCT (a)-[n]->(b) MATCH (n)-[e]->(m), (a), (b)").unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::Semantic(SemanticError::SortMismatch { .. })
        ));
    }

    #[test]
    fn edge_used_as_node_rejected() {
        let err = check("CONSTRUCT (e) MATCH (n)-[e]->(m)").unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::Semantic(SemanticError::SortMismatch { .. })
        ));
    }

    #[test]
    fn path_var_cannot_be_an_edge_in_match() {
        let err = check("CONSTRUCT (n) MATCH (n)-/p <:knows*>/->(m), (x)-[p]->(y)").unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::Semantic(SemanticError::SortMismatch { .. })
        ));
    }

    #[test]
    fn cost_variable_is_a_value() {
        let err = check("CONSTRUCT (c) MATCH (n)-/p <:knows*> COST c/->(m)").unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::Semantic(SemanticError::SortMismatch { .. })
        ));
    }

    #[test]
    fn same_var_in_two_node_positions_is_fine() {
        // Homomorphism: cycles are expressed by repeating variables.
        check("CONSTRUCT (n) MATCH (n)-[e]->(n)").unwrap();
    }

    #[test]
    fn exists_subquery_shares_outer_sorts() {
        let err = check(
            "CONSTRUCT (n) MATCH (n)-[e]->(m) \
             WHERE EXISTS (CONSTRUCT (x) MATCH (x)-[n]->(y))",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::Semantic(SemanticError::SortMismatch { .. })
        ));
    }

    #[test]
    fn unbound_construct_vars_are_unconstrained() {
        check("CONSTRUCT (fresh)-[also_fresh]->(fresh2) MATCH (n)").unwrap();
    }
}
