//! `gcore-check`: multi-pass static analysis over G-CORE statements.
//!
//! The paper's formalism keeps node, edge, path and value variables in
//! disjoint universes (N, E, P, V of §A.1) — "when using bound
//! variables in a CONSTRUCT, they must be of the right sort: it would
//! be illegal to use n (a node) in the place of y (an edge)" (§3).
//! This module rejects such confusions — and a dozen other static
//! problems — *before* evaluation, as [`Diagnostic`]s with stable codes
//! and byte-precise spans.
//!
//! Analysis is **collect-all**: one [`analyze_statement`] call walks the
//! whole statement and reports every finding at once, instead of
//! bailing on the first. Two modes exist:
//!
//! * **structural** (`catalog: None`) — everything derivable from the
//!   AST alone: sort inference (E001), unbound variables (E002), the
//!   OPTIONAL shared-variable rule (E003), misplaced aggregates (E004),
//!   malformed path patterns (E006), GROUP conflicts (E007), graph-
//!   where-SELECT confusions (E008), static CONSTRUCT rules
//!   (E009/E012/E013/E014), plus the unused-variable (W101),
//!   shadowing (W102), Cartesian-product (W103) and constant-
//!   expression (W106/W107) lints. This is the mode
//!   [`check_statement`] uses to gate evaluation.
//! * **catalog-aware** (`catalog: Some(…)`) — additionally resolves
//!   names against a [`CatalogSummary`]: unknown graphs/tables/path
//!   views (E005) and labels or property keys that exist nowhere in
//!   the catalog (W104/W105). This is what
//!   [`Engine::check`](crate::Engine::check) and
//!   [`QueryExecutor::check`](crate::QueryExecutor::check) run.
//!
//! Error-severity diagnostics block evaluation (wrapped in
//! [`SemanticError::Analysis`]); warnings never do.

use crate::diag::{DiagCode, Diagnostic};
use crate::error::{Result, SemanticError};
use gcore_parser::ast::{
    BasicGraphQuery, BinaryOp, Connection, ConstructClause, ConstructItem, ConstructPattern, Expr,
    FullGraphQuery, HeadClause, Ident, Location, MatchClause, PathClause, PathMode, Pattern, Query,
    QueryBody, QuerySource, Regex, RemoveItem, SelectQuery, SetItem, Statement,
};
use gcore_parser::token::Span;
use gcore_ppg::{Catalog, ElementId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// ---------------------------------------------------------------------
// Sorts and scopes
// ---------------------------------------------------------------------

/// The sort of a variable, inferred from its binding positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Bound at a node position `(x)`.
    Node,
    /// Bound at an edge position `-[e]-`.
    Edge,
    /// Bound at a path position `-/p/-`.
    Path,
    /// Bound to a literal value (`{k = v}` unrolling, `COST c`, FROM
    /// columns).
    Value,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Sort::Node => "a node variable",
            Sort::Edge => "an edge variable",
            Sort::Path => "a path variable",
            Sort::Value => "a value variable",
        })
    }
}

/// What the analyzer knows about one bound variable.
#[derive(Clone, Copy, Debug)]
struct VarInfo {
    sort: Sort,
    /// Where the variable was first bound.
    span: Span,
    /// Referenced anywhere after binding (W101).
    used: bool,
    /// Bound by an enclosing query (EXISTS correlation); never warned
    /// about here.
    inherited: bool,
    /// Bound implicitly (FROM table columns); never warned about.
    implicit: bool,
    /// Bound by an `ALL` path pattern (E009 tracking).
    all_path: bool,
}

/// Variables in scope during analysis of one basic query.
#[derive(Clone, Default, Debug)]
struct Scope {
    vars: BTreeMap<String, VarInfo>,
    /// An *open* scope binds unknown variables (a `FROM table` whose
    /// columns we cannot see without a catalog): suppress E002.
    open: bool,
}

impl Scope {
    fn binds(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    fn sort(&self, name: &str) -> Option<Sort> {
        self.vars.get(name).map(|v| v.sort)
    }

    /// A child scope for a correlated subquery: every current binding
    /// is visible but marked inherited.
    fn child(&self) -> Scope {
        let mut c = self.clone();
        for v in c.vars.values_mut() {
            v.inherited = true;
        }
        c
    }

    /// Propagate usage recorded in a child scope back to this one.
    fn absorb_usage(&mut self, child: &Scope) {
        for (name, info) in &child.vars {
            if info.used {
                if let Some(mine) = self.vars.get_mut(name) {
                    mine.used = true;
                }
            }
        }
    }

    fn mark_used(&mut self, name: &str) {
        if let Some(v) = self.vars.get_mut(name) {
            v.used = true;
        }
    }
}

// ---------------------------------------------------------------------
// Catalog summary
// ---------------------------------------------------------------------

/// A cheap, immutable digest of a catalog for name-resolution lints:
/// which graphs and tables exist, and the union of all labels and
/// property keys their elements carry.
#[derive(Clone, Default, Debug)]
pub struct CatalogSummary {
    graphs: BTreeSet<String>,
    tables: BTreeSet<String>,
    table_columns: BTreeMap<String, Vec<String>>,
    labels: BTreeSet<String>,
    keys: BTreeSet<String>,
}

impl CatalogSummary {
    /// Summarize `catalog`: one pass over every element of every graph.
    #[must_use]
    pub fn of(catalog: &Catalog) -> CatalogSummary {
        let mut s = CatalogSummary::default();
        for name in catalog.graph_names() {
            let Ok(graph) = catalog.graph(&name) else {
                continue;
            };
            let ids = graph
                .node_ids()
                .map(ElementId::Node)
                .collect::<Vec<_>>()
                .into_iter()
                .chain(graph.edge_ids().map(ElementId::Edge).collect::<Vec<_>>())
                .chain(graph.path_ids().map(ElementId::Path).collect::<Vec<_>>());
            for id in ids {
                if let Some(attrs) = graph.attributes(id) {
                    s.labels.extend(attrs.labels.iter().map(|l| l.name()));
                    s.keys.extend(attrs.properties.keys().map(|k| k.name()));
                }
            }
            s.graphs.insert(name);
        }
        for name in catalog.table_names() {
            if let Ok(table) = catalog.table(&name) {
                // `MATCH (o) ON table` exposes columns as properties.
                s.keys.extend(table.columns().iter().cloned());
                s.table_columns
                    .insert(name.clone(), table.columns().to_vec());
            }
            s.tables.insert(name);
        }
        s
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Analyze one statement, returning every diagnostic found, ordered by
/// source position. Pass a [`CatalogSummary`] to enable the
/// name-resolution lints (E005, W104, W105); `None` runs the purely
/// structural passes.
#[must_use]
pub fn analyze_statement(stmt: &Statement, catalog: Option<&CatalogSummary>) -> Vec<Diagnostic> {
    analyze_with_extra_graphs(stmt, catalog, &BTreeSet::new())
}

/// Analyze a parsed script. `GRAPH VIEW` names defined by earlier
/// statements count as known graphs for later ones (matching
/// [`Engine::run_script`](crate::Engine::run_script) semantics).
#[must_use]
pub fn analyze_script(stmts: &[Statement], catalog: Option<&CatalogSummary>) -> Vec<Diagnostic> {
    let mut known_views: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for stmt in stmts {
        out.extend(analyze_with_extra_graphs(stmt, catalog, &known_views));
        if let Statement::GraphView { name, .. } = stmt {
            known_views.insert(name.text.clone());
        }
    }
    out
}

fn analyze_with_extra_graphs(
    stmt: &Statement,
    catalog: Option<&CatalogSummary>,
    extra_graphs: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    let mut a = Analyzer {
        diags: Vec::new(),
        catalog,
        graph_scope: extra_graphs.iter().cloned().collect(),
        views: Vec::new(),
        // A statement that reads a script-defined view works against a
        // schema the catalog cannot know (the view may compute labels
        // and properties) — schema lints would be guesses there.
        lint_schema: !references_any(stmt, extra_graphs),
    };
    a.statement(stmt);
    a.diags.sort_by(|x, y| {
        (x.span.start, x.span.end, x.code.as_str()).cmp(&(
            y.span.start,
            y.span.end,
            y.code.as_str(),
        ))
    });
    a.diags
}

/// Convert a parse failure into its `E000` diagnostic, so `check`
/// callers get a uniform report for arbitrary input.
#[must_use]
pub fn parse_diagnostic(e: &gcore_parser::ParseError) -> Diagnostic {
    // ParseError's own Display appends position and snippet lines; the
    // diagnostic renderer re-derives those from the span.
    let full = e.to_string();
    let message = full
        .lines()
        .next()
        .and_then(|l| l.split(" at line ").next())
        .unwrap_or("syntax error")
        .to_owned();
    Diagnostic::new(DiagCode::ParseError, e.span, message)
}

/// The evaluation gate: run the structural passes and reject the
/// statement if any error-severity diagnostic was found.
pub fn check_statement(stmt: &Statement) -> Result<()> {
    let diags = analyze_statement(stmt, None);
    if diags.iter().any(Diagnostic::is_error) {
        return Err(SemanticError::Analysis(diags).into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------

struct Analyzer<'a> {
    diags: Vec<Diagnostic>,
    catalog: Option<&'a CatalogSummary>,
    /// Graph names defined by query-local `GRAPH … AS` heads or earlier
    /// `GRAPH VIEW` statements of the same script.
    graph_scope: Vec<String>,
    /// Path-view names currently in scope (PATH heads of enclosing
    /// queries).
    views: Vec<String>,
    /// Run the label/property schema lints (W104/W105)? Off when the
    /// statement reads script-defined views with unknowable schemas.
    lint_schema: bool,
}

impl Analyzer<'_> {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    // -- statements ----------------------------------------------------

    fn statement(&mut self, stmt: &Statement) {
        let mut root = Scope::default();
        match stmt {
            Statement::Query(q) => self.query(q, &mut root),
            Statement::GraphView { name, query } => {
                if matches!(query.body, QueryBody::Select(_)) {
                    self.push(Diagnostic::new(
                        DiagCode::GraphExpected,
                        name.span.span(),
                        format!("GRAPH VIEW {name} AS (…) must be a graph query, not SELECT"),
                    ));
                }
                self.query(query, &mut root);
            }
        }
    }

    fn query(&mut self, q: &Query, outer: &mut Scope) {
        let views_before = self.views.len();
        let graphs_before = self.graph_scope.len();
        // Heads first: later heads and the body see earlier definitions.
        let body_vars = body_structural_names(&q.body);
        for head in &q.heads {
            match head {
                HeadClause::Path(pc) => {
                    self.path_clause(pc, &body_vars);
                    self.views.push(pc.name.text.clone());
                }
                HeadClause::Graph(gc) => {
                    if matches!(gc.query.body, QueryBody::Select(_)) {
                        self.push(Diagnostic::new(
                            DiagCode::GraphExpected,
                            gc.name.span.span(),
                            format!("GRAPH {} AS (…) must be a graph query, not SELECT", gc.name),
                        ));
                    }
                    let mut sub = Scope::default();
                    self.query(&gc.query, &mut sub);
                    self.graph_scope.push(gc.name.text.clone());
                }
            }
        }
        match &q.body {
            QueryBody::Graph(f) => self.fgq(f, outer),
            QueryBody::Select(s) => self.select(s, outer),
        }
        self.views.truncate(views_before);
        self.graph_scope.truncate(graphs_before);
    }

    fn fgq(&mut self, f: &FullGraphQuery, outer: &mut Scope) {
        match f {
            FullGraphQuery::Basic(b) => self.basic(b, outer),
            FullGraphQuery::SetOp { left, right, .. } => {
                self.fgq(left, outer);
                self.fgq(right, outer);
            }
        }
    }

    fn basic(&mut self, b: &BasicGraphQuery, outer: &mut Scope) {
        let mut scope = outer.child();
        match &b.source {
            QuerySource::Match(m) => self.match_clause(m, &mut scope),
            QuerySource::From(table) => self.table_source(table, &mut scope),
        }
        self.construct(&b.construct, &mut scope);
        self.warn_unused(&scope);
        outer.absorb_usage(&scope);
    }

    fn table_source(&mut self, table: &Ident, scope: &mut Scope) {
        match self.catalog {
            None => scope.open = true,
            Some(c) => {
                if let Some(cols) = c.table_columns.get(table.as_str()) {
                    for col in cols {
                        scope.vars.entry(col.clone()).or_insert(VarInfo {
                            sort: Sort::Value,
                            span: table.span.span(),
                            used: true,
                            inherited: false,
                            implicit: true,
                            all_path: false,
                        });
                    }
                } else {
                    self.push(
                        Diagnostic::new(
                            DiagCode::UnknownReference,
                            table.span.span(),
                            format!("FROM references unknown table '{table}'"),
                        )
                        .with_note("the catalog has no table of this name"),
                    );
                    scope.open = true;
                }
            }
        }
    }

    // -- MATCH ---------------------------------------------------------

    fn match_clause(&mut self, m: &MatchClause, scope: &mut Scope) {
        // Pass 1: structural bindings of every pattern (main and
        // OPTIONAL) come first, so `{k = v}` entries naming a
        // structural variable filter instead of binding.
        for lp in &m.patterns {
            self.bind_pattern_structure(&lp.pattern, scope);
            self.check_location(&lp.on);
        }
        for opt in &m.optionals {
            for lp in &opt.patterns {
                self.bind_pattern_structure(&lp.pattern, scope);
                self.check_location(&lp.on);
            }
        }
        // Pass 2: property entries — `{k = v}` binds v as a value
        // variable iff v is not already bound.
        for lp in &m.patterns {
            self.pattern_props(&lp.pattern, scope);
        }
        for opt in &m.optionals {
            for lp in &opt.patterns {
                self.pattern_props(&lp.pattern, scope);
            }
        }
        // Pass 3: WHERE conditions (aggregates are not allowed here —
        // there is no grouping context, E004).
        if let Some(w) = &m.where_clause {
            self.where_clause(w, m.where_span.span(), scope);
        }
        for opt in &m.optionals {
            if let Some(w) = &opt.where_clause {
                self.where_clause(w, opt.where_span.span(), scope);
            }
        }
        // Pass 4: clause-level shape lints.
        self.check_optional_shared(m);
        self.check_cartesian(m);
    }

    fn where_clause(&mut self, w: &Expr, where_span: Span, scope: &mut Scope) {
        self.check_expr(w, scope, false, where_span);
        self.lint_comparisons(w, where_span);
        if fold_bool(w) == Some(false) {
            self.push(
                Diagnostic::new(
                    DiagCode::ContradictoryWhere,
                    w.first_span().unwrap_or(where_span),
                    "WHERE condition is always false",
                )
                .with_note("every binding will be filtered out")
                .with_help("remove the contradictory condition or fix the literal"),
            );
        }
    }

    /// Bind the structural (node/edge/path/cost) variables of a pattern
    /// and run the per-connection path-shape checks (E006).
    fn bind_pattern_structure(&mut self, p: &Pattern, scope: &mut Scope) {
        if let Some(v) = &p.start.var {
            self.bind(scope, v, Sort::Node, false);
        }
        self.lint_labels(&p.start.labels);
        for s in &p.steps {
            match &s.connection {
                Connection::Edge(e) => {
                    if let Some(v) = &e.var {
                        self.bind(scope, v, Sort::Edge, false);
                    }
                    self.lint_labels(&e.labels);
                }
                Connection::Path(pp) => {
                    let all = pp.mode == PathMode::All;
                    if let Some(v) = &pp.var {
                        self.bind(scope, v, Sort::Path, all && !pp.stored);
                    }
                    if let Some(c) = &pp.cost_var {
                        self.bind(scope, c, Sort::Value, false);
                    }
                    self.lint_labels(&pp.labels);
                    self.check_path_pattern(pp);
                    if let Some(r) = &pp.regex {
                        self.check_regex_views(r, pp.span.span());
                    }
                }
            }
            if let Some(v) = &s.node.var {
                self.bind(scope, v, Sort::Node, false);
            }
            self.lint_labels(&s.node.labels);
        }
    }

    /// Property entries of every node/edge in the pattern: binder or
    /// filter, per the matcher's rule.
    fn pattern_props(&mut self, p: &Pattern, scope: &mut Scope) {
        let mut entries = Vec::new();
        for n in p.nodes() {
            entries.extend(&n.props);
        }
        for s in &p.steps {
            if let Connection::Edge(e) = &s.connection {
                entries.extend(&e.props);
            }
        }
        for entry in entries {
            self.lint_key(&entry.key);
            if let Expr::Var(v) = &entry.value {
                if scope.binds(v.as_str()) {
                    scope.mark_used(v.as_str());
                } else {
                    self.bind(scope, v, Sort::Value, false);
                }
            } else {
                self.check_expr(&entry.value, scope, false, entry.key.span.span());
            }
        }
    }

    fn bind(&mut self, scope: &mut Scope, var: &Ident, sort: Sort, all_path: bool) {
        match scope.vars.get_mut(var.as_str()) {
            None => {
                scope.vars.insert(
                    var.text.clone(),
                    VarInfo {
                        sort,
                        span: var.span.span(),
                        used: false,
                        inherited: false,
                        implicit: false,
                        all_path,
                    },
                );
            }
            Some(prev) if prev.sort == sort => {
                // Re-binding at the same sort is a join — both
                // occurrences count as used.
                prev.used = true;
            }
            Some(prev) => {
                let d = Diagnostic::new(
                    DiagCode::SortMismatch,
                    var.span.span(),
                    format!(
                        "variable '{var}' is used both as {} and as {sort}",
                        prev.sort
                    ),
                )
                .with_note(format!("'{var}' was first bound as {}", prev.sort))
                .with_help("rename one of the two occurrences");
                prev.used = true;
                self.push(d);
            }
        }
    }

    /// E006 — path patterns with inconsistent modifiers.
    fn check_path_pattern(&mut self, pp: &gcore_parser::ast::PathPattern) {
        let span = pp.span.span();
        if !pp.stored && pp.regex.is_none() {
            self.push(
                Diagnostic::new(
                    DiagCode::InvalidPathPattern,
                    span,
                    "computed path pattern needs a <regex>",
                )
                .with_note("only stored-path patterns (`-/@p/->`) may omit the regex"),
            );
        }
        if pp.stored && pp.mode != PathMode::Shortest(1) {
            self.push(Diagnostic::new(
                DiagCode::InvalidPathPattern,
                span,
                "ALL / k SHORTEST do not apply to stored-path patterns",
            ));
        }
        if pp.mode == PathMode::All && pp.cost_var.is_some() {
            self.push(
                Diagnostic::new(
                    DiagCode::InvalidPathPattern,
                    span,
                    "COST cannot be bound on ALL path patterns",
                )
                .with_note("ALL enumerates every conforming path; a single cost is undefined"),
            );
        }
    }

    /// E003 — the syntactic restriction of §3 / \[31\]: variables shared
    /// by two OPTIONAL blocks must appear in the enclosing pattern.
    fn check_optional_shared(&mut self, m: &MatchClause) {
        if m.optionals.len() < 2 {
            return;
        }
        let mut main_vars: BTreeMap<String, Span> = BTreeMap::new();
        for lp in &m.patterns {
            pattern_var_spans(&lp.pattern, &mut main_vars);
        }
        let block_vars: Vec<BTreeMap<String, Span>> = m
            .optionals
            .iter()
            .map(|b| {
                let mut vs = BTreeMap::new();
                for lp in &b.patterns {
                    pattern_var_spans(&lp.pattern, &mut vs);
                }
                vs
            })
            .collect();
        let mut reported: BTreeSet<&String> = BTreeSet::new();
        for i in 0..block_vars.len() {
            for j in (i + 1)..block_vars.len() {
                for v in block_vars[i].keys() {
                    if reported.contains(v) || main_vars.contains_key(v) {
                        continue;
                    }
                    if let Some(span) = block_vars[j].get(v) {
                        reported.insert(v);
                        self.push(
                            Diagnostic::new(
                                DiagCode::OptionalSharedVariable,
                                *span,
                                format!(
                                    "variable '{v}' is shared between OPTIONAL blocks but missing \
                                     from the enclosing pattern"
                                ),
                            )
                            .with_note(
                                "the result would depend on the evaluation order of the blocks",
                            )
                            .with_help(format!("bind '{v}' in the main MATCH pattern as well")),
                        );
                    }
                }
            }
        }
    }

    /// W103 — disconnected main patterns produce a Cartesian product.
    fn check_cartesian(&mut self, m: &MatchClause) {
        if m.patterns.len() < 2 {
            return;
        }
        let var_sets: Vec<BTreeMap<String, Span>> = m
            .patterns
            .iter()
            .map(|lp| {
                let mut vs = BTreeMap::new();
                pattern_var_spans(&lp.pattern, &mut vs);
                vs
            })
            .collect();
        // Union-find over pattern indices.
        let mut comp: Vec<usize> = (0..var_sets.len()).collect();
        fn root(comp: &mut [usize], mut i: usize) -> usize {
            while comp[i] != i {
                comp[i] = comp[comp[i]];
                i = comp[i];
            }
            i
        }
        fn join(comp: &mut [usize], a: usize, b: usize) {
            let (ra, rb) = (root(comp, a), root(comp, b));
            comp[ra] = rb;
        }
        for i in 0..var_sets.len() {
            for j in (i + 1)..var_sets.len() {
                if var_sets[i].keys().any(|v| var_sets[j].contains_key(v)) {
                    join(&mut comp, i, j);
                }
            }
        }
        // WHERE conjuncts referencing several components link them too.
        if let Some(w) = &m.where_clause {
            let mut conjuncts = Vec::new();
            split_and(w, &mut conjuncts);
            for c in conjuncts {
                let mut vars = BTreeSet::new();
                expr_vars(c, &mut vars);
                let touched: Vec<usize> = (0..var_sets.len())
                    .filter(|&i| var_sets[i].keys().any(|v| vars.contains(v.as_str())))
                    .collect();
                for pair in touched.windows(2) {
                    join(&mut comp, pair[0], pair[1]);
                }
            }
        }
        let first_root = root(&mut comp, 0);
        for i in 1..var_sets.len() {
            if root(&mut comp, i) != first_root {
                self.push(
                    Diagnostic::new(
                        DiagCode::CartesianProduct,
                        m.patterns[i].pattern.span.span(),
                        "pattern is not connected to the preceding patterns",
                    )
                    .with_note("the result is a Cartesian product of their bindings")
                    .with_help("share a variable between the patterns, or relate them in WHERE"),
                );
                return; // one warning per MATCH is enough
            }
        }
    }

    // -- CONSTRUCT -----------------------------------------------------

    fn construct(&mut self, c: &ConstructClause, scope: &mut Scope) {
        // CONSTRUCT-side expressions (assignments, WHEN, SET) evaluate
        // against the binding table *extended* with the clause's own
        // construct variables — `WHEN e.score > 0` reads a property the
        // clause just computed. Collect them up front.
        let mut escope = scope.clone();
        for item in &c.items {
            if let ConstructItem::Pattern(pat) = item {
                let mut vars: Vec<&Ident> = Vec::new();
                vars.extend(pat.start.var.as_ref());
                for s in &pat.steps {
                    vars.extend(s.node.var.as_ref());
                    match &s.connection {
                        gcore_parser::ast::ConstructConnection::Edge(e) => {
                            vars.extend(e.var.as_ref());
                        }
                        gcore_parser::ast::ConstructConnection::Path(p) => vars.push(&p.var),
                    }
                }
                for v in vars {
                    escope.vars.entry(v.text.clone()).or_insert(VarInfo {
                        sort: Sort::Value,
                        span: v.span.span(),
                        used: true,
                        inherited: false,
                        implicit: true,
                        all_path: false,
                    });
                }
            }
        }
        // GROUP-conflict detection spans the whole clause (E007).
        let mut groups: BTreeMap<String, (&Vec<Expr>, Span)> = BTreeMap::new();
        for item in &c.items {
            match item {
                ConstructItem::GraphName(g) => {
                    if let Some(cat) = self.catalog {
                        if !cat.graphs.contains(g) && !self.graph_scope.iter().any(|x| x == g) {
                            self.push(Diagnostic::new(
                                DiagCode::UnknownReference,
                                Span::default(),
                                format!("CONSTRUCT unions unknown graph '{g}'"),
                            ));
                        }
                    }
                }
                ConstructItem::Pattern(pat) => {
                    self.construct_pattern(pat, scope, &mut escope, &mut groups);
                }
            }
        }
        scope.absorb_usage(&escope);
    }

    fn construct_pattern<'p>(
        &mut self,
        pat: &'p ConstructPattern,
        scope: &mut Scope,
        escope: &mut Scope,
        groups: &mut BTreeMap<String, (&'p Vec<Expr>, Span)>,
    ) {
        // The construct variables of *this* pattern (SET/REMOVE targets
        // must be among them, E014).
        let mut own_vars: BTreeSet<&str> = BTreeSet::new();
        let mut nodes = vec![&pat.start];
        for s in &pat.steps {
            nodes.push(&s.node);
        }
        for n in &nodes {
            if let Some(v) = &n.var {
                own_vars.insert(v.as_str());
                self.check_construct_use(scope, v, Sort::Node);
                self.check_group(scope, v, n.group.as_ref(), groups);
            }
            if let Some(cv) = &n.copy_of {
                scope.mark_used(cv.as_str());
            }
            for g in n.group.iter().flatten() {
                self.check_expr(g, escope, false, pat.span.span());
            }
            for a in &n.assigns {
                self.check_expr(&a.value, escope, true, a.key.span.span());
            }
        }
        for s in &pat.steps {
            match &s.connection {
                gcore_parser::ast::ConstructConnection::Edge(e) => {
                    if let Some(v) = &e.var {
                        own_vars.insert(v.as_str());
                        self.check_construct_use(scope, v, Sort::Edge);
                        self.check_group(scope, v, e.group.as_ref(), groups);
                    }
                    if let Some(cv) = &e.copy_of {
                        scope.mark_used(cv.as_str());
                    }
                    for g in e.group.iter().flatten() {
                        self.check_expr(g, escope, false, pat.span.span());
                    }
                    for a in &e.assigns {
                        self.check_expr(&a.value, escope, true, a.key.span.span());
                    }
                }
                gcore_parser::ast::ConstructConnection::Path(p) => {
                    own_vars.insert(p.var.as_str());
                    match scope.sort(p.var.as_str()) {
                        Some(Sort::Path) => {
                            scope.mark_used(p.var.as_str());
                            let all = scope
                                .vars
                                .get(p.var.as_str())
                                .is_some_and(|i| i.all_path && !i.inherited);
                            if p.stored && all {
                                self.push(
                                    Diagnostic::new(
                                        DiagCode::AllPathsEscape,
                                        p.var.span.span(),
                                        format!(
                                            "ALL-path variable '{}' may only be used for graph \
                                             projection in CONSTRUCT",
                                            p.var
                                        ),
                                    )
                                    .with_note(
                                        "storing every conforming path would be intractable (§3)",
                                    )
                                    .with_help("drop the `@` to project the paths instead"),
                                );
                            }
                        }
                        Some(other) => {
                            scope.mark_used(p.var.as_str());
                            self.push(
                                Diagnostic::new(
                                    DiagCode::SortMismatch,
                                    p.var.span.span(),
                                    format!(
                                        "variable '{}' is used both as {other} and as {}",
                                        p.var,
                                        Sort::Path
                                    ),
                                )
                                .with_note(format!("'{}' was first bound as {other}", p.var)),
                            );
                        }
                        None if scope.open => {}
                        None => {
                            // The variable must be locally bound: outer
                            // bindings are not columns of this query's
                            // binding table.
                            self.push(
                                Diagnostic::new(
                                    DiagCode::ConstructPathUnbound,
                                    p.var.span.span(),
                                    format!(
                                        "construct path variable '{}' must be bound by a path \
                                         pattern in MATCH",
                                        p.var
                                    ),
                                )
                                .with_help(format!(
                                    "add a `-/{}  <…>/->` path pattern to the MATCH clause",
                                    p.var
                                )),
                            );
                        }
                    }
                    for a in &p.assigns {
                        self.check_expr(&a.value, escope, true, a.key.span.span());
                    }
                }
            }
        }
        if let Some(w) = &pat.when {
            self.check_expr(w, escope, true, pat.span.span());
        }
        for set in &pat.sets {
            let (var, value) = match set {
                SetItem::Prop { var, value, .. } => (var, Some(value)),
                SetItem::Label { var, .. } => (var, None),
                SetItem::Copy { var, from } => {
                    scope.mark_used(from.as_str());
                    (var, None)
                }
            };
            self.check_set_target(var, &own_vars);
            if let Some(v) = value {
                self.check_expr(v, escope, true, var.span.span());
            }
        }
        for rem in &pat.removes {
            let var = match rem {
                RemoveItem::Prop { var, .. } | RemoveItem::Label { var, .. } => var,
            };
            self.check_set_target(var, &own_vars);
        }
    }

    /// E014 — SET/REMOVE must target a construct variable of the
    /// pattern they trail.
    fn check_set_target(&mut self, var: &Ident, own_vars: &BTreeSet<&str>) {
        if !own_vars.contains(var.as_str()) {
            self.push(
                Diagnostic::new(
                    DiagCode::UnknownSetTarget,
                    var.span.span(),
                    format!(
                        "SET/REMOVE references '{var}', which is not a construct variable of \
                         this pattern"
                    ),
                )
                .with_help("SET and REMOVE apply to the pattern they follow"),
            );
        }
    }

    /// Using a MATCH-bound variable at a construct position of a
    /// different sort is the §3 "illegal to use n in the place of y"
    /// error. Unbound variables are fine (they skolemize).
    fn check_construct_use(&mut self, scope: &mut Scope, var: &Ident, required: Sort) {
        match scope.sort(var.as_str()) {
            None => {}
            Some(s) if s == required => scope.mark_used(var.as_str()),
            Some(s) => {
                scope.mark_used(var.as_str());
                self.push(
                    Diagnostic::new(
                        DiagCode::SortMismatch,
                        var.span.span(),
                        format!("variable '{var}' is used both as {s} and as {required}"),
                    )
                    .with_note(format!("'{var}' was first bound as {s}")),
                );
            }
        }
    }

    /// E013 (GROUP on a bound variable) and E007 (conflicting GROUPs).
    fn check_group<'p>(
        &mut self,
        scope: &Scope,
        var: &Ident,
        group: Option<&'p Vec<Expr>>,
        groups: &mut BTreeMap<String, (&'p Vec<Expr>, Span)>,
    ) {
        let Some(g) = group else { return };
        if !scope.open {
            if let Some(info) = scope.vars.get(var.as_str()) {
                if !info.inherited {
                    self.push(
                        Diagnostic::new(
                            DiagCode::GroupOnBoundVariable,
                            var.span.span(),
                            format!(
                                "GROUP on '{var}' is not allowed: the variable is bound, so its \
                                 grouping is fixed to its identity"
                            ),
                        )
                        .with_note("§A.3 fixes the grouping of bound elements"),
                    );
                }
            }
        }
        match groups.get(var.as_str()) {
            None => {
                groups.insert(var.text.clone(), (g, var.span.span()));
            }
            Some((prev, _)) if *prev == g => {}
            Some(_) => {
                self.push(
                    Diagnostic::new(
                        DiagCode::GroupConflict,
                        var.span.span(),
                        format!("construct variable '{var}' has two different GROUP clauses"),
                    )
                    .with_help("give every occurrence the same GROUP, or state it only once"),
                );
            }
        }
    }

    // -- SELECT --------------------------------------------------------

    fn select(&mut self, s: &SelectQuery, outer: &mut Scope) {
        let mut scope = outer.child();
        self.match_clause(&s.match_clause, &mut scope);
        for item in &s.items {
            self.check_expr(&item.expr, &mut scope, true, Span::default());
        }
        // Aliases shadow (W102) and then become usable in ORDER BY.
        for item in &s.items {
            if let Some(alias) = &item.alias {
                if scope.binds(alias.as_str()) {
                    self.push(
                        Diagnostic::new(
                            DiagCode::ShadowedVariable,
                            alias.span.span(),
                            format!("alias '{alias}' shadows a variable of the MATCH clause"),
                        )
                        .with_help("pick an alias that is not already a pattern variable"),
                    );
                } else {
                    scope.vars.insert(
                        alias.text.clone(),
                        VarInfo {
                            sort: Sort::Value,
                            span: alias.span.span(),
                            used: true,
                            inherited: false,
                            implicit: true,
                            all_path: false,
                        },
                    );
                }
            }
        }
        for g in &s.group_by {
            self.check_expr(g, &mut scope, false, Span::default());
        }
        for o in &s.order_by {
            self.check_expr(&o.expr, &mut scope, true, Span::default());
        }
        self.warn_unused(&scope);
        outer.absorb_usage(&scope);
    }

    // -- PATH heads ----------------------------------------------------

    fn path_clause(&mut self, pc: &PathClause, body_vars: &BTreeSet<String>) {
        let mut scope = Scope::default();
        match pc.patterns.first() {
            None => {
                self.push(Diagnostic::new(
                    DiagCode::InvalidPathPattern,
                    pc.name.span.span(),
                    format!("PATH view '{}' has no pattern", pc.name),
                ));
            }
            Some(first) if first.steps.is_empty() => {
                self.push(
                    Diagnostic::new(
                        DiagCode::InvalidPathPattern,
                        first.span.span(),
                        format!(
                            "PATH view '{}' must contain a path segment (start and end node)",
                            pc.name
                        ),
                    )
                    .with_help("connect two nodes, e.g. PATH p = (a)-[:l]->(b)"),
                );
            }
            Some(_) => {}
        }
        for p in &pc.patterns {
            self.bind_pattern_structure(p, &mut scope);
            // ALL inside a view: the walk cannot concatenate a
            // projection (query.rs would raise at evaluation).
            for s in &p.steps {
                if let Connection::Path(pp) = &s.connection {
                    if pp.mode == PathMode::All && !pp.stored {
                        self.push(Diagnostic::new(
                            DiagCode::InvalidPathPattern,
                            pp.span.span(),
                            format!(
                                "ALL path patterns cannot appear inside PATH view '{}'",
                                pc.name
                            ),
                        ));
                    }
                }
            }
        }
        for p in &pc.patterns {
            self.pattern_props(p, &mut scope);
        }
        if let Some(w) = &pc.where_clause {
            self.check_expr(w, &mut scope, false, pc.name.span.span());
        }
        if let Some(c) = &pc.cost {
            self.check_expr(c, &mut scope, false, pc.name.span.span());
        }
        // W102: view-local variables shadowing body variables.
        for (name, info) in &scope.vars {
            if body_vars.contains(name) {
                self.push(
                    Diagnostic::new(
                        DiagCode::ShadowedVariable,
                        info.span,
                        format!(
                            "PATH-clause variable '{name}' shadows a variable of the query body"
                        ),
                    )
                    .with_note("PATH clauses have their own scope; the two are unrelated")
                    .with_help("rename the view-local variable"),
                );
            }
        }
    }

    // -- expressions ---------------------------------------------------

    /// Walk an expression: unbound variables (E002), misplaced
    /// aggregates (E004 when `agg` is false), name lints, and recursion
    /// into subqueries.
    fn check_expr(&mut self, e: &Expr, scope: &mut Scope, agg: bool, fallback: Span) {
        match e {
            Expr::Var(v) => {
                if scope.binds(v.as_str()) {
                    scope.mark_used(v.as_str());
                } else if !scope.open {
                    self.push(
                        Diagnostic::new(
                            DiagCode::UnboundVariable,
                            v.span.span(),
                            format!("variable '{v}' is not bound by any pattern in scope"),
                        )
                        .with_help("bind it in MATCH, or check the spelling"),
                    );
                }
            }
            Expr::Prop(base, key) => {
                // Reads off analyzer-invented bindings (construct
                // variables, aliases) have no catalog schema to check.
                let implicit_base = matches!(
                    base.as_ref(),
                    Expr::Var(v) if scope.vars.get(v.as_str()).is_some_and(|i| i.implicit)
                );
                if !implicit_base {
                    self.lint_key_name(key, base.first_span().unwrap_or(fallback));
                }
                self.check_expr(base, scope, agg, fallback);
            }
            Expr::LabelTest(base, labels) => {
                for l in labels {
                    self.lint_label_name(l, base.first_span().unwrap_or(fallback));
                }
                self.check_expr(base, scope, agg, fallback);
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                self.check_expr(a, scope, agg, fallback);
                self.check_expr(b, scope, agg, fallback);
            }
            Expr::Unary(_, a) => self.check_expr(a, scope, agg, fallback),
            Expr::Func(_, args) => {
                for a in args {
                    self.check_expr(a, scope, agg, fallback);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if !agg {
                    self.push(
                        Diagnostic::new(
                            DiagCode::MisplacedAggregate,
                            arg.as_deref()
                                .and_then(Expr::first_span)
                                .unwrap_or(fallback),
                            "aggregate function is not allowed here",
                        )
                        .with_note(
                            "aggregates need a grouping context: CONSTRUCT assignments, SET \
                             items, WHEN conditions or SELECT items",
                        ),
                    );
                }
                // Nested aggregates are never allowed.
                if let Some(a) = arg {
                    self.check_expr(a, scope, false, fallback);
                }
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    self.check_expr(o, scope, agg, fallback);
                }
                for (c, r) in whens {
                    self.check_expr(c, scope, agg, fallback);
                    self.check_expr(r, scope, agg, fallback);
                }
                if let Some(x) = else_ {
                    self.check_expr(x, scope, agg, fallback);
                }
            }
            Expr::Exists(q) => {
                // EXISTS subqueries share the outer bindings (§A.2).
                let mut sub = scope.clone();
                self.query(q, &mut sub);
                scope.absorb_usage(&sub);
            }
            Expr::PatternPredicate(p) => {
                // The predicate's variables must be sort-consistent
                // with the enclosing scope; fresh ones bind locally.
                let mut inner = scope.child();
                self.bind_pattern_structure(p, &mut inner);
                self.pattern_props(p, &mut inner);
                scope.absorb_usage(&inner);
            }
            _ => {}
        }
    }

    /// W106 — comparisons between literals of incompatible types.
    fn lint_comparisons(&mut self, e: &Expr, fallback: Span) {
        match e {
            Expr::Binary(op, a, b) => {
                if matches!(
                    op,
                    BinaryOp::Eq
                        | BinaryOp::Neq
                        | BinaryOp::Lt
                        | BinaryOp::Le
                        | BinaryOp::Gt
                        | BinaryOp::Ge
                ) {
                    if let (Some(ka), Some(kb)) = (lit_kind(a), lit_kind(b)) {
                        if ka != kb {
                            self.push(
                                Diagnostic::new(
                                    DiagCode::SuspiciousComparison,
                                    e.first_span().unwrap_or(fallback),
                                    format!("comparison between {ka} and {kb} literals"),
                                )
                                .with_note("values of different types never compare equal"),
                            );
                        }
                    }
                }
                self.lint_comparisons(a, fallback);
                self.lint_comparisons(b, fallback);
            }
            Expr::Unary(_, a) => self.lint_comparisons(a, fallback),
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    self.lint_comparisons(o, fallback);
                }
                for (c, r) in whens {
                    self.lint_comparisons(c, fallback);
                    self.lint_comparisons(r, fallback);
                }
                if let Some(x) = else_ {
                    self.lint_comparisons(x, fallback);
                }
            }
            _ => {}
        }
    }

    // -- name lints ----------------------------------------------------

    fn check_location(&mut self, on: &Option<Location>) {
        match on {
            None => {}
            Some(Location::Named(n)) => {
                if let Some(cat) = self.catalog {
                    let known = cat.graphs.contains(n.as_str())
                        || cat.tables.contains(n.as_str())
                        || self.graph_scope.iter().any(|g| g == n.as_str());
                    if !known {
                        self.push(
                            Diagnostic::new(
                                DiagCode::UnknownReference,
                                n.span.span(),
                                format!("ON references unknown graph or table '{n}'"),
                            )
                            .with_note(
                                "the catalog contains neither a graph nor a table of this name",
                            ),
                        );
                    }
                }
            }
            Some(Location::Subquery(q)) => {
                if matches!(q.body, QueryBody::Select(_)) {
                    self.push(Diagnostic::new(
                        DiagCode::GraphExpected,
                        Span::default(),
                        "ON (subquery) must be a graph query, not SELECT",
                    ));
                }
                // ON subqueries are uncorrelated (§A.2 evaluates them
                // against an empty outer scope).
                let mut sub = Scope::default();
                self.query(q, &mut sub);
            }
        }
    }

    fn check_regex_views(&mut self, r: &Regex, span: Span) {
        match r {
            Regex::View(v) if self.catalog.is_some() && !self.views.iter().any(|x| x == v) => {
                self.push(
                    Diagnostic::new(
                        DiagCode::UnknownReference,
                        span,
                        format!("regex references unknown path view '~{v}'"),
                    )
                    .with_help("define it with a PATH clause in the query head"),
                );
            }
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    self.check_regex_views(p, span);
                }
            }
            Regex::Star(i) | Regex::Plus(i) | Regex::Opt(i) => self.check_regex_views(i, span),
            _ => {}
        }
    }

    fn lint_labels(&mut self, groups: &[gcore_parser::ast::LabelDisjunction]) {
        for gcore_parser::ast::LabelDisjunction(labels, span) in groups {
            for l in labels {
                self.lint_label_name(l, span.span());
            }
        }
    }

    fn lint_label_name(&mut self, label: &str, span: Span) {
        if let Some(cat) = self.catalog.filter(|_| self.lint_schema) {
            if !cat.labels.contains(label) {
                self.push(
                    Diagnostic::new(
                        DiagCode::UnknownLabel,
                        span,
                        format!("label '{label}' exists in no catalog graph"),
                    )
                    .with_note("the test can never hold on current data"),
                );
            }
        }
    }

    fn lint_key(&mut self, key: &Ident) {
        self.lint_key_name(key.as_str(), key.span.span());
    }

    fn lint_key_name(&mut self, key: &str, span: Span) {
        if let Some(cat) = self.catalog.filter(|_| self.lint_schema) {
            if !cat.keys.contains(key) {
                self.push(
                    Diagnostic::new(
                        DiagCode::UnknownProperty,
                        span,
                        format!("property key '{key}' exists on no catalog element"),
                    )
                    .with_note("reads of a missing property yield the empty set"),
                );
            }
        }
    }

    // -- W101 ----------------------------------------------------------

    fn warn_unused(&mut self, scope: &Scope) {
        for (name, info) in &scope.vars {
            if info.used || info.inherited || info.implicit {
                continue;
            }
            self.push(
                Diagnostic::new(
                    DiagCode::UnusedVariable,
                    info.span,
                    format!("variable '{name}' is bound but never used"),
                )
                .with_help("drop the variable name, or use it in WHERE/CONSTRUCT"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pure helpers
// ---------------------------------------------------------------------

/// Does the statement read any of the given graph names (via ON, FROM
/// or a CONSTRUCT graph union)?
fn references_any(stmt: &Statement, names: &BTreeSet<String>) -> bool {
    fn in_query(q: &Query, names: &BTreeSet<String>) -> bool {
        q.heads.iter().any(|h| match h {
            HeadClause::Graph(gc) => in_query(&gc.query, names),
            HeadClause::Path(_) => false,
        }) || match &q.body {
            QueryBody::Graph(f) => in_fgq(f, names),
            QueryBody::Select(s) => in_match(&s.match_clause, names),
        }
    }
    fn in_fgq(f: &FullGraphQuery, names: &BTreeSet<String>) -> bool {
        match f {
            FullGraphQuery::Basic(b) => {
                b.construct.items.iter().any(|i| match i {
                    ConstructItem::GraphName(g) => names.contains(g),
                    ConstructItem::Pattern(_) => false,
                }) || match &b.source {
                    QuerySource::Match(m) => in_match(m, names),
                    QuerySource::From(t) => names.contains(t.as_str()),
                }
            }
            FullGraphQuery::SetOp { left, right, .. } => {
                in_fgq(left, names) || in_fgq(right, names)
            }
        }
    }
    fn in_match(m: &MatchClause, names: &BTreeSet<String>) -> bool {
        let on = |lp: &gcore_parser::ast::LocatedPattern| match &lp.on {
            Some(Location::Named(n)) => names.contains(n.as_str()),
            Some(Location::Subquery(q)) => in_query(q, names),
            None => false,
        };
        m.patterns.iter().any(&on) || m.optionals.iter().any(|b| b.patterns.iter().any(&on))
    }
    if names.is_empty() {
        return false;
    }
    match stmt {
        Statement::Query(q) | Statement::GraphView { query: q, .. } => in_query(q, names),
    }
}

/// Structural variable names of every MATCH in the query body (for the
/// PATH-clause shadowing lint).
fn body_structural_names(body: &QueryBody) -> BTreeSet<String> {
    fn from_fgq(f: &FullGraphQuery, out: &mut BTreeSet<String>) {
        match f {
            FullGraphQuery::Basic(b) => {
                if let QuerySource::Match(m) = &b.source {
                    from_match(m, out);
                }
            }
            FullGraphQuery::SetOp { left, right, .. } => {
                from_fgq(left, out);
                from_fgq(right, out);
            }
        }
    }
    fn from_match(m: &MatchClause, out: &mut BTreeSet<String>) {
        let mut spans = BTreeMap::new();
        for lp in &m.patterns {
            pattern_var_spans(&lp.pattern, &mut spans);
        }
        for opt in &m.optionals {
            for lp in &opt.patterns {
                pattern_var_spans(&lp.pattern, &mut spans);
            }
        }
        out.extend(spans.into_keys());
    }
    let mut out = BTreeSet::new();
    match body {
        QueryBody::Graph(f) => from_fgq(f, &mut out),
        QueryBody::Select(s) => from_match(&s.match_clause, &mut out),
    }
    out
}

/// Every variable a pattern binds (structural + `{k = v}` binders),
/// with the span of its first occurrence.
fn pattern_var_spans(p: &Pattern, out: &mut BTreeMap<String, Span>) {
    let mut push = |v: &Ident| {
        out.entry(v.text.clone()).or_insert_with(|| v.span.span());
    };
    if let Some(v) = &p.start.var {
        push(v);
    }
    for s in &p.steps {
        if let Some(v) = &s.node.var {
            push(v);
        }
        match &s.connection {
            Connection::Edge(e) => {
                if let Some(v) = &e.var {
                    push(v);
                }
            }
            Connection::Path(pp) => {
                if let Some(v) = &pp.var {
                    push(v);
                }
                if let Some(c) = &pp.cost_var {
                    push(c);
                }
            }
        }
    }
    for n in p.nodes() {
        for pe in &n.props {
            if let Expr::Var(v) = &pe.value {
                push(v);
            }
        }
    }
}

/// Split a WHERE condition at top-level ANDs.
fn split_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary(BinaryOp::And, a, b) = e {
        split_and(a, out);
        split_and(b, out);
    } else {
        out.push(e);
    }
}

/// All variable names referenced by an expression. Subqueries and
/// pattern predicates contribute every name they mention — an
/// over-approximation that is exactly right for connectivity analysis
/// (a correlated EXISTS relates the outer variables it shares).
fn expr_vars(e: &Expr, out: &mut BTreeSet<String>) {
    fn query_vars(q: &Query, out: &mut BTreeSet<String>) {
        fn fgq_vars(f: &FullGraphQuery, out: &mut BTreeSet<String>) {
            match f {
                FullGraphQuery::Basic(b) => {
                    if let QuerySource::Match(m) = &b.source {
                        let mut spans = BTreeMap::new();
                        for lp in &m.patterns {
                            pattern_var_spans(&lp.pattern, &mut spans);
                        }
                        for opt in &m.optionals {
                            for lp in &opt.patterns {
                                pattern_var_spans(&lp.pattern, &mut spans);
                            }
                        }
                        out.extend(spans.into_keys());
                        if let Some(w) = &m.where_clause {
                            expr_vars(w, out);
                        }
                    }
                }
                FullGraphQuery::SetOp { left, right, .. } => {
                    fgq_vars(left, out);
                    fgq_vars(right, out);
                }
            }
        }
        match &q.body {
            QueryBody::Graph(f) => fgq_vars(f, out),
            QueryBody::Select(s) => {
                let mut spans = BTreeMap::new();
                for lp in &s.match_clause.patterns {
                    pattern_var_spans(&lp.pattern, &mut spans);
                }
                out.extend(spans.into_keys());
            }
        }
    }
    match e {
        Expr::Var(v) => {
            out.insert(v.text.clone());
        }
        Expr::Exists(q) => query_vars(q, out),
        Expr::PatternPredicate(p) => {
            let mut spans = BTreeMap::new();
            pattern_var_spans(p, &mut spans);
            out.extend(spans.into_keys());
        }
        Expr::Prop(a, _) | Expr::LabelTest(a, _) | Expr::Unary(_, a) => expr_vars(a, out),
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Func(_, args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
        Expr::Aggregate { arg: Some(a), .. } => expr_vars(a, out),
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            if let Some(o) = operand {
                expr_vars(o, out);
            }
            for (c, r) in whens {
                expr_vars(c, out);
                expr_vars(r, out);
            }
            if let Some(x) = else_ {
                expr_vars(x, out);
            }
        }
        _ => {}
    }
}

/// The kind of a literal, for W106.
#[derive(PartialEq, Eq, Clone, Copy)]
enum LitKind {
    Num,
    Str,
    Bool,
}

impl fmt::Display for LitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LitKind::Num => "numeric",
            LitKind::Str => "string",
            LitKind::Bool => "boolean",
        })
    }
}

fn lit_kind(e: &Expr) -> Option<LitKind> {
    match e {
        Expr::Int(_) | Expr::Float(_) => Some(LitKind::Num),
        Expr::Str(_) | Expr::DateLit(_) => Some(LitKind::Str),
        Expr::Bool(_) => Some(LitKind::Bool),
        _ => None,
    }
}

/// Constant-fold boolean structure over literals (W107). `None` means
/// "not constant".
fn fold_bool(e: &Expr) -> Option<bool> {
    match e {
        Expr::Bool(b) => Some(*b),
        Expr::Unary(gcore_parser::ast::UnaryOp::Not, a) => fold_bool(a).map(|b| !b),
        Expr::Binary(BinaryOp::And, a, b) => match (fold_bool(a), fold_bool(b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expr::Binary(BinaryOp::Or, a, b) => match (fold_bool(a), fold_bool(b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Expr::Binary(op, a, b) => {
            let ord = match (lit_num(a), lit_num(b)) {
                (Some(x), Some(y)) => x.partial_cmp(&y)?,
                _ => match (a.as_ref(), b.as_ref()) {
                    (Expr::Str(x), Expr::Str(y)) => x.cmp(y),
                    _ => return None,
                },
            };
            Some(match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::Neq => ord.is_ne(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::Le => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::Ge => ord.is_ge(),
                _ => return None,
            })
        }
        _ => None,
    }
}

fn lit_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Int(i) => Some(*i as f64),
        Expr::Float(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_parser::parse_statement;

    fn codes(text: &str) -> Vec<&'static str> {
        analyze_statement(&parse_statement(text).unwrap(), None)
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    fn error_codes(text: &str) -> Vec<&'static str> {
        analyze_statement(&parse_statement(text).unwrap(), None)
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.code.as_str())
            .collect()
    }

    #[test]
    fn corpus_style_queries_have_no_errors() {
        for q in [
            "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
            "CONSTRUCT (n)-/@p:l {d := c}/->(m) \
             MATCH (n)-/3 SHORTEST p <:knows*> COST c/->(m)",
            "CONSTRUCT (x GROUP e :Company {name := e})<-[y:worksAt]-(n) \
             MATCH (n:Person {employer = e})",
        ] {
            assert_eq!(error_codes(q), Vec::<&str>::new(), "query: {q}");
        }
    }

    #[test]
    fn sort_mismatches_are_collected_not_fail_fast() {
        // Two distinct conflicts in one statement: both reported.
        let c = error_codes("CONSTRUCT (e), (c) MATCH (n)-[e]->(m)-/p <:l*> COST c/->(k)");
        assert_eq!(c, vec!["E001", "E001"]);
    }

    #[test]
    fn node_used_as_edge_rejected() {
        assert_eq!(
            error_codes("CONSTRUCT (a)-[n]->(b) MATCH (n)-[e]->(m), (a), (b)"),
            vec!["E001"]
        );
    }

    #[test]
    fn unbound_variable_in_where_is_e002() {
        assert_eq!(
            error_codes("CONSTRUCT (n) MATCH (n) WHERE misspelled.age > 3"),
            vec!["E002"]
        );
    }

    #[test]
    fn from_scope_is_open_without_a_catalog() {
        // FROM columns are unknowable structurally: no E002.
        assert_eq!(
            error_codes("CONSTRUCT (x {v := anything}) FROM some_table"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn aggregate_in_where_is_e004() {
        assert_eq!(
            error_codes("CONSTRUCT (n) MATCH (n) WHERE COUNT(*) > 3"),
            vec!["E004"]
        );
    }

    #[test]
    fn unused_variable_warns_w101() {
        assert_eq!(
            codes("CONSTRUCT (n) MATCH (n)-[e]->(m)"),
            vec!["W101", "W101"]
        );
    }

    #[test]
    fn repeated_variable_is_a_join_not_unused() {
        assert_eq!(
            codes("CONSTRUCT (n) MATCH (n)-[e1]->(m), (m)-[e2]->(n)"),
            vec!["W101", "W101"] // e1, e2 — but not m (joins), not n
        );
    }

    #[test]
    fn disconnected_patterns_warn_w103() {
        assert!(codes("CONSTRUCT (n)-[e]->(m) MATCH (n)-[e]->(m), (x)").contains(&"W103"));
        // A WHERE predicate linking them silences the warning.
        assert!(
            !codes("CONSTRUCT (n)-[e]->(m) MATCH (n)-[e]->(m), (x) WHERE n.age = x.age")
                .contains(&"W103")
        );
    }

    #[test]
    fn exists_subquery_shares_outer_sorts() {
        assert_eq!(
            error_codes(
                "CONSTRUCT (n) MATCH (n)-[e]->(m) \
                 WHERE EXISTS (CONSTRUCT (x) MATCH (x)-[n]->(y))"
            ),
            vec!["E001"]
        );
    }

    #[test]
    fn contradictory_where_warns_w107() {
        assert!(codes("CONSTRUCT (n) MATCH (n) WHERE n.age > 3 AND 1 = 2").contains(&"W107"));
    }

    #[test]
    fn literal_type_confusion_warns_w106() {
        assert!(codes("CONSTRUCT (n) MATCH (n) WHERE n.age = 3 AND 'x' = 3").contains(&"W106"));
    }

    #[test]
    fn unbound_construct_vars_are_unconstrained() {
        assert_eq!(
            error_codes("CONSTRUCT (fresh)-[also_fresh]->(fresh2) MATCH (n)"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn check_statement_wraps_errors_in_analysis() {
        let stmt = parse_statement("CONSTRUCT (e) MATCH (n)-[e]->(m)").unwrap();
        let err = check_statement(&stmt).unwrap_err();
        let crate::EngineError::Semantic(se) = err else {
            panic!("expected semantic error");
        };
        assert_eq!(se.code(), "E001");
    }
}
