//! The public engine API: a mutable catalog front plus snapshot-based
//! query evaluation.
//!
//! The engine is split along the read/write axis:
//!
//! * **Writes** — graph/table registration, `GRAPH VIEW` commits,
//!   direct catalog access — mutate the engine's catalog and *commit*:
//!   every commit bumps the snapshot epoch and invalidates the cached
//!   snapshot.
//! * **Reads** — every query — evaluate against an immutable
//!   [`EngineSnapshot`] taken lazily at the current epoch. Snapshots
//!   are `Arc`-shared and `Sync`; the [`QueryExecutor`] evaluates with
//!   `&self`, so concurrent queries run on plain scoped threads with no
//!   locking on the evaluation path ([`Engine::run_batch_parallel`]).
//!
//! [`Engine::run`] keeps its historical `&mut self` signature: it takes
//! a fresh snapshot per statement, evaluates read-only, and commits any
//! view registration afterwards — single-threaded callers see exactly
//! the old behavior, with the epoch observable via
//! [`Engine::snapshot_epoch`].
//!
//! ```
//! use gcore::Engine;
//! use gcore_ppg::{Attributes, GraphBuilder};
//!
//! let mut engine = Engine::new();
//! let mut b = GraphBuilder::new(engine.catalog().ids().clone());
//! let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
//! let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
//! b.edge(ann, bob, Attributes::labeled("knows"));
//! engine.register_graph("people", b.build());
//! engine.set_default_graph("people");
//!
//! let g = engine
//!     .query_graph("CONSTRUCT (n) MATCH (n:Person) WHERE n.name = 'Ann'")
//!     .unwrap();
//! assert_eq!(g.node_count(), 1);
//!
//! // Fan a read-only corpus across threads on one shared snapshot:
//! let queries = [
//!     "SELECT n.name AS name MATCH (n:Person)",
//!     "CONSTRUCT (m) MATCH (n)-[:knows]->(m)",
//! ];
//! let results = engine.run_batch_parallel(&queries, 2);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::analyze::{parse_diagnostic, CatalogSummary};
use crate::diag::Diagnostic;
use crate::error::{Result, SemanticError};
use crate::executor::QueryExecutor;
use crate::query::QueryOutput;
use crate::snapshot::EngineSnapshot;
use gcore_parser::ast::Statement;
use gcore_parser::{parse_script, parse_statement};
use gcore_ppg::{Catalog, PathPropertyGraph, Table};
use gcore_store::{StorageBackend, StoreError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A G-CORE query engine over a catalog of named graphs and tables.
///
/// The engine is the unit of identity: all graphs registered with one
/// engine draw identifiers from a single shared generator, so query
/// results can share elements with their inputs (the paper's "full
/// graph" operations are defined in terms of identities).
#[derive(Clone)]
pub struct Engine {
    catalog: Catalog,
    filter_pushdown: bool,
    planner: bool,
    parallelism: usize,
    /// Per-statement evaluation budget: statements over it are
    /// cooperatively cancelled (`E016`). `None` = no limit.
    statement_deadline: Option<std::time::Duration>,
    /// LRU bound on each snapshot's SCC-condensation cache; `None`
    /// (the default) keeps the cache unbounded.
    scc_cache_capacity: Option<usize>,
    /// Monotone commit counter: bumped by every catalog write.
    epoch: u64,
    /// The snapshot of the current epoch, taken lazily and dropped by
    /// the next commit.
    snapshot: Option<Arc<EngineSnapshot>>,
    /// Collect an execution profile for every statement (default: off).
    profiling: bool,
    /// The engine's unified metrics registry. Shared by clones of the
    /// engine and by every executor it derives, so counters aggregate
    /// across the engine's whole lifetime.
    registry: Arc<crate::obs::MetricsRegistry>,
    /// Pre-resolved handles into `registry` for the core counters.
    metrics: crate::obs::CoreMetrics,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with an empty catalog at epoch 0.
    pub fn new() -> Self {
        Self::with_catalog(Catalog::new())
    }

    /// An engine over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        let registry = Arc::new(crate::obs::MetricsRegistry::new());
        let metrics = crate::obs::CoreMetrics::registered(&registry);
        Engine {
            catalog,
            filter_pushdown: true,
            planner: crate::context::planner_default(),
            parallelism: 1,
            statement_deadline: None,
            scc_cache_capacity: None,
            epoch: 0,
            snapshot: None,
            profiling: false,
            registry,
            metrics,
        }
    }

    /// Enable or disable WHERE-conjunct pushdown (default: enabled).
    /// Pushdown is semantics-preserving; this switch exists for the
    /// ablation benchmarks only.
    pub fn set_filter_pushdown(&mut self, enabled: bool) {
        self.filter_pushdown = enabled;
    }

    /// Enable or disable the cost-based MATCH planner (default: on,
    /// unless the `GCORE_PLAN` environment variable is `off`/`0`).
    /// Planning is semantics-preserving — it changes evaluation order
    /// and operator strategy, never results; the switch exists for the
    /// ablation benchmarks and the differential test suite.
    pub fn set_planner(&mut self, enabled: bool) {
        self.planner = enabled;
    }

    /// Set the worker-thread count for intra-query parallel operators
    /// (partitioned hash joins, multi-source path search). `0` and `1`
    /// both mean sequential. Results are bit-identical at any setting;
    /// the differential suite pins this.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// Set a per-statement evaluation budget: every statement this
    /// engine (or an executor derived from it) evaluates from now on
    /// gets `budget` of wall-clock time, and is cooperatively
    /// cancelled — returning
    /// [`RuntimeError::Cancelled`](crate::error::RuntimeError),
    /// stable code `E016` — at the next loop boundary after it runs
    /// over. `None` (the default) disables the limit. Cancellation
    /// never corrupts state: evaluation is read-only against a
    /// snapshot, so an over-budget statement simply has no result.
    pub fn set_statement_deadline(&mut self, budget: Option<std::time::Duration>) {
        self.statement_deadline = budget;
    }

    /// Render the planner's decisions for a statement without running
    /// it (see [`QueryExecutor::explain`]).
    pub fn explain(&mut self, text: &str) -> Result<String> {
        self.executor().explain(text)
    }

    /// Enable or disable execution profiling for every statement this
    /// engine (or an executor derived from it) evaluates (default:
    /// off). Profiling never changes results; its only observable
    /// effects are the profile itself and the cost of collecting it.
    /// [`Engine::run`] discards the collected profile — use
    /// [`Engine::profile`] to get it back.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
    }

    /// `EXPLAIN ANALYZE`: run one statement with profiling forced on
    /// and return its output together with the execution profile —
    /// the operator span tree with planner estimates, actual row
    /// counts, timings and misestimate markers
    /// ([`QueryProfile::render`](crate::obs::QueryProfile::render)).
    ///
    /// Read-only, like [`Engine::explain`]: a `GRAPH VIEW` statement
    /// profiles its evaluation but registers nothing.
    pub fn profile(&mut self, text: &str) -> Result<(QueryOutput, crate::obs::QueryProfile)> {
        self.executor().run_profiled(text)
    }

    /// The engine's unified metrics registry: core counters
    /// (`statements`, `cancellations`, `planner_*`) aggregated across
    /// every statement the engine or its executors ever evaluated.
    /// Render it with
    /// [`MetricsRegistry::render_prometheus`](crate::obs::MetricsRegistry::render_prometheus).
    #[must_use]
    pub fn metrics_registry(&self) -> &Arc<crate::obs::MetricsRegistry> {
        &self.registry
    }

    /// Bound each snapshot's SCC-condensation cache to at most
    /// `capacity` live (graph, NFA) condensations, evicting the
    /// least-recently-used entry beyond that; `None` (the default)
    /// keeps the cache unbounded, `Some(0)` disables caching. Counts
    /// as a write: the next snapshot carries the new bound.
    pub fn set_scc_cache_capacity(&mut self, capacity: Option<usize>) {
        self.scc_cache_capacity = capacity;
        self.commit();
    }

    /// The underlying catalog (graphs, tables, id generator).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog. Counts as a write: the epoch is
    /// bumped and the cached snapshot dropped, so snapshots can never
    /// observe a half-applied mutation.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.commit();
        &mut self.catalog
    }

    /// Register (or replace) a named graph. Commits.
    pub fn register_graph(&mut self, name: impl Into<String>, graph: PathPropertyGraph) {
        self.catalog.register_graph(name, graph);
        self.commit();
    }

    /// Register (or replace) a named table (for the §5 extensions).
    /// Commits.
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) {
        self.catalog.register_table(name, table);
        self.commit();
    }

    /// Set the default graph used when `MATCH … ON` is omitted. Commits.
    pub fn set_default_graph(&mut self, name: impl Into<String>) {
        self.catalog.set_default_graph(name);
        self.commit();
    }

    /// Fetch a registered graph.
    pub fn graph(&self, name: &str) -> Result<Arc<PathPropertyGraph>> {
        Ok(self.catalog.graph(name)?)
    }

    /// The current snapshot epoch. Starts at 0; every committed write
    /// (registration, `GRAPH VIEW`, `catalog_mut`) increments it.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply a write: advance the epoch and invalidate the cached
    /// snapshot. Outstanding snapshots (held by executors or in-flight
    /// queries) are unaffected — they keep serving their own epoch.
    fn commit(&mut self) {
        self.epoch += 1;
        self.snapshot = None;
    }

    /// The snapshot of the current epoch, freezing one lazily on first
    /// use after a commit. Freezing force-builds every graph's label
    /// index, so snapshot evaluation never hits the scan fallback.
    pub fn snapshot(&mut self) -> Arc<EngineSnapshot> {
        if self.snapshot.is_none() {
            self.snapshot = Some(Arc::new(EngineSnapshot::freeze_with_scc_capacity(
                self.catalog.clone(),
                self.epoch,
                self.scc_cache_capacity,
            )));
        }
        self.snapshot.as_ref().expect("just frozen").clone()
    }

    /// A read-only executor pinned to the current epoch's snapshot.
    /// `Send + Sync`: share it across threads, or clone it per thread.
    pub fn executor(&mut self) -> QueryExecutor {
        let mut exec = QueryExecutor::new(self.snapshot());
        exec.set_filter_pushdown(self.filter_pushdown);
        exec.set_planner(self.planner);
        exec.set_parallelism(self.parallelism);
        exec.set_statement_deadline(self.statement_deadline);
        exec.set_profiling(self.profiling);
        exec.set_metrics(self.metrics.clone());
        exec
    }

    /// Parse and evaluate one statement. `GRAPH VIEW name AS (…)`
    /// registers its materialized result persistently and returns it.
    pub fn run(&mut self, text: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(text)?;
        self.eval(&stmt)
    }

    /// Parse and evaluate a `;`-separated script, returning every
    /// statement's output in order.
    pub fn run_script(&mut self, text: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_script(text)?;
        stmts.iter().map(|s| self.eval(s)).collect()
    }

    /// Statically analyze one statement against the live catalog
    /// without evaluating anything: every diagnostic (errors *and*
    /// warnings) is returned, ordered by source position. Parse
    /// failures come back as a single `E000` diagnostic, so callers
    /// get a uniform report for arbitrary input.
    #[must_use]
    pub fn check(&self, text: &str) -> Vec<Diagnostic> {
        match parse_statement(text) {
            Err(e) => vec![parse_diagnostic(&e)],
            Ok(stmt) => {
                let summary = CatalogSummary::of(self.catalog());
                crate::analyze::analyze_statement(&stmt, Some(&summary))
            }
        }
    }

    /// [`check`](Engine::check) for a `;`-separated script. `GRAPH
    /// VIEW` names defined by earlier statements count as known graphs
    /// for later ones, mirroring [`run_script`](Engine::run_script).
    #[must_use]
    pub fn check_script(&self, text: &str) -> Vec<Diagnostic> {
        match parse_script(text) {
            Err(e) => vec![parse_diagnostic(&e)],
            Ok(stmts) => {
                let summary = CatalogSummary::of(self.catalog());
                crate::analyze::analyze_script(&stmts, Some(&summary))
            }
        }
    }

    /// Run a query that must produce a graph.
    pub fn query_graph(&mut self, text: &str) -> Result<PathPropertyGraph> {
        match self.run(text)? {
            QueryOutput::Graph(g) => Ok(g),
            QueryOutput::Table(_) => Err(SemanticError::WrongOutputSort {
                expected: "graph",
                found: "table",
            }
            .into()),
        }
    }

    /// Run a query that must produce a table (§5 SELECT).
    pub fn query_table(&mut self, text: &str) -> Result<Table> {
        match self.run(text)? {
            QueryOutput::Table(t) => Ok(t),
            QueryOutput::Graph(_) => Err(SemanticError::WrongOutputSort {
                expected: "table",
                found: "graph",
            }
            .into()),
        }
    }

    /// Evaluate an already-parsed statement: read-only against the
    /// current snapshot, then commit any `GRAPH VIEW` registration
    /// (which bumps the epoch).
    pub fn eval(&mut self, stmt: &Statement) -> Result<QueryOutput> {
        let executor = self.executor();
        let out = executor.eval(stmt)?;
        if let Statement::GraphView { name, .. } = stmt {
            match &out {
                QueryOutput::Graph(g) => self.register_graph(name.clone(), g.clone()),
                QueryOutput::Table(_) => {
                    return Err(
                        SemanticError::GraphExpected(format!("GRAPH VIEW {name} AS (…)")).into(),
                    )
                }
            }
        }
        Ok(out)
    }

    /// Persist the current committed catalog — every registered graph
    /// and table plus the default-graph name — into `backend` in the
    /// `gcore-store` binary format (see [`gcore_store::save_catalog`]).
    ///
    /// Reads the committed state only: queries in flight on old
    /// snapshots are unaffected, and nothing commits.
    ///
    /// ```
    /// use gcore::Engine;
    /// use gcore_ppg::{Attributes, GraphBuilder};
    /// use gcore_store::MemBackend;
    ///
    /// let mut engine = Engine::new();
    /// let mut b = GraphBuilder::new(engine.catalog().ids().clone());
    /// b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
    /// engine.register_graph("people", b.build());
    /// engine.set_default_graph("people");
    ///
    /// let backend = MemBackend::new();
    /// engine.save_to(&backend).unwrap();
    ///
    /// // …process restarts: cold-start the same catalog from disk…
    /// let mut reloaded = Engine::open_from(&backend).unwrap();
    /// let t = reloaded
    ///     .query_table("SELECT n.name AS name MATCH (n:Person)")
    ///     .unwrap();
    /// assert_eq!(t.len(), 1);
    /// ```
    pub fn save_to(&self, backend: &dyn StorageBackend) -> std::result::Result<(), StoreError> {
        gcore_store::save_catalog_at_epoch(&self.catalog, self.epoch, backend)
    }

    /// Cold-start an engine from a store written by
    /// [`save_to`](Self::save_to): decode every persisted graph,
    /// register it (rebuilding label indexes and reserving the stored
    /// identifier space, so fresh skolemized identifiers never collide
    /// with loaded elements) and restore the default graph.
    ///
    /// The engine resumes at the snapshot epoch recorded in the
    /// manifest (what [`snapshot_epoch`](Self::snapshot_epoch) read
    /// when the store was saved), with no snapshot frozen — the load
    /// itself is the committed state at that epoch. Clients observing
    /// the epoch across a save → restart therefore never see it
    /// regress.
    pub fn open_from(backend: &dyn StorageBackend) -> std::result::Result<Engine, StoreError> {
        let (catalog, epoch) = gcore_store::load_catalog_at_epoch(backend)?;
        let mut engine = Engine::with_catalog(catalog);
        engine.epoch = epoch;
        Ok(engine)
    }

    /// Replace this engine's committed catalog with the one stored in
    /// `backend` (the hot-reload counterpart of
    /// [`open_from`](Self::open_from), used by the `gcore-serve` admin
    /// route). Counts as a write: the epoch advances to one past the
    /// maximum of the live epoch and the stored one — monotone for
    /// connected clients whichever is ahead — and the cached snapshot
    /// is dropped. Evaluation settings (planner, parallelism, …) are
    /// kept. Returns the new epoch.
    pub fn reload_from(
        &mut self,
        backend: &dyn StorageBackend,
    ) -> std::result::Result<u64, StoreError> {
        let (catalog, stored_epoch) = gcore_store::load_catalog_at_epoch(backend)?;
        self.catalog = catalog;
        self.epoch = self.epoch.max(stored_epoch);
        self.commit();
        Ok(self.epoch)
    }

    /// Evaluate a corpus of independent statements concurrently on
    /// `threads` scoped threads sharing *one* snapshot of the current
    /// epoch, returning each statement's result in input order.
    ///
    /// Semantics are those of [`QueryExecutor`]: every statement sees
    /// the same committed catalog state, and nothing is registered —
    /// `GRAPH VIEW` statements return their graph without committing
    /// it. Per-statement evaluation is single-threaded and
    /// deterministic, so each query's output is independent of the
    /// thread count and of how statements interleave; the differential
    /// suite in `tests/snapshot_equivalence.rs` pins this against
    /// sequential [`Engine::run`].
    ///
    /// Statements are claimed off a shared atomic counter (work
    /// stealing), so skewed corpora don't idle threads. `threads == 0`
    /// is treated as 1.
    pub fn run_batch_parallel(
        &mut self,
        queries: &[&str],
        threads: usize,
    ) -> Vec<Result<QueryOutput>> {
        let executor = self.executor();
        run_batch_on(&executor, queries, threads)
    }
}

/// Fan `queries` across `threads` scoped threads evaluating on one
/// shared executor; results come back in input order. Exposed for
/// callers that already hold an executor (benchmarks, servers).
pub fn run_batch_on(
    executor: &QueryExecutor,
    queries: &[&str],
    threads: usize,
) -> Vec<Result<QueryOutput>> {
    let threads = threads.max(1).min(queries.len().max(1));
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Result<QueryOutput>)> = Vec::with_capacity(queries.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut mine: Vec<(usize, Result<QueryOutput>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            return mine;
                        }
                        mine.push((i, executor.run(queries[i])));
                    }
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("batch worker panicked"));
        }
    });
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::{Attributes, GraphBuilder};

    fn engine_with_people() -> Engine {
        let mut engine = Engine::new();
        let mut b = GraphBuilder::new(engine.catalog().ids().clone());
        let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
        let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
        let eve = b.node(Attributes::labeled("Person").with_prop("name", "Eve"));
        b.edge(ann, bob, Attributes::labeled("knows"));
        b.edge(bob, eve, Attributes::labeled("knows"));
        engine.register_graph("people", b.build());
        engine.set_default_graph("people");
        engine
    }

    #[test]
    fn construct_match_roundtrip() {
        let mut engine = engine_with_people();
        let g = engine
            .query_graph("CONSTRUCT (n) MATCH (n:Person)")
            .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn where_filters() {
        let mut engine = engine_with_people();
        let g = engine
            .query_graph("CONSTRUCT (n) MATCH (n:Person) WHERE n.name = 'Bob'")
            .unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn graph_view_persists() {
        let mut engine = engine_with_people();
        engine
            .run("GRAPH VIEW only_ann AS (CONSTRUCT (n) MATCH (n) WHERE n.name = 'Ann')")
            .unwrap();
        let g = engine
            .query_graph("CONSTRUCT (n) MATCH (n) ON only_ann")
            .unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn select_table() {
        let mut engine = engine_with_people();
        let t = engine
            .query_table("SELECT n.name AS name MATCH (n:Person)")
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.columns(), &["name".to_owned()]);
    }

    #[test]
    fn wrong_output_sort_is_an_error() {
        let mut engine = engine_with_people();
        assert!(engine.query_table("CONSTRUCT (n) MATCH (n)").is_err());
        assert!(engine.query_graph("SELECT n.name MATCH (n)").is_err());
    }

    #[test]
    fn writes_bump_the_epoch_and_queries_do_not() {
        let mut engine = Engine::new();
        let e0 = engine.snapshot_epoch();
        engine.register_graph("g", PathPropertyGraph::new());
        assert!(engine.snapshot_epoch() > e0);
        engine.set_default_graph("g");
        let e1 = engine.snapshot_epoch();
        engine.query_graph("CONSTRUCT (n) MATCH (n)").unwrap();
        assert_eq!(engine.snapshot_epoch(), e1); // pure reads don't commit
        engine
            .run("GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n))")
            .unwrap();
        assert!(engine.snapshot_epoch() > e1); // view commit does
    }

    #[test]
    fn snapshot_is_cached_per_epoch() {
        let mut engine = engine_with_people();
        let a = engine.snapshot();
        let b = engine.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        engine.register_graph("other", PathPropertyGraph::new());
        let c = engine.snapshot();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(c.epoch() > a.epoch());
    }

    #[test]
    fn save_and_open_round_trip_through_a_backend() {
        use gcore_store::MemBackend;

        let mut engine = engine_with_people();
        engine
            .run("GRAPH VIEW pals AS (CONSTRUCT (n) MATCH (n:Person))")
            .unwrap();
        let backend = MemBackend::new();
        engine.save_to(&backend).unwrap();

        let mut reloaded = Engine::open_from(&backend).unwrap();
        assert_eq!(reloaded.catalog().graph_names(), vec!["pals", "people"]);
        assert_eq!(reloaded.catalog().default_graph_name(), Some("people"));
        // The epoch survives the restart: no client can observe it
        // regress across save → open.
        assert_eq!(reloaded.snapshot_epoch(), engine.snapshot_epoch());
        // The loaded engine serves the same queries cold.
        let t = reloaded
            .query_table("SELECT n.name AS name MATCH (n:Person)")
            .unwrap();
        assert_eq!(t.len(), 3);
        let g = reloaded
            .query_graph("CONSTRUCT (n) MATCH (n) ON pals")
            .unwrap();
        assert_eq!(g.node_count(), 3);
        // Fresh identifiers never collide with stored elements.
        let stored_max = engine
            .graph("people")
            .unwrap()
            .node_ids()
            .map(|n| n.raw())
            .max()
            .unwrap();
        assert!(reloaded.catalog().ids().peek() > stored_max);
    }

    #[test]
    fn scc_cache_capacity_is_a_commit_and_reaches_the_snapshot() {
        let mut engine = engine_with_people();
        let e0 = engine.snapshot_epoch();
        engine.set_scc_cache_capacity(Some(2));
        assert!(engine.snapshot_epoch() > e0);
        // The bound is observable through eviction behavior: three
        // distinct automata at capacity 2 must evict once.
        let exec = engine.executor();
        for q in [
            "CONSTRUCT (m) MATCH (n)-/<:knows*>/->(m) WHERE n.name = 'Ann'",
            "CONSTRUCT (m) MATCH (n)-/<:knows>/->(m) WHERE n.name = 'Ann'",
            "CONSTRUCT (m) MATCH (n)-/<:knows :knows>/->(m) WHERE n.name = 'Ann'",
        ] {
            exec.query_graph(q).unwrap();
        }
        let (_, _, evictions) = exec.snapshot().scc_cache_stats();
        assert!(evictions >= 1, "third automaton must evict at capacity 2");
    }

    #[test]
    fn run_batch_parallel_returns_results_in_order() {
        let mut engine = engine_with_people();
        let queries = [
            "SELECT n.name AS name MATCH (n:Person)",
            "this does not parse",
            "CONSTRUCT (m) MATCH (n)-[:knows]->(m) WHERE n.name = 'Ann'",
        ];
        for threads in [1, 2, 4, 8] {
            let results = engine.run_batch_parallel(&queries, threads);
            assert_eq!(results.len(), 3);
            assert_eq!(
                results[0]
                    .as_ref()
                    .unwrap()
                    .clone()
                    .into_table()
                    .unwrap()
                    .len(),
                3
            );
            assert!(results[1].is_err());
            assert_eq!(
                results[2]
                    .as_ref()
                    .unwrap()
                    .clone()
                    .into_graph()
                    .unwrap()
                    .node_count(),
                1
            );
        }
    }
}
