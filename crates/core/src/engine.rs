//! The public engine API: a catalog of named graphs and tables plus a
//! query entry point.
//!
//! ```
//! use gcore::Engine;
//! use gcore_ppg::{Attributes, GraphBuilder};
//!
//! let mut engine = Engine::new();
//! let mut b = GraphBuilder::new(engine.catalog().ids().clone());
//! let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
//! let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
//! b.edge(ann, bob, Attributes::labeled("knows"));
//! engine.register_graph("people", b.build());
//! engine.set_default_graph("people");
//!
//! let g = engine
//!     .query_graph("CONSTRUCT (n) MATCH (n:Person) WHERE n.name = 'Ann'")
//!     .unwrap();
//! assert_eq!(g.node_count(), 1);
//! ```

use crate::context::EvalCtx;
use crate::error::{Result, SemanticError};
use crate::query::{Evaluator, QueryOutput};
use gcore_parser::ast::Statement;
use gcore_parser::{parse_script, parse_statement};
use gcore_ppg::{Catalog, PathPropertyGraph, Table};
use std::sync::Arc;

/// A G-CORE query engine over a catalog of named graphs and tables.
///
/// The engine is the unit of identity: all graphs registered with one
/// engine draw identifiers from a single shared generator, so query
/// results can share elements with their inputs (the paper's "full
/// graph" operations are defined in terms of identities).
#[derive(Clone)]
pub struct Engine {
    catalog: Catalog,
    filter_pushdown: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with an empty catalog.
    pub fn new() -> Self {
        Engine {
            catalog: Catalog::new(),
            filter_pushdown: true,
        }
    }

    /// An engine over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        Engine {
            catalog,
            filter_pushdown: true,
        }
    }

    /// Enable or disable WHERE-conjunct pushdown (default: enabled).
    /// Pushdown is semantics-preserving; this switch exists for the
    /// ablation benchmarks only.
    pub fn set_filter_pushdown(&mut self, enabled: bool) {
        self.filter_pushdown = enabled;
    }

    /// The underlying catalog (graphs, tables, id generator).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Register (or replace) a named graph.
    pub fn register_graph(&mut self, name: impl Into<String>, graph: PathPropertyGraph) {
        self.catalog.register_graph(name, graph);
    }

    /// Register (or replace) a named table (for the §5 extensions).
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) {
        self.catalog.register_table(name, table);
    }

    /// Set the default graph used when `MATCH … ON` is omitted.
    pub fn set_default_graph(&mut self, name: impl Into<String>) {
        self.catalog.set_default_graph(name);
    }

    /// Fetch a registered graph.
    pub fn graph(&self, name: &str) -> Result<Arc<PathPropertyGraph>> {
        Ok(self.catalog.graph(name)?)
    }

    /// Parse and evaluate one statement. `GRAPH VIEW name AS (…)`
    /// registers its materialized result persistently and returns it.
    pub fn run(&mut self, text: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(text)?;
        self.eval(&stmt)
    }

    /// Parse and evaluate a `;`-separated script, returning every
    /// statement's output in order.
    pub fn run_script(&mut self, text: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_script(text)?;
        stmts.iter().map(|s| self.eval(s)).collect()
    }

    /// Run a query that must produce a graph.
    pub fn query_graph(&mut self, text: &str) -> Result<PathPropertyGraph> {
        match self.run(text)? {
            QueryOutput::Graph(g) => Ok(g),
            QueryOutput::Table(_) => Err(SemanticError::Other(
                "query produced a table; use query_table for SELECT".into(),
            )
            .into()),
        }
    }

    /// Run a query that must produce a table (§5 SELECT).
    pub fn query_table(&mut self, text: &str) -> Result<Table> {
        match self.run(text)? {
            QueryOutput::Table(t) => Ok(t),
            QueryOutput::Graph(_) => Err(SemanticError::Other(
                "query produced a graph; use query_graph instead".into(),
            )
            .into()),
        }
    }

    /// Evaluate an already-parsed statement.
    pub fn eval(&mut self, stmt: &Statement) -> Result<QueryOutput> {
        // Static analysis first: sort mismatches are rejected before any
        // evaluation work (§3 "they must be of the right sort").
        crate::analyze::check_statement(stmt)?;
        // The context clones the catalog: graph handles are Arc-shared
        // and the id generator handle draws from the same counter, so
        // skolemized identifiers never collide across queries.
        let ctx = EvalCtx::new(self.catalog.clone());
        ctx.filter_pushdown.set(self.filter_pushdown);
        let evaluator = Evaluator::new(&ctx);
        let out = evaluator.eval_statement(stmt)?;
        if let Statement::GraphView { name, .. } = stmt {
            match &out {
                QueryOutput::Graph(g) => self.catalog.register_graph(name.clone(), g.clone()),
                QueryOutput::Table(_) => {
                    return Err(SemanticError::Other(format!(
                        "GRAPH VIEW {name} AS (…) must be a graph query, not SELECT"
                    ))
                    .into())
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcore_ppg::{Attributes, GraphBuilder};

    fn engine_with_people() -> Engine {
        let mut engine = Engine::new();
        let mut b = GraphBuilder::new(engine.catalog().ids().clone());
        let ann = b.node(Attributes::labeled("Person").with_prop("name", "Ann"));
        let bob = b.node(Attributes::labeled("Person").with_prop("name", "Bob"));
        let eve = b.node(Attributes::labeled("Person").with_prop("name", "Eve"));
        b.edge(ann, bob, Attributes::labeled("knows"));
        b.edge(bob, eve, Attributes::labeled("knows"));
        engine.register_graph("people", b.build());
        engine.set_default_graph("people");
        engine
    }

    #[test]
    fn construct_match_roundtrip() {
        let mut engine = engine_with_people();
        let g = engine
            .query_graph("CONSTRUCT (n) MATCH (n:Person)")
            .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn where_filters() {
        let mut engine = engine_with_people();
        let g = engine
            .query_graph("CONSTRUCT (n) MATCH (n:Person) WHERE n.name = 'Bob'")
            .unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn graph_view_persists() {
        let mut engine = engine_with_people();
        engine
            .run("GRAPH VIEW only_ann AS (CONSTRUCT (n) MATCH (n) WHERE n.name = 'Ann')")
            .unwrap();
        let g = engine
            .query_graph("CONSTRUCT (n) MATCH (n) ON only_ann")
            .unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn select_table() {
        let mut engine = engine_with_people();
        let t = engine
            .query_table("SELECT n.name AS name MATCH (n:Person)")
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.columns(), &["name".to_owned()]);
    }

    #[test]
    fn wrong_output_sort_is_an_error() {
        let mut engine = engine_with_people();
        assert!(engine.query_table("CONSTRUCT (n) MATCH (n)").is_err());
        assert!(engine.query_graph("SELECT n.name MATCH (n)").is_err());
    }
}
