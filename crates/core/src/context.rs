//! The evaluation context shared by all clauses of one query.
//!
//! Holds the catalog snapshot (plus query-local view overlays), the arena
//! of *fresh* paths computed by path patterns (paths that exist only
//! during evaluation, until a CONSTRUCT stores or projects them), and the
//! PATH-view definitions from the query head.

use crate::binding::{Bound, Column};
use crate::error::{EngineError, Result};
use crate::snapshot::EngineSnapshot;
use gcore_parser::ast::PathClause;
use gcore_ppg::{
    Attributes, Catalog, EdgeId, Key, NodeId, PathPropertyGraph, PathShape, PropertySet, Table,
    Value,
};
use std::cell::RefCell;
use std::sync::Arc;

/// A path computed during matching (not yet part of any graph's `P`).
#[derive(Clone, Debug)]
pub enum FreshPath {
    /// A concrete walk with its cost.
    Walk {
        /// The concrete walk.
        shape: PathShape,
        /// Total cost of the walk.
        cost: f64,
        /// Whether the cost came from a weighted PATH view (float) or is
        /// a hop count (integer).
        weighted: bool,
        /// Graph the walk was found in (attribute restriction source).
        graph: Arc<PathPropertyGraph>,
    },
    /// The §3 `ALL`-paths graph projection: every node and edge lying on
    /// some conforming path between the two endpoints (\[10\]).
    Projection {
        /// Projection source node.
        src: NodeId,
        /// Projection destination node.
        dst: NodeId,
        /// Nodes on some conforming walk.
        nodes: Vec<NodeId>,
        /// Edges on some conforming walk.
        edges: Vec<EdgeId>,
        /// Graph the projection was computed in.
        graph: Arc<PathPropertyGraph>,
    },
}

impl FreshPath {
    /// Endpoints of the path/projection.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match self {
            FreshPath::Walk { shape, .. } => (shape.start(), shape.end()),
            FreshPath::Projection { src, dst, .. } => (*src, *dst),
        }
    }
}

/// Evaluation context for one top-level query.
///
/// Created per statement from an immutable [`EngineSnapshot`]; all the
/// interior mutability here is *query-local* (the context never leaves
/// the evaluating thread), which is what keeps the snapshot itself
/// lock-free and shareable across concurrently evaluating queries.
pub struct EvalCtx {
    /// The frozen engine state this query evaluates against. Shared
    /// read-only with every concurrent query on the same epoch; carries
    /// the per-snapshot search caches.
    pub snapshot: Arc<EngineSnapshot>,
    /// Catalog overlay seeded from the snapshot (GRAPH … AS views are
    /// registered here and dropped with the context).
    pub catalog: RefCell<Catalog>,
    /// Arena of computed paths; `Bound::FreshPath` indexes into it.
    pub fresh_paths: RefCell<Vec<FreshPath>>,
    /// PATH views from the query head, innermost last.
    pub path_views: RefCell<Vec<PathClause>>,
    /// The ambient graph used for pattern predicates in WHERE and for
    /// property access on non-variable expressions.
    pub ambient: RefCell<Option<Arc<PathPropertyGraph>>>,
    /// Cache of PATH-view segment relations, keyed by (view name, graph
    /// identity).
    pub view_cache: RefCell<std::collections::HashMap<(String, usize), crate::paths::ViewSegments>>,
    /// Views currently being materialized (cycle guard).
    pub view_in_progress: RefCell<Vec<String>>,
    /// §5 "interpreting tables as graphs": per-query cache of the
    /// isolated-node graph derived from a table, so several patterns ON
    /// the same table see the same node identities.
    pub table_graphs: RefCell<std::collections::HashMap<String, Arc<PathPropertyGraph>>>,
    /// WHERE-conjunct pushdown switch. Always semantically neutral;
    /// disabled only by the ablation benchmarks.
    pub filter_pushdown: std::cell::Cell<bool>,
    /// Cost-based MATCH planner switch (join ordering, IN pushdown,
    /// path-strategy selection). Semantically neutral; defaults to the
    /// `GCORE_PLAN` environment variable (`off`/`0` disables).
    pub planner: std::cell::Cell<bool>,
    /// Worker threads for intra-query parallel operators (partitioned
    /// hash joins, multi-source path search). `1` = sequential; results
    /// are bit-identical at any setting.
    pub parallelism: std::cell::Cell<usize>,
    /// Cooperative cancellation signal for this statement. The long
    /// loops in the matcher, the joins and the path searchers poll it;
    /// when it fires, evaluation unwinds with
    /// [`RuntimeError::Cancelled`](crate::error::RuntimeError).
    /// Defaults to a token that never fires, which is guaranteed not to
    /// change results.
    pub cancel: crate::cancel::CancelToken,
    /// Per-statement span collector for execution profiles. Disabled by
    /// default (no state, near-zero cost); like everything else here it
    /// is query-local and guaranteed not to change results.
    pub profiler: crate::obs::Profiler,
    /// Core metric handles bumped during evaluation (planner reorders,
    /// pushdowns, misestimates). Executors derived from an [`Engine`]
    /// share the engine's registry-backed set; a fresh context counts
    /// privately.
    ///
    /// [`Engine`]: crate::Engine
    pub metrics: crate::obs::CoreMetrics,
}

/// Default planner switch: on unless `GCORE_PLAN` is `off`/`0`.
pub(crate) fn planner_default() -> bool {
    !matches!(
        std::env::var("GCORE_PLAN").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

impl EvalCtx {
    /// Fresh context over a frozen engine snapshot.
    pub fn new(snapshot: Arc<EngineSnapshot>) -> Self {
        let catalog = snapshot.catalog().clone();
        EvalCtx {
            snapshot,
            catalog: RefCell::new(catalog),
            fresh_paths: RefCell::new(Vec::new()),
            path_views: RefCell::new(Vec::new()),
            ambient: RefCell::new(None),
            view_cache: RefCell::new(std::collections::HashMap::new()),
            view_in_progress: RefCell::new(Vec::new()),
            table_graphs: RefCell::new(std::collections::HashMap::new()),
            filter_pushdown: std::cell::Cell::new(true),
            planner: std::cell::Cell::new(planner_default()),
            parallelism: std::cell::Cell::new(1),
            cancel: crate::cancel::CancelToken::new(),
            profiler: crate::obs::Profiler::disabled(),
            metrics: crate::obs::CoreMetrics::standalone(),
        }
    }

    /// Error out when this statement's cancellation token has fired.
    pub fn check_cancelled(&self) -> Result<()> {
        self.cancel.check()
    }

    /// Convenience for tests and standalone evaluation: freeze `catalog`
    /// into a throwaway epoch-0 snapshot and build a context over it.
    pub fn from_catalog(catalog: Catalog) -> Self {
        Self::new(Arc::new(EngineSnapshot::freeze(catalog, 0)))
    }

    /// Intern a fresh path, returning its arena binding.
    pub fn add_fresh_path(&self, p: FreshPath) -> Bound {
        let mut arena = self.fresh_paths.borrow_mut();
        arena.push(p);
        Bound::FreshPath(arena.len() - 1)
    }

    /// Clone a fresh path out of the arena.
    pub fn fresh_path(&self, idx: usize) -> FreshPath {
        self.fresh_paths.borrow()[idx].clone()
    }

    /// Resolve a graph by name.
    pub fn graph(&self, name: &str) -> Result<Arc<PathPropertyGraph>> {
        Ok(self.catalog.borrow().graph(name)?)
    }

    /// Resolve a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        Ok(self.catalog.borrow().table(name)?)
    }

    /// The default graph.
    pub fn default_graph(&self) -> Result<Arc<PathPropertyGraph>> {
        Ok(self.catalog.borrow().default_graph()?)
    }

    /// §5 "interpreting tables as graphs": view a registered table as a
    /// graph of isolated nodes, one per row, whose properties are the
    /// row's non-NULL cells. Node identities are drawn once per query
    /// and cached.
    pub fn table_as_graph(&self, name: &str) -> Result<Arc<PathPropertyGraph>> {
        if let Some(g) = self.table_graphs.borrow().get(name) {
            return Ok(g.clone());
        }
        let table = self.table(name)?;
        let ids = self.catalog.borrow().ids().clone();
        let mut g = PathPropertyGraph::new();
        for row in table.rows() {
            let mut attrs = Attributes::new();
            for (ci, col) in table.columns().iter().enumerate() {
                if !matches!(row[ci], Value::Null) {
                    attrs.set_prop(Key::new(col), PropertySet::single(row[ci].clone()));
                }
            }
            g.add_node(ids.node(), attrs);
        }
        let arc = Arc::new(g);
        self.table_graphs
            .borrow_mut()
            .insert(name.to_owned(), arc.clone());
        Ok(arc)
    }

    /// The ambient graph for pattern predicates: the last graph a MATCH
    /// pattern was evaluated on, falling back to the catalog default.
    pub fn ambient_graph(&self) -> Result<Arc<PathPropertyGraph>> {
        if let Some(g) = self.ambient.borrow().as_ref() {
            return Ok(g.clone());
        }
        self.default_graph()
    }

    /// Set the ambient graph.
    pub fn set_ambient(&self, g: Arc<PathPropertyGraph>) {
        *self.ambient.borrow_mut() = Some(g);
    }

    /// Find a PATH view by name (most recent definition wins).
    pub fn path_view(&self, name: &str) -> Result<PathClause> {
        self.path_views
            .borrow()
            .iter()
            .rev()
            .find(|p| p.name == name)
            .cloned()
            .ok_or_else(|| {
                EngineError::Runtime(crate::error::RuntimeError::UnknownPathView(name.to_owned()))
            })
    }

    /// Column helper bound to a specific graph.
    pub fn column(&self, var: &str, graph: Arc<PathPropertyGraph>) -> Column {
        Column {
            var: var.to_owned(),
            graph,
        }
    }
}
