//! # gcore-parser — concrete syntax for G-CORE
//!
//! Hand-written lexer, recursive-descent parser and pretty-printer for the
//! G-CORE graph query language (SIGMOD 2018). The grammar implements
//! Section 4 and Appendix A of the paper, the ASCII-art pattern syntax of
//! the Section 3 guided tour, and the §5 tabular extensions (`SELECT`,
//! `FROM`).
//!
//! ```
//! use gcore_parser::parse_query;
//!
//! let q = parse_query(
//!     "CONSTRUCT (n) MATCH (n:Person) ON social_graph \
//!      WHERE n.employer = 'Acme'",
//! ).unwrap();
//! assert_eq!(q.heads.len(), 0);
//! ```

#![forbid(unsafe_code)]
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{Query, Statement};
pub use error::{ParseError, ParseErrorKind};
pub use parser::{parse_query, parse_script, parse_statement};
pub use pretty::{print_expr, print_located, print_pattern, print_query, print_statement};
