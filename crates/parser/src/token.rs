//! Tokens of the G-CORE concrete syntax.

use std::fmt;

/// A half-open byte range into the query source.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Keywords, case-insensitive in the source (the paper writes them in
/// upper case; we accept any casing).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Keyword {
    Construct,
    Match,
    On,
    Where,
    Optional,
    Union,
    Intersect,
    Minus,
    Graph,
    View,
    As,
    Path,
    Cost,
    Shortest,
    All,
    When,
    Set,
    Remove,
    Group,
    Exists,
    Not,
    And,
    Or,
    In,
    Subset,
    Case,
    Then,
    Else,
    End,
    True,
    False,
    Null,
    Select,
    Distinct,
    From,
    By,
    Order,
    Limit,
    Offset,
    Asc,
    Desc,
    Date,
}

impl Keyword {
    /// Recognize a keyword, case-insensitively.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s.to_ascii_uppercase().as_str() {
            "CONSTRUCT" => Construct,
            "MATCH" => Match,
            "ON" => On,
            "WHERE" => Where,
            "OPTIONAL" => Optional,
            "UNION" => Union,
            "INTERSECT" => Intersect,
            "MINUS" => Minus,
            "GRAPH" => Graph,
            "VIEW" => View,
            "AS" => As,
            "PATH" => Path,
            "COST" => Cost,
            "SHORTEST" => Shortest,
            "ALL" => All,
            "WHEN" => When,
            "SET" => Set,
            "REMOVE" => Remove,
            "GROUP" => Group,
            "EXISTS" => Exists,
            "NOT" => Not,
            "AND" => And,
            "OR" => Or,
            "IN" => In,
            "SUBSET" => Subset,
            "CASE" => Case,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "TRUE" => True,
            "FALSE" => False,
            "NULL" => Null,
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "BY" => By,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "OFFSET" => Offset,
            "ASC" => Asc,
            "DESC" => Desc,
            "DATE" => Date,
            _ => return None,
        })
    }

    /// Canonical (upper-case) spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Construct => "CONSTRUCT",
            Match => "MATCH",
            On => "ON",
            Where => "WHERE",
            Optional => "OPTIONAL",
            Union => "UNION",
            Intersect => "INTERSECT",
            Minus => "MINUS",
            Graph => "GRAPH",
            View => "VIEW",
            As => "AS",
            Path => "PATH",
            Cost => "COST",
            Shortest => "SHORTEST",
            All => "ALL",
            When => "WHEN",
            Set => "SET",
            Remove => "REMOVE",
            Group => "GROUP",
            Exists => "EXISTS",
            Not => "NOT",
            And => "AND",
            Or => "OR",
            In => "IN",
            Subset => "SUBSET",
            Case => "CASE",
            Then => "THEN",
            Else => "ELSE",
            End => "END",
            True => "TRUE",
            False => "FALSE",
            Null => "NULL",
            Select => "SELECT",
            Distinct => "DISTINCT",
            From => "FROM",
            By => "BY",
            Order => "ORDER",
            Limit => "LIMIT",
            Offset => "OFFSET",
            Asc => "ASC",
            Desc => "DESC",
            Date => "DATE",
        }
    }
}

/// The token kinds. Multi-character arrows are assembled by the parser
/// from these primitives, using span adjacency where ambiguity matters.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Ident(String),
    Kw(Keyword),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation
    LParen,     // (
    RParen,     // )
    LBracket,   // [
    RBracket,   // ]
    LBrace,     // {
    RBrace,     // }
    Lt,         // <
    Gt,         // >
    Le,         // <=
    Ge,         // >=
    Neq,        // <> or !=
    Eq,         // =
    Assign,     // :=
    Colon,      // :
    Comma,      // ,
    Dot,        // .
    Plus,       // +
    Minus,      // -
    Star,       // *
    Slash,      // /
    Percent,    // %
    Bang,       // !
    At,         // @
    Tilde,      // ~
    Pipe,       // |
    Underscore, // _ (wildcard in regexes)
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Kw(k) => write!(f, "keyword {}", k.as_str()),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LParen => f.write_str("'('"),
            Tok::RParen => f.write_str("')'"),
            Tok::LBracket => f.write_str("'['"),
            Tok::RBracket => f.write_str("']'"),
            Tok::LBrace => f.write_str("'{'"),
            Tok::RBrace => f.write_str("'}'"),
            Tok::Lt => f.write_str("'<'"),
            Tok::Gt => f.write_str("'>'"),
            Tok::Le => f.write_str("'<='"),
            Tok::Ge => f.write_str("'>='"),
            Tok::Neq => f.write_str("'<>'"),
            Tok::Eq => f.write_str("'='"),
            Tok::Assign => f.write_str("':='"),
            Tok::Colon => f.write_str("':'"),
            Tok::Comma => f.write_str("','"),
            Tok::Dot => f.write_str("'.'"),
            Tok::Plus => f.write_str("'+'"),
            Tok::Minus => f.write_str("'-'"),
            Tok::Star => f.write_str("'*'"),
            Tok::Slash => f.write_str("'/'"),
            Tok::Percent => f.write_str("'%'"),
            Tok::Bang => f.write_str("'!'"),
            Tok::At => f.write_str("'@'"),
            Tok::Tilde => f.write_str("'~'"),
            Tok::Pipe => f.write_str("'|'"),
            Tok::Underscore => f.write_str("'_'"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}
