//! Hand-written lexer for G-CORE.
//!
//! Produces a flat token vector with byte spans. Comments (`--` to end of
//! line and `/* … */`) are skipped. String literals accept both single and
//! double quotes (the paper uses single quotes), with doubling as the
//! escape (`''` → `'`).

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Keyword, Span, Tok, Token};

/// Tokenize a full query text.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, tok: Tok, start: usize) {
        self.out.push(Token {
            tok,
            span: Span::new(start, self.pos),
        });
    }

    fn error(&self, kind: ParseErrorKind, start: usize) -> ParseError {
        ParseError::new(kind, Span::new(start, self.pos.max(start + 1)), self.src)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'-' if self.peek2() == Some(b'-') => self.skip_line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.skip_block_comment(start)?,
                b'\'' | b'"' => self.lex_string(b)?,
                b'0'..=b'9' => self.lex_number(start)?,
                b'_' if !self.ident_follows(1) => {
                    self.pos += 1;
                    self.push(Tok::Underscore, start);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                _ => self.lex_punct(start)?,
            }
        }
        let end = self.pos;
        self.out.push(Token {
            tok: Tok::Eof,
            span: Span::new(end, end),
        });
        Ok(self.out)
    }

    /// Does an identifier character follow at offset `n`?
    fn ident_follows(&self, n: usize) -> bool {
        matches!(
            self.bytes.get(self.pos + n),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        )
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                break;
            }
        }
    }

    fn skip_block_comment(&mut self, start: usize) -> Result<(), ParseError> {
        self.pos += 2; // consume /*
        loop {
            match (self.peek(), self.peek2()) {
                (Some(b'*'), Some(b'/')) => {
                    self.pos += 2;
                    return Ok(());
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => {
                    return Err(self.error(ParseErrorKind::UnterminatedComment, start));
                }
            }
        }
    }

    fn lex_string(&mut self, quote: u8) -> Result<(), ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b) if b == quote => {
                    // doubled quote = escaped quote
                    if self.peek() == Some(quote) {
                        self.pos += 1;
                        text.push(quote as char);
                    } else {
                        break;
                    }
                }
                Some(b'\\') => {
                    // backslash escapes for convenience
                    match self.bump() {
                        Some(b'n') => text.push('\n'),
                        Some(b't') => text.push('\t'),
                        Some(b) => text.push(b as char),
                        None => return Err(self.error(ParseErrorKind::UnterminatedString, start)),
                    }
                }
                Some(b) => {
                    // Multi-byte UTF-8: copy raw bytes of this char.
                    if b < 0x80 {
                        text.push(b as char);
                    } else {
                        let ch_start = self.pos - 1;
                        let ch = self.src[ch_start..]
                            .chars()
                            .next()
                            .expect("valid utf8 source");
                        text.push(ch);
                        self.pos = ch_start + ch.len_utf8();
                    }
                }
                None => return Err(self.error(ParseErrorKind::UnterminatedString, start)),
            }
        }
        self.push(Tok::Str(text), start);
        Ok(())
    }

    fn lex_number(&mut self, start: usize) -> Result<(), ParseError> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A dot starts a fraction only if a digit follows — `nodes(p)[1]`
        // vs `1.5`; also keeps `x.k` property access unambiguous since
        // identifiers can't start with a digit anyway.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E'))
            && (matches!(self.peek2(), Some(b'0'..=b'9'))
                || (matches!(self.peek2(), Some(b'+' | b'-'))
                    && matches!(self.bytes.get(self.pos + 2), Some(b'0'..=b'9'))))
        {
            is_float = true;
            self.pos += 1; // e
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(ParseErrorKind::BadNumber(text.to_owned()), start))?;
            self.push(Tok::Float(v), start);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.error(ParseErrorKind::BadNumber(text.to_owned()), start))?;
            self.push(Tok::Int(v), start);
        }
        Ok(())
    }

    fn lex_ident(&mut self, start: usize) {
        while self.ident_follows(0) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_ident(text) {
            Some(kw) => self.push(Tok::Kw(kw), start),
            None => self.push(Tok::Ident(text.to_owned()), start),
        }
    }

    fn lex_punct(&mut self, start: usize) -> Result<(), ParseError> {
        let b = self.bump().expect("peeked");
        let tok = match b {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Tok::Le
                }
                Some(b'>') => {
                    self.pos += 1;
                    Tok::Neq
                }
                _ => Tok::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'=' => Tok::Eq,
            b':' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            b',' => Tok::Comma,
            b'.' => Tok::Dot,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Tok::Neq
                } else {
                    Tok::Bang
                }
            }
            b'@' => Tok::At,
            b'~' => Tok::Tilde,
            b'|' => Tok::Pipe,
            other => {
                return Err(self.error(ParseErrorKind::UnexpectedChar(other as char), start));
            }
        };
        self.push(tok, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("match MATCH Match"),
            vec![
                Tok::Kw(Keyword::Match),
                Tok::Kw(Keyword::Match),
                Tok::Kw(Keyword::Match),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_strings() {
        assert_eq!(
            kinds("social_graph 'Acme' \"Ac\"\"me\""),
            vec![
                Tok::Ident("social_graph".into()),
                Tok::Str("Acme".into()),
                Tok::Str("Ac\"me".into()),
                Tok::Eof
            ]
        );
        // Doubling only escapes the active quote character.
        assert_eq!(kinds("\"a''b\"")[0], Tok::Str("a''b".into()));
    }

    #[test]
    fn doubled_single_quote_escape() {
        assert_eq!(kinds("'a''b'")[0], Tok::Str("a'b".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 1.5 2e3 1.5e-2"),
            vec![
                Tok::Int(42),
                Tok::Float(1.5),
                Tok::Float(2000.0),
                Tok::Float(0.015),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn index_after_call_is_not_a_float() {
        // nodes(p)[1] — the 1 must stay an integer after ']' '['
        let ks = kinds("nodes(p)[1]");
        assert!(ks.contains(&Tok::Int(1)));
    }

    #[test]
    fn punctuation_composites() {
        assert_eq!(
            kinds("<= >= <> != := = < >"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Neq,
                Tok::Neq,
                Tok::Assign,
                Tok::Eq,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrows_lex_into_primitives() {
        assert_eq!(
            kinds("-[e]->"),
            vec![
                Tok::Minus,
                Tok::LBracket,
                Tok::Ident("e".into()),
                Tok::RBracket,
                Tok::Minus,
                Tok::Gt,
                Tok::Eof
            ]
        );
        assert_eq!(
            kinds("-/<:knows*>/->"),
            vec![
                Tok::Minus,
                Tok::Slash,
                Tok::Lt,
                Tok::Colon,
                Tok::Ident("knows".into()),
                Tok::Star,
                Tok::Gt,
                Tok::Slash,
                Tok::Minus,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- line comment\n b /* block \n comment */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_comment_requires_two_dashes() {
        assert_eq!(
            kinds("a - b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn standalone_underscore_is_wildcard() {
        assert_eq!(kinds("_")[0], Tok::Underscore);
        assert_eq!(kinds("_x")[0], Tok::Ident("_x".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc").is_err());
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(lex("§").is_err());
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
