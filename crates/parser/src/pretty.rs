//! Pretty-printer: AST → canonical G-CORE text.
//!
//! The printer emits a query that parses back to the *same* AST (up to
//! `Plus`/`Opt` regex sugar, which the printer expands the same way the
//! parser would). Round-trip property tests in the crate root rely on
//! this.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a statement.
pub fn print_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => print_query(q),
        Statement::GraphView { name, query } => {
            format!("GRAPH VIEW {name} AS ({})", print_query(query))
        }
    }
}

/// Render a query.
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    for head in &q.heads {
        match head {
            HeadClause::Path(p) => {
                let _ = write!(out, "PATH {} = ", p.name);
                out.push_str(
                    &p.patterns
                        .iter()
                        .map(print_pattern)
                        .collect::<Vec<_>>()
                        .join(", "),
                );
                if let Some(w) = &p.where_clause {
                    let _ = write!(out, " WHERE {}", print_expr(w));
                }
                if let Some(c) = &p.cost {
                    let _ = write!(out, " COST {}", print_expr(c));
                }
                out.push(' ');
            }
            HeadClause::Graph(g) => {
                let _ = write!(out, "GRAPH {} AS ({}) ", g.name, print_query(&g.query));
            }
        }
    }
    match &q.body {
        QueryBody::Graph(g) => out.push_str(&print_full_graph_query(g)),
        QueryBody::Select(s) => out.push_str(&print_select(s)),
    }
    out
}

fn print_full_graph_query(q: &FullGraphQuery) -> String {
    match q {
        FullGraphQuery::Basic(b) => print_basic(b),
        FullGraphQuery::SetOp { op, left, right } => {
            let lhs = print_full_graph_query(left);
            let rhs = match right.as_ref() {
                FullGraphQuery::Basic(_) => print_full_graph_query(right),
                _ => format!("({})", print_full_graph_query(right)),
            };
            format!("{lhs} {op} {rhs}")
        }
    }
}

fn print_basic(b: &BasicGraphQuery) -> String {
    let mut out = String::from("CONSTRUCT ");
    out.push_str(
        &b.construct
            .items
            .iter()
            .map(print_construct_item)
            .collect::<Vec<_>>()
            .join(", "),
    );
    match &b.source {
        QuerySource::Match(m) => {
            // Unit match (no patterns): omit MATCH entirely.
            if !m.patterns.is_empty() || m.where_clause.is_some() || !m.optionals.is_empty() {
                out.push(' ');
                out.push_str(&print_match(m));
            }
        }
        QuerySource::From(t) => {
            let _ = write!(out, " FROM {t}");
        }
    }
    out
}

fn print_match(m: &MatchClause) -> String {
    let mut out = String::from("MATCH ");
    out.push_str(
        &m.patterns
            .iter()
            .map(print_located)
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some(w) = &m.where_clause {
        let _ = write!(out, " WHERE {}", print_expr(w));
    }
    for opt in &m.optionals {
        out.push_str(" OPTIONAL ");
        out.push_str(
            &opt.patterns
                .iter()
                .map(print_located)
                .collect::<Vec<_>>()
                .join(", "),
        );
        if let Some(w) = &opt.where_clause {
            let _ = write!(out, " WHERE {}", print_expr(w));
        }
    }
    out
}

/// Render a located pattern (`(n)-[:knows]->(m) ON g`). Public so
/// downstream tooling (e.g. the engine's `EXPLAIN` renderer) can show
/// patterns in their canonical surface syntax.
pub fn print_located(lp: &LocatedPattern) -> String {
    let mut out = print_pattern(&lp.pattern);
    match &lp.on {
        Some(Location::Named(n)) => {
            let _ = write!(out, " ON {n}");
        }
        Some(Location::Subquery(q)) => {
            let _ = write!(out, " ON ({})", print_query(q));
        }
        None => {}
    }
    out
}

/// Render a bare match pattern without its `ON` location.
pub fn print_pattern(p: &Pattern) -> String {
    let mut out = print_node(&p.start);
    for step in &p.steps {
        match &step.connection {
            Connection::Edge(e) => out.push_str(&print_edge(e)),
            Connection::Path(pp) => out.push_str(&print_path_pattern(pp)),
        }
        out.push_str(&print_node(&step.node));
    }
    out
}

fn print_node(n: &NodePattern) -> String {
    let mut out = String::from("(");
    if let Some(v) = &n.var {
        out.push_str(v);
    }
    for LabelDisjunction(labels, _) in &n.labels {
        let _ = write!(out, ":{}", labels.join("|"));
    }
    if !n.props.is_empty() {
        out.push_str(" {");
        out.push_str(
            &n.props
                .iter()
                .map(|p| format!("{} = {}", p.key, print_expr(&p.value)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push('}');
    }
    out.push(')');
    out
}

fn print_edge(e: &EdgePattern) -> String {
    let mut inner = String::new();
    if let Some(v) = &e.var {
        inner.push_str(v);
    }
    for LabelDisjunction(labels, _) in &e.labels {
        let _ = write!(inner, ":{}", labels.join("|"));
    }
    if !e.props.is_empty() {
        inner.push_str(" {");
        inner.push_str(
            &e.props
                .iter()
                .map(|p| format!("{} = {}", p.key, print_expr(&p.value)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        inner.push('}');
    }
    match e.direction {
        Direction::Out => format!("-[{inner}]->"),
        Direction::In => format!("<-[{inner}]-"),
        Direction::Undirected => format!("-[{inner}]-"),
    }
}

fn print_path_pattern(p: &PathPattern) -> String {
    let mut inner = String::new();
    match p.mode {
        PathMode::Shortest(1) => {}
        PathMode::Shortest(k) => {
            let _ = write!(inner, "{k} SHORTEST ");
        }
        PathMode::All => inner.push_str("ALL "),
    }
    if p.stored {
        inner.push('@');
    }
    if let Some(v) = &p.var {
        inner.push_str(v);
    }
    for LabelDisjunction(labels, _) in &p.labels {
        let _ = write!(inner, ":{}", labels.join("|"));
    }
    if let Some(r) = &p.regex {
        let _ = write!(inner, "<{}>", print_regex(r, 0));
    }
    if let Some(c) = &p.cost_var {
        let _ = write!(inner, " COST {c}");
    }
    match p.direction {
        Direction::Out => format!("-/{inner}/->"),
        Direction::In => format!("<-/{inner}/-"),
        Direction::Undirected => format!("-/{inner}/-"),
    }
}

/// Precedence: 0 = alternation, 1 = concatenation, 2 = postfix.
fn print_regex(r: &Regex, prec: u8) -> String {
    let (text, my_prec) = match r {
        Regex::Label(l) => (format!(":{l}"), 2),
        Regex::LabelInv(l) => (format!(":{l}-"), 2),
        Regex::NodeTest(l) => (format!("!{l}"), 2),
        Regex::Wildcard => ("_".to_string(), 2),
        Regex::View(v) => (format!("~{v}"), 2),
        Regex::Concat(parts) => (
            parts
                .iter()
                .map(|p| print_regex(p, 1))
                .collect::<Vec<_>>()
                .join(" "),
            1,
        ),
        Regex::Alt(parts) => (
            parts
                .iter()
                .map(|p| print_regex(p, 1))
                .collect::<Vec<_>>()
                .join(" + "),
            0,
        ),
        Regex::Star(inner) => (format!("{}*", print_regex(inner, 2)), 2),
        // r+ ≡ r r*, r? ≡ () + r — printed in primitive form.
        Regex::Plus(inner) => {
            let base = print_regex(inner, 2);
            (format!("{base} {base}*"), 1)
        }
        Regex::Opt(inner) => (format!("({}*)", print_regex(inner, 2)), 2),
    };
    if my_prec < prec {
        format!("({text})")
    } else {
        text
    }
}

fn print_construct_item(item: &ConstructItem) -> String {
    match item {
        ConstructItem::GraphName(n) => n.clone(),
        ConstructItem::Pattern(p) => print_construct_pattern(p),
    }
}

fn print_construct_pattern(p: &ConstructPattern) -> String {
    let mut out = print_construct_node(&p.start);
    for step in &p.steps {
        match &step.connection {
            ConstructConnection::Edge(e) => out.push_str(&print_construct_edge(e)),
            ConstructConnection::Path(cp) => out.push_str(&print_construct_path(cp)),
        }
        out.push_str(&print_construct_node(&step.node));
    }
    if let Some(w) = &p.when {
        let _ = write!(out, " WHEN {}", print_expr(w));
    }
    for set in &p.sets {
        match set {
            SetItem::Prop { var, key, value } => {
                let _ = write!(out, " SET {var}.{key} := {}", print_expr(value));
            }
            SetItem::Label { var, label } => {
                let _ = write!(out, " SET {var}:{label}");
            }
            SetItem::Copy { var, from } => {
                let _ = write!(out, " SET {var} = {from}");
            }
        }
    }
    for rem in &p.removes {
        match rem {
            RemoveItem::Prop { var, key } => {
                let _ = write!(out, " REMOVE {var}.{key}");
            }
            RemoveItem::Label { var, label } => {
                let _ = write!(out, " REMOVE {var}:{label}");
            }
        }
    }
    out
}

fn construct_element_inner(
    var: &Option<Ident>,
    copy_of: &Option<Ident>,
    group: &Option<Vec<Expr>>,
    labels: &[String],
    assigns: &[PropAssign],
) -> String {
    let mut inner = String::new();
    if let Some(c) = copy_of {
        let _ = write!(inner, "={c}");
    } else if let Some(v) = var {
        inner.push_str(v);
    }
    if let Some(group) = group {
        let _ = write!(
            inner,
            " GROUP {}",
            group.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        );
    }
    for l in labels {
        let _ = write!(inner, " :{l}");
    }
    if !assigns.is_empty() {
        inner.push_str(" {");
        inner.push_str(
            &assigns
                .iter()
                .map(|a| format!("{} := {}", a.key, print_expr(&a.value)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        inner.push('}');
    }
    inner.trim_start().to_string()
}

fn print_construct_node(n: &ConstructNode) -> String {
    format!(
        "({})",
        construct_element_inner(&n.var, &n.copy_of, &n.group, &n.labels, &n.assigns)
    )
}

fn print_construct_edge(e: &ConstructEdge) -> String {
    let inner = construct_element_inner(&e.var, &e.copy_of, &e.group, &e.labels, &e.assigns);
    match e.direction {
        Direction::In => format!("<-[{inner}]-"),
        _ => format!("-[{inner}]->"),
    }
}

fn print_construct_path(p: &ConstructPath) -> String {
    let mut inner = String::new();
    if p.stored {
        inner.push('@');
    }
    inner.push_str(&p.var);
    for l in &p.labels {
        let _ = write!(inner, ":{l}");
    }
    if !p.assigns.is_empty() {
        inner.push_str(" {");
        inner.push_str(
            &p.assigns
                .iter()
                .map(|a| format!("{} := {}", a.key, print_expr(&a.value)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        inner.push('}');
    }
    match p.direction {
        Direction::In => format!("<-/{inner}/-"),
        _ => format!("-/{inner}/->"),
    }
}

fn print_select(s: &SelectQuery) -> String {
    let mut out = String::from("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    out.push_str(
        &s.items
            .iter()
            .map(|i| match &i.alias {
                Some(a) => format!("{} AS {a}", print_expr(&i.expr)),
                None => print_expr(&i.expr),
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push(' ');
    out.push_str(&print_match(&s.match_clause));
    if !s.group_by.is_empty() {
        let _ = write!(
            out,
            " GROUP BY {}",
            s.group_by
                .iter()
                .map(print_expr)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if !s.order_by.is_empty() {
        let _ = write!(
            out,
            " ORDER BY {}",
            s.order_by
                .iter()
                .map(|o| format!(
                    "{}{}",
                    print_expr(&o.expr),
                    if o.ascending { "" } else { " DESC" }
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if let Some(l) = s.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = s.offset {
        let _ = write!(out, " OFFSET {o}");
    }
    out
}

/// Render an expression, fully parenthesizing nested operators so the
/// round-trip is precedence-safe.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(i) => i.to_string(),
        Expr::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Expr::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Expr::Bool(true) => "TRUE".into(),
        Expr::Bool(false) => "FALSE".into(),
        Expr::Null => "NULL".into(),
        Expr::DateLit(d) => format!("DATE '{d}'"),
        Expr::Var(v) => v.text.clone(),
        Expr::Prop(base, key) => format!("{}.{key}", print_expr(base)),
        Expr::LabelTest(base, labels) => {
            format!("({}:{})", print_expr(base), labels.join("|"))
        }
        Expr::Index(base, idx) => format!("{}[{}]", print_expr(base), print_expr(idx)),
        Expr::Unary(UnaryOp::Not, inner) => format!("NOT ({})", print_expr(inner)),
        Expr::Unary(UnaryOp::Neg, inner) => format!("-({})", print_expr(inner)),
        Expr::Binary(op, l, r) => {
            format!("({} {op} {})", print_expr(l), print_expr(r))
        }
        Expr::Func(f, args) => format!(
            "{}({})",
            f.name(),
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Aggregate { op, distinct, arg } => match arg {
            None => format!("{}(*)", op.name()),
            Some(a) => format!(
                "{}({}{})",
                op.name(),
                if *distinct { "DISTINCT " } else { "" },
                print_expr(a)
            ),
        },
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            let mut out = String::from("CASE");
            if let Some(op) = operand {
                let _ = write!(out, " {}", print_expr(op));
            }
            for (c, r) in whens {
                let _ = write!(out, " WHEN {} THEN {}", print_expr(c), print_expr(r));
            }
            if let Some(e) = else_ {
                let _ = write!(out, " ELSE {}", print_expr(e));
            }
            out.push_str(" END");
            out
        }
        Expr::Exists(q) => format!("EXISTS ({})", print_query(q)),
        Expr::PatternPredicate(p) => print_pattern(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_statement};

    fn roundtrip(src: &str) {
        let q1 = parse_query(src).unwrap_or_else(|e| panic!("first parse failed:\n{e}"));
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed:\n{e}\nprinted: {printed}"));
        assert_eq!(q1, q2, "round-trip mismatch via: {printed}");
    }

    #[test]
    fn roundtrip_guided_tour_queries() {
        roundtrip("CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme'");
        roundtrip(
            "CONSTRUCT (c) <-[:worksAt]-(n) \
             MATCH (c:Company) ON company_graph, (n:Person) ON social_graph \
             WHERE c.name IN n.employer UNION social_graph",
        );
        roundtrip(
            "CONSTRUCT social_graph, (x GROUP e :Company {name:=e}) <-[y:worksAt]-(n) \
             MATCH (n:Person {employer=e})",
        );
        roundtrip(
            "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) \
             MATCH (n) -/3 SHORTEST p<:knows*> COST c/->(m) \
             WHERE (n:Person) AND (m:Person) AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)",
        );
        roundtrip("CONSTRUCT (n)-/p/->(m) MATCH (n:Person)-/ALL p<:knows*>/->(m:Person)");
        roundtrip(
            "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) WHEN e.score > 0 \
             MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 \
             WHERE n = nodes(p)[1]",
        );
        roundtrip(
            "SELECT m.lastName + ', ' + m.firstName AS friendName \
             MATCH (n:Person) -/<:knows*>/->(m:Person) \
             WHERE n.firstName = 'John' ORDER BY friendName LIMIT 10",
        );
    }

    #[test]
    fn roundtrip_heads_and_views() {
        let src = "GRAPH VIEW v AS (PATH w = (x)-[e:knows]->(y) WHERE NOT 'Acme' IN y.employer \
                    COST 1 / (1 + e.nr_messages) \
                    CONSTRUCT g1, (n)-/@p:toWagner/->(m) \
                    MATCH (n:Person)-/p<~w*>/->(m:Person) ON g1)";
        let s1 = parse_statement(src).unwrap();
        let printed = print_statement(&s1);
        let s2 = parse_statement(&printed).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn roundtrip_regex_shapes() {
        roundtrip("CONSTRUCT (n) MATCH (n)-/<(:a + :b-) :c* _ !N ~v>/->(m)");
        roundtrip("CONSTRUCT (n) MATCH (n)-/<((:a :b) + :c)*>/->(m)");
    }

    #[test]
    fn roundtrip_optionals_and_exists() {
        roundtrip(
            "CONSTRUCT (n) MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(c) \
             OPTIONAL (n)-[:livesIn]->(a) WHERE EXISTS (CONSTRUCT (m) MATCH (m))",
        );
    }

    #[test]
    fn roundtrip_case_and_ops() {
        roundtrip(
            "CONSTRUCT (n {v := CASE WHEN size(n.x) = 0 THEN -1 ELSE n.x END}) \
             MATCH (n) WHERE NOT n.a = 1 AND (n.b <= 2 OR n.c <> 3) AND n.d % 2 = 0",
        );
    }

    #[test]
    fn roundtrip_set_operations() {
        roundtrip("CONSTRUCT (n) MATCH (n) INTERSECT g1 MINUS g2 UNION g3");
    }
}
